#![forbid(unsafe_code)]
//! # te-ccl
//!
//! A Rust reproduction of **TE-CCL** — *"Rethinking Machine Learning Collective
//! Communication as a Multi-Commodity Flow Problem"* (SIGCOMM 2024).
//!
//! This facade crate re-exports the workspace crates so applications can use a
//! single dependency:
//!
//! * [`lp`] — the LP / MILP solver substrate (Gurobi substitute),
//! * [`topology`] — GPU cluster topologies (DGX1, NDv2, DGX2, synthetic cloud
//!   topologies) with the α–β cost model,
//! * [`collective`] — collective demand matrices (ALLGATHER, ALLTOALL, …),
//! * [`core`] — the TE-CCL optimizer (general MILP, LP, and A* formulations),
//! * [`schedule`] — schedules, validation, the α–β simulator and metrics,
//! * [`baselines`] — ring, shortest-path, SCCL-like and TACCL-like baselines,
//! * [`service`] — the schedule service: content-addressed schedule cache,
//!   single-flight concurrent solve orchestrator, and the `teccld` /
//!   `teccl-cli` binaries.
//!
//! ## Quickstart
//!
//! ```
//! use te_ccl::prelude::*;
//!
//! // An 8-GPU DGX-1 box, ALLGATHER of one 1 MB chunk per GPU.
//! let topo = te_ccl::topology::dgx1();
//! let gpus: Vec<NodeId> = topo.gpus().collect();
//! let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
//!
//! // Solve with TE-CCL (A* keeps the doc-test fast; `solve` would pick the
//! // general MILP for a topology this small).
//! let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop());
//! let outcome = solver.solve_astar(&demand, 1.0e6).unwrap();
//!
//! // The schedule is valid and satisfies every demand.
//! let report = validate(&topo, &demand, &outcome.schedule, false);
//! assert!(report.is_valid());
//!
//! // And the α–β simulator tells us the collective finish time.
//! let sim = simulate(&topo, &demand, &outcome.schedule).unwrap();
//! assert!(sim.transfer_time > 0.0);
//! ```

pub use teccl_baselines as baselines;
pub use teccl_collective as collective;
pub use teccl_core as core;
pub use teccl_lp as lp;
pub use teccl_schedule as schedule;
pub use teccl_service as service;
pub use teccl_topology as topology;
pub use teccl_util as util;

/// Commonly used items, for `use te_ccl::prelude::*`.
pub mod prelude {
    pub use teccl_collective::{
        ChunkSpec, CollectiveKind, CollectiveSizing, DemandMatrix, TenantDemand,
    };
    pub use teccl_core::{
        BufferMode, EpochStrategy, SolveOutcome, SolverConfig, SwitchModel, TeCcl,
    };
    pub use teccl_schedule::{simulate, validate, CollectiveMetrics, Schedule};
    pub use teccl_topology::{NodeId, Topology};
    pub use teccl_util::json::Value as JsonValue;
}
