//! Integration tests spanning all workspace crates: topologies → demands →
//! TE-CCL formulations → schedules → validation → α–β simulation → metrics,
//! plus cross-checks against the baseline schedulers.

use te_ccl::baselines::{
    ring_all_gather, sccl_like_schedule, shortest_path_schedule, taccl_like_schedule, TacclConfig,
};
use te_ccl::collective::CollectiveKind;
use te_ccl::prelude::*;

/// Helper: validate + simulate a schedule and return the transfer time.
fn check_and_time(topo: &Topology, demand: &DemandMatrix, schedule: &Schedule) -> f64 {
    let report = validate(topo, demand, schedule, false);
    assert!(
        report.is_valid(),
        "schedule `{}` invalid: {:?}",
        schedule.name,
        report.errors
    );
    simulate(topo, demand, schedule)
        .expect("simulation failed")
        .transfer_time
}

#[test]
fn allgather_internal1_teccl_beats_or_matches_shortest_path() {
    let topo = te_ccl::topology::internal1(1);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let chunk = 1.0e6;

    let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop().with_max_epochs(8));
    let ours = solver.solve(&demand, chunk).unwrap();
    let t_ours = check_and_time(&topo, &demand, &ours.schedule);

    let sp = shortest_path_schedule(&topo, &demand, chunk);
    let t_sp = check_and_time(&topo, &demand, &sp);

    // TE-CCL leverages copy and pipelining: it must not lose to the
    // shortest-path unicast baseline.
    assert!(
        t_ours <= t_sp * 1.05 + 1e-9,
        "TE-CCL {t_ours} vs shortest-path {t_sp}"
    );
}

#[test]
fn alltoall_ring_lp_matches_demand_exactly() {
    let topo = te_ccl::topology::ring_topology(4, 25.0e9, 0.7e-6);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_to_all(topo.num_nodes(), &gpus, 1);
    let chunk = 1.0e6;

    let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(12));
    let ours = solver.solve(&demand, chunk).unwrap();
    assert_eq!(ours.formulation, te_ccl::core::solver::FormulationKind::Lp);
    let t = check_and_time(&topo, &demand, &ours.schedule);
    assert!(t > 0.0);
    // Every demanded chunk is carried by at least one send (possibly a relay
    // hop rather than a direct delivery to `d`).
    for (s, c, d) in demand.iter() {
        assert!(
            ours.schedule
                .sends
                .iter()
                .any(|snd| snd.chunk.source == s && snd.chunk.chunk == c),
            "no send for ({s:?}, {c}, {d:?})"
        );
    }
}

#[test]
fn broadcast_copy_halves_upstream_traffic_vs_no_copy() {
    // Figure 1c end-to-end: with copy the relay link carries each chunk once;
    // the shortest-path (copy-free) baseline carries it once per destination.
    let topo = te_ccl::topology::fig1c(1.0e9);
    let mut demand = DemandMatrix::new(topo.num_nodes(), 1);
    for d in 2..5 {
        demand.set(NodeId(0), 0, NodeId(d));
    }
    let chunk = 1.0e6;

    let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(6));
    let ours = solver.solve(&demand, chunk).unwrap();
    check_and_time(&topo, &demand, &ours.schedule);
    let ours_upstream = ours
        .schedule
        .sends
        .iter()
        .filter(|s| s.from == NodeId(0) && s.to == NodeId(1))
        .count();

    let sp = shortest_path_schedule(&topo, &demand, chunk);
    let sp_upstream = sp
        .sends
        .iter()
        .filter(|s| s.from == NodeId(0) && s.to == NodeId(1))
        .count();

    assert_eq!(
        ours_upstream, 1,
        "copy-aware schedule sends the chunk upstream once"
    );
    assert_eq!(
        sp_upstream, 3,
        "unicast baseline duplicates the chunk per destination"
    );
}

#[test]
fn ring_baseline_and_teccl_agree_on_ring_topology_allgather() {
    // On a pure ring the optimal ALLGATHER *is* the ring schedule; TE-CCL's
    // schedule should finish within a small factor of it.
    let topo = te_ccl::topology::ring_topology(4, 25.0e9, 0.7e-6);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let chunk = 1.0e6;

    let ring = ring_all_gather(&topo, &gpus, 1, chunk).unwrap();
    let t_ring = check_and_time(&topo, &demand, &ring);

    let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop().with_max_epochs(8));
    let ours = solver.solve(&demand, chunk).unwrap();
    let t_ours = check_and_time(&topo, &demand, &ours.schedule);

    assert!(
        t_ours <= t_ring * 1.5 + 1e-9,
        "TE-CCL {t_ours} vs ring {t_ring}"
    );
}

#[test]
fn sccl_like_barrier_is_slower_than_teccl_pipelining_on_multichunk() {
    // Table 3's effect: with several chunks, the barrier-per-round baseline
    // pays the (large) α cost every round while TE-CCL pipelines chunks into
    // the α shadow of earlier ones.
    let topo = te_ccl::topology::line_topology(3, 1.0e9, 5.0e-3); // α = 5 * β
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::broadcast(topo.num_nodes(), &gpus, gpus[0], 3);
    let chunk = 1.0e6;

    let sccl = sccl_like_schedule(&topo, &demand, chunk).unwrap();

    let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(10));
    let ours = solver.solve(&demand, chunk).unwrap();
    let t_ours = check_and_time(&topo, &demand, &ours.schedule);

    assert!(
        t_ours < sccl.transfer_time,
        "TE-CCL ({t_ours}) should beat the barrier baseline ({})",
        sccl.transfer_time
    );
}

#[test]
fn taccl_like_is_valid_but_not_better_than_teccl_on_internal1() {
    let topo = te_ccl::topology::internal1(1);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let chunk = 1.0e6;

    let taccl = taccl_like_schedule(&topo, &demand, chunk, &TacclConfig::default()).unwrap();
    let t_taccl = check_and_time(&topo, &demand, &taccl.schedule);

    let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop().with_max_epochs(8));
    let ours = solver.solve(&demand, chunk).unwrap();
    let t_ours = check_and_time(&topo, &demand, &ours.schedule);

    // TE-CCL co-optimizes routing and scheduling, but its schedules are
    // quantized to epoch boundaries while the TACCL-like baseline is purely
    // dependency-paced, so each relay hop can cost up to one extra epoch in
    // the simulator. Allow that quantization penalty (the schedule here is
    // epoch-optimal: exactly one epoch above the continuous time).
    let tau = ours.epoch_duration;
    assert!(
        t_ours <= t_taccl + 1.5 * tau + 1e-9,
        "TE-CCL {t_ours} vs TACCL-like {t_taccl} (tau {tau})"
    );
}

#[test]
fn reduce_scatter_and_gather_demands_solve_via_lp() {
    let topo = te_ccl::topology::internal2(2);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let chunk = 1.0e6;
    for kind in [
        CollectiveKind::ReduceScatter,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
    ] {
        let demand = DemandMatrix::for_collective(kind, topo.num_nodes(), &gpus, 1);
        let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(16));
        let out = solver
            .solve(&demand, chunk)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(
            out.formulation,
            te_ccl::core::solver::FormulationKind::Lp,
            "{kind:?}"
        );
        check_and_time(&topo, &demand, &out.schedule);
    }
}

#[test]
fn schedules_are_deterministic_across_runs() {
    let topo = te_ccl::topology::internal2(2);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let chunk = 1.0e6;
    let solve = || {
        TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(8))
            .solve(&demand, chunk)
            .unwrap()
            .schedule
            .sorted_sends()
    };
    assert_eq!(
        solve(),
        solve(),
        "TE-CCL must be deterministic (§6: 'produces the same solution in each run')"
    );
}

#[test]
fn msccl_export_roundtrips_through_json() {
    let topo = te_ccl::topology::line_topology(3, 1.0e9, 0.0);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::broadcast(topo.num_nodes(), &gpus, gpus[0], 1);
    let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(6));
    let out = solver.solve(&demand, 1.0e6).unwrap();
    let json = out.schedule.to_msccl_json();
    let text = json.to_json();
    let back = te_ccl::prelude::JsonValue::parse(&text).unwrap();
    assert_eq!(
        back.get("gpus")
            .and_then(te_ccl::prelude::JsonValue::as_arr)
            .unwrap()
            .len(),
        3
    );
}

#[test]
fn alpha_modeling_matters_for_small_transfers() {
    // Figure 2's qualitative claim: ignoring α under-estimates the finish time
    // badly for small transfers and barely matters for large ones.
    let topo = te_ccl::topology::fig2_topology();
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);

    let small_chunk = 1.0e3; // 1 KB
    let large_chunk = 16.0e6; // 16 MB

    for (chunk, expect_large_error) in [(small_chunk, true), (large_chunk, false)] {
        let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop().with_max_epochs(8));
        let out = solver.solve_astar(&demand, chunk).unwrap();
        let with_alpha = simulate(&topo, &demand, &out.schedule)
            .unwrap()
            .transfer_time;
        let no_alpha_topo = topo.with_alpha_scaled(0.0);
        let without_alpha = simulate(&no_alpha_topo, &demand, &out.schedule)
            .unwrap()
            .transfer_time;
        let rel_error = (with_alpha - without_alpha) / with_alpha * 100.0;
        if expect_large_error {
            // Epoch pacing absorbs part of the α into the schedule itself, so
            // the measured gap sits below the paper's raw-α figure; what
            // matters is the order-of-magnitude split versus large transfers.
            assert!(
                rel_error > 10.0,
                "small transfers should be α-dominated, error {rel_error}%"
            );
        } else {
            assert!(
                rel_error < 5.0,
                "large transfers should be β-dominated, error {rel_error}%"
            );
        }
    }
}
