//! The merge gate as a test: the real workspace must lint clean. Every
//! escape in force is printed so the suite output doubles as the audit
//! trail of allowed exceptions.

#[test]
fn workspace_has_no_lint_errors() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = teccl_lint::discover_root(here).expect("workspace root above crates/lint");
    let sources = teccl_lint::collect_files(&root).expect("read workspace sources");
    assert!(
        sources.len() > 50,
        "suspiciously few sources ({}) — discovery broke",
        sources.len()
    );
    let outcome = teccl_lint::analyze(&sources);
    for f in &outcome.allowed {
        println!(
            "allowed: {} ({})",
            f.render(),
            f.allowed.as_deref().unwrap_or("")
        );
    }
    let rendered: Vec<String> = outcome.errors.iter().map(|f| f.render()).collect();
    assert!(
        outcome.errors.is_empty(),
        "teccl-lint found {} error(s) in the workspace:\n{}",
        outcome.errors.len(),
        rendered.join("\n")
    );
}
