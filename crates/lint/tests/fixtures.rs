//! Per-rule fixture pairs: for every rule, a snippet that must fire and a
//! near-identical snippet that must pass. These are the linter's regression
//! suite — each fire fixture seeds exactly the invariant breach the rule
//! exists to catch (an uncovered pivot loop, a reversed lock acquisition)
//! and fails the test if the rule ever stops seeing it.

use teccl_lint::analyze_snippets;
use teccl_lint::report::{Finding, Outcome};

/// Findings of one rule, errors only.
fn errors<'a>(o: &'a Outcome, rule: &str) -> Vec<&'a Finding> {
    o.errors.iter().filter(|f| f.rule == rule).collect()
}

/// The sync.rs stand-in every lock-order fixture shares: it declares the
/// rank order (declaration order = acquisition order) and is otherwise
/// excluded from the walk, exactly like the real file.
const SYNC_FIXTURE: (&str, &str) = (
    "crates/service/src/sync.rs",
    "pub enum LockRank { Workers, State }\n",
);

// ---------------------------------------------------------------- lock-discipline

#[test]
fn lock_discipline_fires_on_raw_lock_in_service() {
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        r##"
fn peek(&self) -> usize {
    let g = self.state.lock();
    g.len()
}
"##,
    )]);
    let f = errors(&o, "lock-discipline");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert_eq!(f[0].line, 3);
}

#[test]
fn lock_discipline_fires_on_condvar_wait_with_guard() {
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        r##"
fn park(&self, g: G) {
    let g = self.cv.wait(g);
    let (g, t) = self.cv.wait_timeout(g, dur);
}
"##,
    )]);
    assert_eq!(errors(&o, "lock-discipline").len(), 2, "{:?}", o.errors);
}

#[test]
fn lock_discipline_passes_zero_arg_wait_and_sync_rs() {
    // `Ticket::wait()` / `Barrier::wait()` take no guard; sync.rs itself
    // wraps the raw primitives and is out of scope.
    let o = analyze_snippets(&[
        (
            "crates/service/src/cache.rs",
            "fn join(&self) { self.ticket.wait(); self.barrier.wait(); }\n",
        ),
        (
            "crates/service/src/sync.rs",
            "fn raw(m: &M) -> G { m.lock().unwrap_or_else(|p| p.into_inner()) }\n",
        ),
    ]);
    assert!(errors(&o, "lock-discipline").is_empty(), "{:?}", o.errors);
}

#[test]
fn lock_discipline_fires_in_lp_outside_par_rs() {
    let o = analyze_snippets(&[(
        "crates/lp/src/milp.rs",
        r##"
fn steal(&self) -> Node {
    let mut pool = self.pool.lock();
    pool.pop()
}
"##,
    )]);
    let f = errors(&o, "lock-discipline");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert!(
        f[0].message.contains("par.rs"),
        "lp findings must point at the lp remedy: {:?}",
        f[0].message
    );
}

#[test]
fn lock_discipline_passes_par_rs() {
    // par.rs is the lp crate's designated locking module, exactly as sync.rs
    // is the service's.
    let o = analyze_snippets(&[(
        "crates/lp/src/par.rs",
        "fn raw(m: &M) -> G { m.lock().unwrap_or_else(|p| p.into_inner()) }\n",
    )]);
    assert!(errors(&o, "lock-discipline").is_empty(), "{:?}", o.errors);
}

// ---------------------------------------------------------------- lock-order

#[test]
fn lock_order_fires_on_seeded_cycle() {
    // Seeded deadlock: one function takes Workers → State, another takes
    // State → Workers. The reversed edge violates the declared order AND
    // closes a cycle; both must be reported.
    let o = analyze_snippets(&[
        SYNC_FIXTURE,
        (
            "crates/service/src/service.rs",
            r##"
fn forward(x: &X) {
    let w = lock_recover(&x.workers, LockRank::Workers);
    let s = lock_recover(&x.state, LockRank::State);
}
fn backward(x: &X) {
    let s = lock_recover(&x.state, LockRank::State);
    let w = lock_recover(&x.workers, LockRank::Workers);
}
"##,
        ),
    ]);
    let f = errors(&o, "lock-order");
    assert!(
        f.iter()
            .any(|f| f.message.contains("violates the declared LockRank order")),
        "{:?}",
        o.errors
    );
    assert!(
        f.iter().any(|f| f.message.contains("cycle")),
        "{:?}",
        o.errors
    );
}

#[test]
fn lock_order_passes_ordered_acquisition() {
    let o = analyze_snippets(&[
        SYNC_FIXTURE,
        (
            "crates/service/src/service.rs",
            r##"
fn forward(x: &X) {
    let w = lock_recover(&x.workers, LockRank::Workers);
    let s = lock_recover(&x.state, LockRank::State);
}
"##,
        ),
    ]);
    assert!(errors(&o, "lock-order").is_empty(), "{:?}", o.errors);
}

#[test]
fn lock_order_fires_on_self_deadlock_via_call() {
    // `outer` holds State and calls `helper`, which re-acquires State — a
    // single-thread deadlock the one-level call-graph pass must see.
    let o = analyze_snippets(&[
        SYNC_FIXTURE,
        (
            "crates/service/src/service.rs",
            r##"
fn helper(x: &X) {
    let g = lock_recover(&x.state, LockRank::State);
}
fn outer(x: &X) {
    let g = lock_recover(&x.state, LockRank::State);
    helper(x);
}
"##,
        ),
    ]);
    let f = errors(&o, "lock-order");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert!(f[0].message.contains("self-deadlock"), "{}", f[0].message);
}

#[test]
fn lock_order_fires_on_direct_reacquisition() {
    let o = analyze_snippets(&[
        SYNC_FIXTURE,
        (
            "crates/service/src/service.rs",
            r##"
fn twice(x: &X) {
    let a = lock_recover(&x.state, LockRank::State);
    let b = lock_recover(&x.state, LockRank::State);
}
"##,
        ),
    ]);
    let f = errors(&o, "lock-order");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert!(f[0].message.contains("re-acquires"), "{}", f[0].message);
}

#[test]
fn lock_order_passes_when_guard_dropped_before_next_lock() {
    // Scope-awareness: an explicit drop (or a closed block) ends the hold,
    // so State-then-Workers in *sequence* is not State-while-Workers.
    let o = analyze_snippets(&[
        SYNC_FIXTURE,
        (
            "crates/service/src/service.rs",
            r##"
fn sequential(x: &X) {
    let s = lock_recover(&x.state, LockRank::State);
    drop(s);
    let w = lock_recover(&x.workers, LockRank::Workers);
}
fn block_scoped(x: &X) {
    {
        let s = lock_recover(&x.state, LockRank::State);
    }
    let w = lock_recover(&x.workers, LockRank::Workers);
}
"##,
        ),
    ]);
    assert!(errors(&o, "lock-order").is_empty(), "{:?}", o.errors);
}

#[test]
fn lock_order_ignores_method_calls_on_non_self_receivers() {
    // `st.cache.evict(…)` must not resolve against a *service* fn that
    // happens to share the name `evict` (the PR 7 false positive).
    let o = analyze_snippets(&[
        SYNC_FIXTURE,
        (
            "crates/service/src/service.rs",
            r##"
fn evict(x: &X) {
    let g = lock_recover(&x.state, LockRank::State);
}
fn evict_key(x: &X, hash: u64) -> bool {
    lock_recover(&x.state, LockRank::State).cache.evict(hash)
}
"##,
        ),
    ]);
    assert!(errors(&o, "lock-order").is_empty(), "{:?}", o.errors);
}

// ---------------------------------------------------------------- budget-coverage

#[test]
fn budget_coverage_fires_on_uncovered_pivot_loop() {
    // The seeded breach from the issue: a pivot loop in simplex.rs with no
    // budget charge — a deadline cannot stop it.
    let o = analyze_snippets(&[(
        "crates/lp/src/simplex.rs",
        r##"
fn pivot_to_optimality(&mut self) {
    loop {
        let col = self.choose_column();
        if col.is_none() { break; }
        self.do_pivot(col);
    }
}
"##,
    )]);
    let f = errors(&o, "budget-coverage");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert_eq!(f[0].line, 3);
}

#[test]
fn budget_coverage_passes_charged_loop() {
    let o = analyze_snippets(&[(
        "crates/lp/src/simplex.rs",
        r##"
fn pivot_to_optimality(&mut self) {
    loop {
        if self.budget.exceeded(self.iters) { break; }
        let col = self.choose_column();
        if col.is_none() { break; }
        self.budget.charge(1);
        self.do_pivot(col);
    }
}
"##,
    )]);
    assert!(errors(&o, "budget-coverage").is_empty(), "{:?}", o.errors);
}

#[test]
fn budget_coverage_checks_for_loops_that_solve() {
    // A bounded `for` that runs a solve per iteration (the A* round loop) is
    // as hot as any `while`; a `for` that only shuffles data is not.
    let o = analyze_snippets(&[(
        "crates/core/src/astar.rs",
        r##"
fn run_rounds(&mut self, n: usize) {
    for r in 0..n {
        let s = solve_round(r);
        self.best = pick(self.best, s);
    }
}
fn renumber(&mut self) {
    for e in self.edges.iter_mut() {
        e.id += 1;
    }
}
"##,
    )]);
    let f = errors(&o, "budget-coverage");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert_eq!(f[0].line, 3);
}

#[test]
fn budget_coverage_covers_the_parallel_pool_wait_loop() {
    // par.rs is a designated hot file: a worker parked on the shared node
    // pool must still observe the budget each wakeup, or a cancelled solve
    // would wait out its full deadline.
    let o = analyze_snippets(&[(
        "crates/lp/src/par.rs",
        r##"
fn pop(&self) -> Option<Node> {
    let mut st = self.lock_state();
    loop {
        if let Some(n) = st.heap_pop() { return Some(n); }
        st = self.park(st);
    }
}
"##,
    )]);
    let f = errors(&o, "budget-coverage");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert_eq!(f[0].line, 4);
}

#[test]
fn budget_coverage_skips_tests_and_cold_files() {
    let o = analyze_snippets(&[
        (
            "crates/lp/src/milp.rs",
            r##"
#[cfg(test)]
mod tests {
    #[test]
    fn spin() {
        while !done() { step(); }
    }
}
"##,
        ),
        (
            "crates/lp/src/tableau.rs",
            "fn fill(&mut self) { while self.next() { self.push(); } }\n",
        ),
    ]);
    assert!(errors(&o, "budget-coverage").is_empty(), "{:?}", o.errors);
}

// ---------------------------------------------------------------- panic-hygiene

#[test]
fn panic_hygiene_fires_outside_the_boundary() {
    let o = analyze_snippets(&[(
        "crates/service/src/protocol.rs",
        r##"
fn read_frame(r: &mut R) -> Frame {
    let len = r.read_u32().unwrap();
    if len > MAX { panic!("oversized frame"); }
    Frame { len }
}
"##,
    )]);
    assert_eq!(errors(&o, "panic-hygiene").len(), 2, "{:?}", o.errors);
}

#[test]
fn panic_hygiene_exempts_catch_unwind_and_its_callees() {
    // `run_solve` is named inside the catch_unwind argument, so its body is
    // under the guard (one level of call graph).
    let o = analyze_snippets(&[(
        "crates/service/src/service.rs",
        r##"
fn worker(&self) {
    let r = catch_unwind(|| run_solve(self));
    self.report(r);
}
fn run_solve(s: &S) -> Out {
    s.model.solve().unwrap()
}
"##,
    )]);
    assert!(errors(&o, "panic-hygiene").is_empty(), "{:?}", o.errors);
}

#[test]
fn panic_hygiene_exempts_tests_and_out_of_scope_files() {
    let o = analyze_snippets(&[
        (
            "crates/service/src/service.rs",
            r##"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { make().unwrap(); }
}
"##,
        ),
        (
            "crates/lp/src/simplex.rs",
            "fn t(&self) -> f64 { self.cell(0, 0).unwrap() }\n",
        ),
    ]);
    assert!(errors(&o, "panic-hygiene").is_empty(), "{:?}", o.errors);
}

// ---------------------------------------------------------------- hash-stability

#[test]
fn hash_stability_fires_on_randomized_hashers_and_raw_to_bits() {
    let o = analyze_snippets(&[(
        "crates/service/src/key.rs",
        r##"
use std::collections::HashMap;
fn derive(req: &Request) -> u64 {
    let mut h = DefaultHasher::new();
    h.write_u64(req.alpha.to_bits());
    h.finish()
}
"##,
    )]);
    let f = errors(&o, "hash-stability");
    // HashMap (import), DefaultHasher, and the unquantized to_bits.
    assert_eq!(f.len(), 3, "{:?}", o.errors);
    assert!(f.iter().any(|f| f.message.contains("to_bits")), "{:?}", f);
}

#[test]
fn hash_stability_passes_stable_hashing_and_quantize_fns() {
    let o = analyze_snippets(&[(
        "crates/util/src/hash.rs",
        r##"
use std::collections::BTreeMap;
fn write_f64_quantized(&mut self, v: f64) {
    self.write_u64(quantize(v).to_bits());
}
"##,
    )]);
    assert!(errors(&o, "hash-stability").is_empty(), "{:?}", o.errors);
}

#[test]
fn hash_stability_scopes_graph_rs_to_fingerprint_only() {
    let o = analyze_snippets(&[(
        "crates/topology/src/graph.rs",
        r##"
fn adjacency(&self) -> HashMap<u32, Vec<u32>> {
    build_adjacency(self)
}
fn fingerprint(&self) -> u64 {
    let m: HashMap<u32, u32> = fold(self);
    mix(m)
}
"##,
    )]);
    let f = errors(&o, "hash-stability");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert_eq!(f[0].line, 6);
}

// ---------------------------------------------------------------- forbid-unsafe

#[test]
fn forbid_unsafe_fires_on_missing_attr_and_unsafe_token() {
    let o = analyze_snippets(&[
        ("crates/foo/src/lib.rs", "pub fn f() {}\n"),
        (
            "crates/bar/src/raw.rs",
            "fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
        ),
    ]);
    let f = errors(&o, "forbid-unsafe");
    assert_eq!(f.len(), 2, "{:?}", o.errors);
    assert!(
        f.iter().any(|f| f.message.contains("crate root")),
        "{:?}",
        f
    );
    assert!(
        f.iter().any(|f| f.message.contains("`unsafe` token")),
        "{:?}",
        f
    );
}

#[test]
fn forbid_unsafe_passes_attributed_crate_root() {
    let o = analyze_snippets(&[(
        "crates/foo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )]);
    assert!(errors(&o, "forbid-unsafe").is_empty(), "{:?}", o.errors);
}

// ---------------------------------------------------------------- lint:allow escapes

#[test]
fn allow_with_reason_suppresses_and_is_reported() {
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        r##"
fn peek(&self) -> usize {
    // lint:allow(lock-discipline): fixture demonstrating a justified escape
    let g = self.state.lock();
    g.len()
}
"##,
    )]);
    assert!(o.errors.is_empty(), "{:?}", o.errors);
    assert_eq!(o.allowed.len(), 1);
    assert_eq!(o.allowed[0].rule, "lock-discipline");
    assert_eq!(
        o.allowed[0].allowed.as_deref(),
        Some("fixture demonstrating a justified escape")
    );
}

#[test]
fn trailing_allow_suppresses_its_own_line() {
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        "fn peek(&self) -> usize { self.state.lock().len() } \
         // lint:allow(lock-discipline): trailing escape fixture\n",
    )]);
    assert!(o.errors.is_empty(), "{:?}", o.errors);
    assert_eq!(o.allowed.len(), 1);
}

#[test]
fn allow_without_reason_is_an_error_and_does_not_suppress() {
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        r##"
fn peek(&self) -> usize {
    // lint:allow(lock-discipline)
    let g = self.state.lock();
    g.len()
}
"##,
    )]);
    // Both the reasonless escape and the original finding are errors.
    assert_eq!(errors(&o, "lint-allow").len(), 1, "{:?}", o.errors);
    assert_eq!(errors(&o, "lock-discipline").len(), 1, "{:?}", o.errors);
    assert!(o.allowed.is_empty());
}

#[test]
fn allow_with_unknown_rule_is_an_error() {
    let o = analyze_snippets(&[(
        "crates/lp/src/tableau.rs",
        "// lint:allow(lock-disciplin): typo in the rule name\nfn f() {}\n",
    )]);
    let f = errors(&o, "lint-allow");
    assert_eq!(f.len(), 1, "{:?}", o.errors);
    assert!(f[0].message.contains("unknown rule"), "{}", f[0].message);
}

#[test]
fn allow_must_target_the_finding_line() {
    // An allow two lines above the violation targets the blank-separated
    // next code line only; a finding elsewhere stays an error.
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        r##"
fn peek(&self) -> usize {
    // lint:allow(lock-discipline): aimed at the wrong line
    let n = self.len;
    let g = self.state.lock();
    g.len()
}
"##,
    )]);
    assert_eq!(errors(&o, "lock-discipline").len(), 1, "{:?}", o.errors);
    assert!(o.allowed.is_empty());
}

#[test]
fn doc_comment_mentions_are_not_escapes() {
    // Prose describing the syntax (as the linter's own docs do) must not
    // parse as a real escape.
    let o = analyze_snippets(&[(
        "crates/lp/src/tableau.rs",
        "//! The escape hatch is `// lint:allow(rule-name): reason`.\nfn f() {}\n",
    )]);
    assert!(errors(&o, "lint-allow").is_empty(), "{:?}", o.errors);
}

#[test]
fn lint_allow_meta_findings_cannot_be_suppressed() {
    use teccl_lint::allow::{suppressing, Allow};
    let a = Allow {
        rule: "lint-allow".to_string(),
        reason: "trying to silence the meta-rule".to_string(),
        line: 3,
        target_line: Some(3),
    };
    let f = Finding::new("lint-allow", "f.rs", 3, "m".to_string());
    assert!(suppressing(&[a], &f).is_none());
}

// ---------------------------------------------------------------- report shape

#[test]
fn json_report_carries_errors_and_allow_reasons() {
    let o = analyze_snippets(&[(
        "crates/service/src/cache.rs",
        r##"
fn peek(&self) -> usize {
    // lint:allow(lock-discipline): reason preserved in the report
    let g = self.state.lock();
    self.other.lock()
}
"##,
    )]);
    let json = o.to_json(teccl_lint::rules::RULE_NAMES).to_json_pretty();
    assert!(json.contains("\"error_count\": 1"), "{json}");
    assert!(json.contains("\"allowed_count\": 1"), "{json}");
    assert!(json.contains("reason preserved in the report"), "{json}");
}
