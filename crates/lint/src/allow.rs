//! The escape hatch: `// lint:allow(rule-name): reason`.
//!
//! An allow on its own line suppresses matching findings on the next code
//! line; a trailing allow suppresses findings on its own line. The escape
//! itself is linted: a missing or empty reason, or an unknown rule name, is
//! an error (`lint-allow` meta-rule) — and meta-errors cannot themselves be
//! allowed, so the reason requirement has no trapdoor.

use crate::report::Finding;
use crate::scan::SourceFile;

/// One parsed `lint:allow` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the colon (trimmed; may be empty = invalid).
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// The code line this allow applies to.
    pub target_line: Option<u32>,
}

/// Extracts the allows from a file's comments and resolves their targets.
pub fn collect_allows(file: &SourceFile) -> Vec<Allow> {
    // Sorted list of lines that carry code tokens, for "next code line".
    let mut code_lines: Vec<u32> = file.toks.iter().map(|t| t.line).collect();
    code_lines.sort_unstable();
    code_lines.dedup();

    let mut out = Vec::new();
    for c in &file.comments {
        // An allow must be the whole comment: `// lint:allow(rule): reason`.
        // Mentions embedded in prose (doc comments describing the syntax) are
        // not escapes.
        let trimmed = c.text.trim_start();
        let Some(rest) = trimmed.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                rule: String::new(),
                reason: String::new(),
                line: c.line,
                target_line: None,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = match after.trim_start().strip_prefix(':') {
            Some(r) => r.trim().to_string(),
            None => String::new(),
        };
        let target_line = if c.trailing {
            Some(c.line)
        } else {
            code_lines.iter().copied().find(|&l| l > c.line)
        };
        out.push(Allow {
            rule,
            reason,
            line: c.line,
            target_line,
        });
    }
    out
}

/// Validates the allows themselves: every escape needs a known rule name and
/// a non-empty reason. Returns `lint-allow` meta-findings.
pub fn validate_allows(file: &SourceFile, allows: &[Allow], known_rules: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows {
        if a.rule.is_empty() {
            out.push(Finding::new(
                "lint-allow",
                &file.rel,
                a.line,
                "malformed lint:allow — expected `lint:allow(rule-name): reason`".to_string(),
            ));
            continue;
        }
        if !known_rules.contains(&a.rule.as_str()) {
            out.push(Finding::new(
                "lint-allow",
                &file.rel,
                a.line,
                format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    known_rules.join(", ")
                ),
            ));
        }
        if a.reason.is_empty() {
            out.push(Finding::new(
                "lint-allow",
                &file.rel,
                a.line,
                format!(
                    "lint:allow({}) has no reason — escapes must say why \
                     (`lint:allow({}): <reason>`)",
                    a.rule, a.rule
                ),
            ));
        }
    }
    out
}

/// Returns the allow suppressing `finding`, if any. `lint-allow` meta
/// findings are never suppressible.
pub fn suppressing<'a>(allows: &'a [Allow], finding: &Finding) -> Option<&'a Allow> {
    if finding.rule == "lint-allow" {
        return None;
    }
    allows.iter().find(|a| {
        a.rule == finding.rule && !a.reason.is_empty() && a.target_line == Some(finding.line)
    })
}
