//! Findings and the machine-readable JSON report.

use teccl_util::json::Value;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which rule fired (stable kebab-case name).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when a `lint:allow` suppressed this finding — kept in
    /// the report for auditability, excluded from the exit code.
    pub allowed: Option<String>,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            allowed: None,
        }
    }

    /// `file:line: [rule] message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("rule", Value::from(self.rule)),
            ("file", Value::from(self.file.as_str())),
            ("line", Value::from(self.line as u64)),
            ("message", Value::from(self.message.as_str())),
        ];
        if let Some(reason) = &self.allowed {
            fields.push(("allowed", Value::from(true)));
            fields.push(("allow_reason", Value::from(reason.as_str())));
        }
        Value::obj(fields)
    }
}

/// The full run outcome: errors fail the build, `allowed` documents every
/// escape in force.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Unsuppressed findings (exit code 1 when non-empty).
    pub errors: Vec<Finding>,
    /// Findings suppressed by a valid `lint:allow`.
    pub allowed: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Serializes the report (written as a CI artifact).
    pub fn to_json(&self, rules: &[&str]) -> Value {
        Value::obj(vec![
            ("files_scanned", Value::from(self.files_scanned as u64)),
            (
                "rules",
                Value::Arr(rules.iter().map(|r| Value::from(*r)).collect()),
            ),
            ("error_count", Value::from(self.errors.len() as u64)),
            ("allowed_count", Value::from(self.allowed.len() as u64)),
            (
                "errors",
                Value::Arr(self.errors.iter().map(Finding::to_json).collect()),
            ),
            (
                "allowed",
                Value::Arr(self.allowed.iter().map(Finding::to_json).collect()),
            ),
        ])
    }
}
