//! A brace/item scanner over the token stream: function spans, `#[cfg(test)]`
//! / `#[test]` spans, and loop constructs with their body extents. This is
//! the shared structural layer every rule builds on — no rule re-walks raw
//! text.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body `{`.
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
}

/// What kind of loop construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    Loop,
    While,
    For,
}

impl LoopKind {
    pub fn keyword(self) -> &'static str {
        match self {
            LoopKind::Loop => "loop",
            LoopKind::While => "while",
            LoopKind::For => "for",
        }
    }
}

/// One loop with its body extent.
#[derive(Debug, Clone)]
pub struct Loop {
    pub kind: LoopKind,
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Token index of the loop keyword.
    pub kw: usize,
    /// Token index of the body `{`.
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
}

/// One scanned source file: tokens, comments, and the structural index.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub functions: Vec<Function>,
    /// Token-index ranges `[start, end)` under `#[cfg(test)]` or `#[test]`.
    pub test_spans: Vec<(usize, usize)>,
    pub loops: Vec<Loop>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let toks = lexed.toks;
        let functions = scan_functions(&toks);
        let test_spans = scan_test_spans(&toks);
        let loops = scan_loops(&toks);
        SourceFile {
            rel: rel.to_string(),
            toks,
            comments: lexed.comments,
            functions,
            test_spans,
            loops,
        }
    }

    /// True if token index `i` lies inside a test-only span.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_function(&self, i: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| i > f.body_open && i < f.body_close)
            .min_by_key(|f| f.body_close - f.body_open)
    }

    /// True if any identifier in `[start, end)` equals `name` and is
    /// immediately followed by `(` (a call or macro-free invocation).
    pub fn calls_in_range(&self, start: usize, end: usize, name: &str) -> bool {
        (start..end.min(self.toks.len().saturating_sub(1))).any(|i| {
            self.toks[i].is_ident(name) && self.toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        })
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// file is truncated).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// From `start`, finds the first `{` at paren/bracket depth 0 — the body
/// opener of an `fn` / loop / `if` header. Returns `None` if a `;` at depth
/// 0 arrives first (a bodyless declaration).
pub fn find_body_open(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(i),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Finds every `fn name(...) { ... }` item.
fn scan_functions(toks: &[Tok]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            // `fn(` is a function-pointer type, not an item.
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    if let Some(open) = find_body_open(toks, i + 2) {
                        let close = matching_brace(toks, open);
                        out.push(Function {
                            name: name_tok.text.clone(),
                            line: toks[i].line,
                            body_open: open,
                            body_close: close,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds spans covered by `#[cfg(test)]` or `#[test]` attributes: the
/// attribute plus the braced item that follows it.
fn scan_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            // Collect the attribute tokens up to the matching `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut attr = String::new();
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if depth >= 1 && !(t.is_punct('[') && depth == 1) {
                    attr.push_str(&t.text);
                }
                j += 1;
            }
            let is_test_attr = attr == "test"
                || attr.contains("cfg(test)")
                || attr.contains("cfg(test,")
                || attr.starts_with("cfg(all(test")
                || attr.starts_with("cfg(any(test");
            if is_test_attr {
                if let Some(open) = find_body_open(toks, j + 1) {
                    let close = matching_brace(toks, open);
                    out.push((i, close + 1));
                    i = close + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Finds every `loop` / `while` / `for` loop. `for` in `impl Trait for Type`
/// and HRTB `for<'a>` headers is excluded by requiring an `in` at depth 0
/// between the keyword and the body.
fn scan_loops(toks: &[Tok]) -> Vec<Loop> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let kind = match t.text.as_str() {
            "loop" => LoopKind::Loop,
            "while" => LoopKind::While,
            "for" => LoopKind::For,
            _ => continue,
        };
        let Some(open) = find_body_open(toks, i + 1) else {
            continue;
        };
        if kind == LoopKind::For {
            let has_in = (i + 1..open).any(|k| {
                toks[k].is_ident("in") && {
                    // depth check: count parens/brackets between keyword and k
                    let mut depth = 0i32;
                    for t in &toks[i + 1..k] {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            _ => {}
                        }
                    }
                    depth == 0
                }
            });
            if !has_in {
                continue;
            }
        }
        let close = matching_brace(toks, open);
        out.push(Loop {
            kind,
            line: t.line,
            kw: i,
            body_open: open,
            body_close: close,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_and_bodies() {
        let f = SourceFile::parse(
            "x.rs",
            "fn outer() { inner_call(); }\ntrait T { fn decl(&self); }\nfn two() {}",
        );
        let names: Vec<&str> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "two"]);
        assert!(f.calls_in_range(
            f.functions[0].body_open,
            f.functions[0].body_close,
            "inner_call"
        ));
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_spans.len(), 1);
        let prod_fn = &f.functions[0];
        assert!(!f.in_test(prod_fn.body_open));
        let test_fn = f.functions.iter().find(|x| x.name == "t").unwrap();
        assert!(f.in_test(test_fn.body_open));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.test_spans.is_empty());
    }

    #[test]
    fn loops_found_with_kinds() {
        let src = "fn f() { loop { a(); } while x { b(); } while let Some(v) = it.next() { c(); } \
                   for i in 0..3 { d(); } }\nimpl Display for Foo { fn g(&self) {} }";
        let f = SourceFile::parse("x.rs", src);
        let kinds: Vec<LoopKind> = f.loops.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LoopKind::Loop,
                LoopKind::While,
                LoopKind::While,
                LoopKind::For
            ]
        );
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let f = SourceFile::parse("x.rs", "impl<T> Trait for Type<T> { fn m(&self) {} }");
        assert!(f.loops.is_empty());
    }
}
