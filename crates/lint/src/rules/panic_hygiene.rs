//! **panic-hygiene** — no panicking constructs on the service worker path or
//! in the wire protocol.
//!
//! A panic on a worker thread is contained by the `catch_unwind` in
//! `worker_loop` — but only what runs *inside* that guard is contained. An
//! `unwrap()` in the submit path panics the *caller*; one in the protocol
//! layer kills a connection thread. PR 5's fault-injection suite proves the
//! containment works; this rule keeps new panic sites from appearing outside
//! it.
//!
//! Scope: `service.rs` (orchestrator + worker path), `server.rs` (TCP
//! accept/connection threads), `protocol.rs` (wire parsing).
//!
//! Exempt:
//! * test spans (`#[cfg(test)]` / `#[test]`),
//! * code lexically inside a `catch_unwind(...)` argument,
//! * functions *called* from inside a `catch_unwind` argument (one level of
//!   call graph — the solve path runs entirely under the guard).

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scan::SourceFile;

const RULE: &str = "panic-hygiene";

const SCOPED_FILES: &[&str] = &[
    "crates/service/src/service.rs",
    "crates/service/src/server.rs",
    "crates/service/src/protocol.rs",
];

/// Method calls that panic.
const BAD_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that panic.
const BAD_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Token ranges lexically inside a `catch_unwind(` … `)` argument.
fn unwind_arg_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.toks;
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("catch_unwind") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            spans.push((i + 1, j));
        }
    }
    spans
}

/// Names of functions invoked inside any unwind span — those functions' own
/// bodies are under the guard too (one level).
fn boundary_functions(file: &SourceFile, spans: &[(usize, usize)]) -> Vec<String> {
    let toks = &file.toks;
    let mut names = Vec::new();
    for &(s, e) in spans {
        for i in s..e {
            if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
            {
                names.push(toks[i].text.clone());
            }
        }
    }
    names
}

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files
        .iter()
        .filter(|f| SCOPED_FILES.contains(&f.rel.as_str()))
    {
        let toks = &file.toks;
        let unwind_spans = unwind_arg_spans(file);
        let boundary = boundary_functions(file, &unwind_spans);
        // Body spans of the boundary functions (and, still one level deep,
        // anything lexically inside them).
        let mut exempt: Vec<(usize, usize)> = unwind_spans;
        for f in &file.functions {
            if boundary.contains(&f.name) {
                exempt.push((f.body_open, f.body_close + 1));
            }
        }
        let is_exempt = |i: usize| file.in_test(i) || exempt.iter().any(|&(s, e)| i >= s && i < e);

        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = toks[i].text.as_str();
            let method = toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && BAD_METHODS.contains(&name);
            let mac =
                toks.get(i + 1).is_some_and(|t| t.is_punct('!')) && BAD_MACROS.contains(&name);
            if (method || mac) && !is_exempt(i) {
                let what = if method {
                    format!(".{name}()")
                } else {
                    format!("{name}!")
                };
                out.push(Finding::new(
                    RULE,
                    &file.rel,
                    toks[i].line,
                    format!(
                        "`{what}` outside the catch_unwind boundary — a panic here \
                         escapes fault containment (return a typed error instead)"
                    ),
                ));
            }
        }
    }
    out
}
