//! **budget-coverage** — every hot loop must charge the cooperative
//! [`SolveBudget`].
//!
//! PR 5's canonical near-miss: the pure-LP path in `Model::solve_with_warm`
//! quietly skipped the budget, turning a 100 ms deadline into a 132 s solve.
//! The invariant "every loop that can burn unbounded solver time charges or
//! checks the budget" is exactly the kind nothing enforces once the PR
//! merges — so this rule does.
//!
//! Scope — the designated hot-loop files:
//! * `crates/lp/src/simplex.rs` (primal pivot loops)
//! * `crates/lp/src/dual.rs` (dual pivot loop)
//! * `crates/lp/src/milp.rs` (B&B node loops, sequential and parallel)
//! * `crates/lp/src/par.rs` (the shared node pool's wait loop)
//! * `crates/lp/src/decomp/mod.rs` (the column-generation round loop)
//! * `crates/lp/src/decomp/pricing.rs` (per-block pricing rounds)
//! * `crates/lp/src/decomp/master.rs` (restricted-master solves)
//! * `crates/core/src/astar.rs` (round loop)
//!
//! Every `loop` / `while` in these files must contain a `charge(` or
//! `exceeded(` call somewhere in its body (a nested covered loop counts —
//! the body text includes it). `for` loops are checked when their body
//! mentions a `solve`-family identifier: a bounded iteration that performs a
//! full solve per step (the A* round loop) is as hot as any `while`.

use crate::report::Finding;
use crate::scan::{LoopKind, SourceFile};

const RULE: &str = "budget-coverage";

/// The designated hot-loop files.
pub const HOT_FILES: &[&str] = &[
    "crates/lp/src/simplex.rs",
    "crates/lp/src/dual.rs",
    "crates/lp/src/milp.rs",
    "crates/lp/src/par.rs",
    "crates/lp/src/decomp/mod.rs",
    "crates/lp/src/decomp/pricing.rs",
    "crates/lp/src/decomp/master.rs",
    "crates/core/src/astar.rs",
];

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files.iter().filter(|f| HOT_FILES.contains(&f.rel.as_str())) {
        for lp in &file.loops {
            if file.in_test(lp.kw) {
                continue;
            }
            if lp.kind == LoopKind::For {
                let mentions_solve = (lp.body_open..lp.body_close).any(|i| {
                    let t = &file.toks[i];
                    t.kind == crate::lexer::TokKind::Ident
                        && t.text.to_ascii_lowercase().contains("solve")
                });
                if !mentions_solve {
                    continue;
                }
            }
            let charged = file.calls_in_range(lp.body_open, lp.body_close, "charge")
                || file.calls_in_range(lp.body_open, lp.body_close, "exceeded");
            if !charged {
                out.push(Finding::new(
                    RULE,
                    &file.rel,
                    lp.line,
                    format!(
                        "`{}` in a designated hot-loop file has no `charge(`/`exceeded(` \
                         in its body — a deadline cannot stop it (the PR 5 pure-LP bug \
                         class)",
                        lp.kind.keyword()
                    ),
                ));
            }
        }
    }
    out
}
