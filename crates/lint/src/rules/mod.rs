//! The rule catalog. Each rule is a function from the scanned workspace to
//! findings; scoping (which files/functions a rule audits) lives inside the
//! rule, grounded in a real past or near-miss bug documented in its module.

pub mod budget_coverage;
pub mod forbid_unsafe;
pub mod hash_stability;
pub mod lock_discipline;
pub mod lock_order;
pub mod panic_hygiene;

use crate::report::Finding;
use crate::scan::SourceFile;

/// Every rule name, for `lint:allow` validation and the report header.
/// `lint-allow` is the meta-rule for malformed escapes; it is listed so the
/// report names it, but it cannot be allowed.
pub const RULE_NAMES: &[&str] = &[
    "lock-discipline",
    "lock-order",
    "budget-coverage",
    "panic-hygiene",
    "hash-stability",
    "forbid-unsafe",
    "lint-allow",
];

/// Runs every rule over the scanned files.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(lock_discipline::check(files));
    out.extend(lock_order::check(files));
    out.extend(budget_coverage::check(files));
    out.extend(panic_hygiene::check(files));
    out.extend(hash_stability::check(files));
    out.extend(forbid_unsafe::check(files));
    out
}
