//! **lock-order** — static deadlock detection over the service's named
//! locks.
//!
//! `ensure_workers` acquires the `State` lock while holding `Workers`; if
//! any path ever acquired them the other way round, two threads could each
//! hold one and wait for the other — the classic two-lock deadlock, invisible
//! to every test that doesn't hit the exact interleaving. This rule extracts
//! a static lock-acquisition graph from `crates/service/src` and fails on:
//!
//! * an edge that contradicts the declared [`LockRank`] order (parsed from
//!   the `enum LockRank` declaration in `sync.rs` — declaration order *is*
//!   the acquisition order),
//! * any cycle in the graph (even among locks with no declared rank),
//! * re-acquiring a lock already held (self-deadlock on a non-reentrant
//!   `std::sync::Mutex`).
//!
//! Extraction is scope-aware: a `let`-bound guard is held to the end of its
//! enclosing block (or an explicit `drop(guard)`); a temporary guard
//! (`lock_recover(&m, R).field…`) is held to the end of its statement. On
//! top of the per-function scan, one level of call graph: a call made while
//! holding lock `A` to a function that itself acquires `B` contributes the
//! edge `A → B`.
//!
//! The runtime complement lives in `sync.rs`: debug builds keep a
//! thread-local stack of held ranks and panic on inversion at the point of
//! acquisition.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::scan::SourceFile;

const RULE: &str = "lock-order";

/// One acquisition edge: `from` was held when `to` was acquired.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

/// A lock currently held during the per-function walk.
#[derive(Debug, Clone)]
struct Held {
    lock: String,
    /// Brace depth at acquisition (releases when its scope closes).
    depth: usize,
    /// `let` binding name, if any (releases on `drop(name)`).
    binding: Option<String>,
    /// True for unbound temporaries (releases at end of statement).
    temp: bool,
}

/// A call made while holding locks (for the one-level call-graph pass).
#[derive(Debug, Clone)]
struct HeldCall {
    callee: String,
    held: Vec<String>,
    file: String,
    line: u32,
    caller: String,
}

/// Parses the declared order from `enum LockRank { A, B, … }`: variant name
/// → declaration index. Declaration order is acquisition order.
fn declared_order(files: &[SourceFile]) -> BTreeMap<String, usize> {
    let mut order = BTreeMap::new();
    for file in files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if !(toks[i].is_ident("enum")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("LockRank")))
            {
                continue;
            }
            let Some(open) = (i + 2..toks.len()).find(|&k| toks[k].is_punct('{')) else {
                continue;
            };
            let close = crate::scan::matching_brace(toks, open);
            // Variants: idents at depth 1 that directly follow `{` or `,`,
            // skipping attributes.
            let mut expect_variant = true;
            let mut k = open + 1;
            while k < close {
                let t = &toks[k];
                if t.is_punct('#') {
                    // Skip `#[...]`.
                    let mut depth = 0i32;
                    k += 1;
                    while k < close {
                        if toks[k].is_punct('[') {
                            depth += 1;
                        } else if toks[k].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                } else if expect_variant && t.kind == TokKind::Ident {
                    let idx = order.len();
                    order.insert(t.text.clone(), idx);
                    expect_variant = false;
                } else if t.is_punct(',') {
                    expect_variant = true;
                }
                k += 1;
            }
            return order;
        }
    }
    order
}

/// The lock name of a `lock_recover(...)` call starting at the `(` after the
/// identifier: prefers the `LockRank::Variant` argument; falls back to the
/// last identifier of the first argument path.
fn lock_name(toks: &[Tok], open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last_first_arg_ident: Option<String> = None;
    let mut in_first_arg = true;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_punct(',') {
                in_first_arg = false;
            } else if t.is_ident("LockRank") {
                // `LockRank :: Variant`
                if toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
                {
                    if let Some(v) = toks.get(i + 3) {
                        if v.kind == TokKind::Ident {
                            return Some(v.text.clone());
                        }
                    }
                }
            } else if in_first_arg && t.kind == TokKind::Ident {
                last_first_arg_ident = Some(t.text.clone());
            }
        }
        i += 1;
    }
    last_first_arg_ident
}

/// A call the one-level pass can resolve by bare name: a free call
/// (`degrade(…)`) or a `self.` method (`self.enqueue_miss(…)`). Method calls
/// on other receivers (`st.cache.evict(…)`) are skipped — a method named
/// like a service function is usually a different function, and every lock
/// in the service lives behind `self`-reachable methods anyway.
fn is_resolvable_call(toks: &[Tok], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return true;
    };
    if prev.is_punct('.') {
        return i
            .checked_sub(2)
            .and_then(|p| toks.get(p))
            .is_some_and(|t| t.is_ident("self"));
    }
    // Exclude `Path::call(` — resolved names are crate-local bare fns.
    !prev.is_punct(':')
}

/// Keywords that look like calls when followed by `(`.
fn is_keywordish(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "let"
            | "in"
            | "fn"
            | "move"
            | "lock_recover"
            | "wait_recover"
            | "drop"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let scoped: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with("crates/service/src/"))
        .collect();
    if scoped.is_empty() {
        return Vec::new();
    }
    let order = declared_order(files);
    check_scoped(&scoped, &order)
}

fn check_scoped(scoped: &[&SourceFile], order: &BTreeMap<String, usize>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut held_calls: Vec<HeldCall> = Vec::new();
    // fn name → locks it acquires directly (outside tests).
    let mut direct: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for file in scoped {
        // sync.rs defines the primitives; its own body (`m.lock()`) and its
        // tests (which deliberately invert the order) are not acquisitions.
        if file.rel.ends_with("/sync.rs") {
            continue;
        }
        for func in &file.functions {
            if file.in_test(func.body_open) {
                continue;
            }
            walk_function(
                file,
                func,
                &mut edges,
                &mut held_calls,
                &mut direct,
                &mut findings,
            );
        }
    }

    // One-level call-graph pass: calls made while holding a lock, into
    // functions that acquire locks directly.
    for call in &held_calls {
        let Some(acquired) = direct.get(&call.callee) else {
            continue;
        };
        for from in &call.held {
            for to in acquired {
                if from == to {
                    findings.push(Finding::new(
                        RULE,
                        &call.file,
                        call.line,
                        format!(
                            "`{}` calls `{}` while holding `{}`, and `{}` acquires \
                             `{}` itself — self-deadlock on a non-reentrant mutex",
                            call.caller, call.callee, from, call.callee, to
                        ),
                    ));
                } else {
                    edges.push(Edge {
                        from: from.clone(),
                        to: to.clone(),
                        file: call.file.clone(),
                        line: call.line,
                        via: format!("{} → {}()", call.caller, call.callee),
                    });
                }
            }
        }
    }

    // Dedup edges by (from, to), keeping the first site.
    let mut seen: Vec<(String, String)> = Vec::new();
    let mut uniq: Vec<Edge> = Vec::new();
    for e in edges {
        let key = (e.from.clone(), e.to.clone());
        if !seen.contains(&key) {
            seen.push(key);
            uniq.push(e);
        }
    }

    // Declared-order check: every edge must go strictly up the rank order.
    for e in &uniq {
        if let (Some(&fi), Some(&ti)) = (order.get(&e.from), order.get(&e.to)) {
            if fi >= ti {
                findings.push(Finding::new(
                    RULE,
                    &e.file,
                    e.line,
                    format!(
                        "acquires `{}` while holding `{}` ({}) — violates the declared \
                         LockRank order ({} < {})",
                        e.to, e.from, e.via, e.to, e.from
                    ),
                ));
            }
        }
    }

    // Cycle detection (covers locks with no declared rank too).
    findings.extend(report_cycles(&uniq));
    findings
}

/// Scope-aware walk of one function body.
fn walk_function(
    file: &SourceFile,
    func: &crate::scan::Function,
    edges: &mut Vec<Edge>,
    held_calls: &mut Vec<HeldCall>,
    direct: &mut BTreeMap<String, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    // Most recent `let [mut] NAME =` binding in the current statement.
    let mut pending: Option<String> = None;
    let mut pending_stack: Vec<Option<String>> = Vec::new();

    let mut i = func.body_open;
    while i <= func.body_close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    depth += 1;
                    pending_stack.push(pending.take());
                }
                "}" => {
                    held.retain(|h| h.depth < depth);
                    depth = depth.saturating_sub(1);
                    pending = pending_stack.pop().flatten();
                }
                ";" => {
                    held.retain(|h| !(h.temp && h.depth == depth));
                    pending = None;
                }
                _ => {}
            },
            TokKind::Ident => {
                if t.text == "let" {
                    // `let [mut] NAME` — capture the binding name.
                    let mut k = i + 1;
                    if toks.get(k).is_some_and(|x| x.is_ident("mut")) {
                        k += 1;
                    }
                    if let Some(name) = toks.get(k) {
                        if name.kind == TokKind::Ident {
                            pending = Some(name.text.clone());
                        }
                    }
                } else if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && toks.get(i + 3).is_some_and(|x| x.is_punct(')'))
                {
                    if let Some(arg) = toks.get(i + 2) {
                        held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
                    }
                } else if t.text == "lock_recover"
                    && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                {
                    if let Some(lock) = lock_name(toks, i + 1) {
                        for h in &held {
                            if h.lock == lock {
                                findings.push(Finding::new(
                                    RULE,
                                    &file.rel,
                                    t.line,
                                    format!(
                                        "`{}` re-acquires `{}` while already holding it — \
                                         self-deadlock on a non-reentrant mutex",
                                        func.name, lock
                                    ),
                                ));
                            } else {
                                edges.push(Edge {
                                    from: h.lock.clone(),
                                    to: lock.clone(),
                                    file: file.rel.clone(),
                                    line: t.line,
                                    via: format!("{}()", func.name),
                                });
                            }
                        }
                        let entry = direct.entry(func.name.clone()).or_default();
                        if !entry.contains(&lock) {
                            entry.push(lock.clone());
                        }
                        held.push(Held {
                            lock,
                            depth,
                            binding: pending.clone(),
                            temp: pending.is_none(),
                        });
                    }
                } else if toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && !is_keywordish(&t.text)
                    && !held.is_empty()
                    && is_resolvable_call(toks, i)
                {
                    held_calls.push(HeldCall {
                        callee: t.text.clone(),
                        held: held.iter().map(|h| h.lock.clone()).collect(),
                        file: file.rel.clone(),
                        line: t.line,
                        caller: func.name.clone(),
                    });
                }
            }
            TokKind::Lit => {}
        }
        i += 1;
    }
}

/// DFS cycle search over the deduped edge list; reports each cycle once.
fn report_cycles(edges: &[Edge]) -> Vec<Finding> {
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        if !nodes.contains(&e.from.as_str()) {
            nodes.push(&e.from);
        }
        if !nodes.contains(&e.to.as_str()) {
            nodes.push(&e.to);
        }
    }
    let mut findings = Vec::new();
    let mut reported: Vec<Vec<String>> = Vec::new();
    for &start in &nodes {
        // DFS from `start`, looking for a path back to `start`.
        let mut stack: Vec<(String, Vec<String>)> =
            vec![(start.to_string(), vec![start.to_string()])];
        while let Some((node, path)) = stack.pop() {
            for e in edges.iter().filter(|e| e.from == node) {
                if e.to == start {
                    let mut cycle = path.clone();
                    cycle.push(start.to_string());
                    // Canonical form: rotate so the smallest lock leads.
                    let mut canon = cycle[..cycle.len() - 1].to_vec();
                    canon.sort();
                    if reported.contains(&canon) {
                        continue;
                    }
                    reported.push(canon);
                    let chain = cycle.join(" → ");
                    let sites: Vec<String> = edges
                        .iter()
                        .filter(|x| cycle.windows(2).any(|w| x.from == w[0] && x.to == w[1]))
                        .map(|x| format!("{}:{} ({})", x.file, x.line, x.via))
                        .collect();
                    findings.push(Finding::new(
                        RULE,
                        &e.file,
                        e.line,
                        format!(
                            "lock acquisition cycle {} — two threads taking opposite \
                             ends deadlock; sites: {}",
                            chain,
                            sites.join("; ")
                        ),
                    ));
                } else if !path.contains(&e.to) {
                    let mut p = path.clone();
                    p.push(e.to.clone());
                    stack.push((e.to.clone(), p));
                }
            }
        }
    }
    findings
}
