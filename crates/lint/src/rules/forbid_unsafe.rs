//! **forbid-unsafe** — the workspace is `unsafe`-free and stays that way.
//!
//! Every crate root must carry `#![forbid(unsafe_code)]` (forbid, not deny:
//! forbid cannot be overridden further down the tree), and no `.rs` file may
//! contain an `unsafe` token at all. The compiler enforces the former once
//! the attribute exists; this rule enforces that the attribute itself is
//! never dropped in a refactor — and catches `unsafe` in files that are not
//! reached by any crate root (fixtures, examples pending wiring).

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scan::SourceFile;

const RULE: &str = "forbid-unsafe";

/// True for crate-root library files that must carry the attribute.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// True if the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_attr(file: &SourceFile) -> bool {
    let toks = &file.toks;
    (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 7).is_some_and(|t| t.is_punct(']'))
    })
}

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        if is_crate_root(&file.rel) && !has_forbid_attr(file) {
            out.push(Finding::new(
                RULE,
                &file.rel,
                1,
                "crate root is missing `#![forbid(unsafe_code)]` — the workspace is \
                 unsafe-free and the attribute locks that in"
                    .to_string(),
            ));
        }
        for t in &file.toks {
            if t.kind == TokKind::Ident && t.text == "unsafe" {
                out.push(Finding::new(
                    RULE,
                    &file.rel,
                    t.line,
                    "`unsafe` token — the workspace forbids unsafe code".to_string(),
                ));
            }
        }
    }
    out
}
