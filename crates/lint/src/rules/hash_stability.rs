//! **hash-stability** — files feeding content-addressed keys must stay
//! deterministic across runs, machines and float noise.
//!
//! The service's whole caching story rests on `RequestKey` being a pure
//! function of the request: the on-disk store names files by it, single-
//! flight coalesces on it, warm-start families group by it. Three classic
//! ways to silently break that:
//!
//! * `DefaultHasher` / `RandomState` — SipHash is randomized per process;
//! * iterating a `HashMap` / `HashSet` while folding into a hash — iteration
//!   order differs between runs (these files ban the types outright; use
//!   `BTreeMap`/`BTreeSet` or sort explicitly);
//! * hashing raw `f64::to_bits` — two α values differing by 1 ulp of
//!   measurement noise split the cache (use the quantized writers).
//!
//! Scope: `crates/service/src/key.rs` and `crates/util/src/hash.rs` whole;
//! in `crates/topology/src/graph.rs` only `fn fingerprint` (the rest of the
//! graph code may use hash containers freely). `to_bits` is permitted inside
//! functions whose name contains `quantize` or `bits` — the two explicit,
//! documented escape points of the stable hasher itself.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scan::SourceFile;

const RULE: &str = "hash-stability";

/// Files audited in full.
const WHOLE_FILES: &[&str] = &["crates/service/src/key.rs", "crates/util/src/hash.rs"];
/// `(file, function)` pairs audited selectively.
const SCOPED_FNS: &[(&str, &str)] = &[("crates/topology/src/graph.rs", "fingerprint")];

const BANNED_TYPES: &[&str] = &["DefaultHasher", "RandomState", "HashMap", "HashSet"];

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        let whole = WHOLE_FILES.contains(&file.rel.as_str());
        let scoped_fns: Vec<&str> = SCOPED_FNS
            .iter()
            .filter(|(f, _)| *f == file.rel)
            .map(|(_, name)| *name)
            .collect();
        if !whole && scoped_fns.is_empty() {
            continue;
        }
        let in_scope = |i: usize| -> bool {
            if file.in_test(i) {
                return false;
            }
            if whole {
                return true;
            }
            file.enclosing_function(i)
                .is_some_and(|f| scoped_fns.contains(&f.name.as_str()))
        };
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !in_scope(i) {
                continue;
            }
            if BANNED_TYPES.contains(&t.text.as_str()) {
                out.push(Finding::new(
                    RULE,
                    &file.rel,
                    t.line,
                    format!(
                        "`{}` in key-derivation code — per-process randomization or \
                         iteration order would make cache keys unstable (use \
                         StableHasher and ordered containers)",
                        t.text
                    ),
                ));
                continue;
            }
            if t.text == "to_bits" && file.toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                let fname = file
                    .enclosing_function(i)
                    .map(|f| f.name.clone())
                    .unwrap_or_default();
                if !(fname.contains("quantize") || fname.contains("bits")) {
                    out.push(Finding::new(
                        RULE,
                        &file.rel,
                        t.line,
                        format!(
                            "raw `to_bits()` in `{fname}` — unquantized float bits split \
                             cache keys on measurement noise (use \
                             `StableHasher::write_f64_quantized`)"
                        ),
                    ));
                }
            }
        }
    }
    out
}
