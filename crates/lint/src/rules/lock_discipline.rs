//! **lock-discipline** — raw lock primitives are forbidden in
//! `teccl-service` outside `sync.rs` and in `teccl-lp` outside `par.rs`.
//!
//! PR 5 made every service lock poison-recovering (`lock_recover`) and every
//! condvar wait recovery-aware (`wait_recover`): a worker that panics while
//! holding the state mutex must not turn every later request into a poison
//! panic. That containment lives entirely in `crates/service/src/sync.rs` —
//! one refactor that reintroduces a plain `.lock()` elsewhere silently
//! regresses it. This rule makes that refactor a CI failure.
//!
//! The parallel-solver PR extends the same confinement to `teccl-lp`: the
//! shared node pool, incumbent cell and portfolio racer in
//! `crates/lp/src/par.rs` are the *only* place the solver may touch raw
//! `Mutex`/`Condvar` primitives (via its poison-clearing `lock_unpoisoned`).
//! A raw lock sprinkled into `milp.rs` or `model.rs` would bypass both the
//! poison recovery and the one-place-to-audit property.
//!
//! Matched: `.lock()`, `.try_lock()`, `.wait(guard)` (one or more
//! arguments — `Ticket::wait()` and `Barrier::wait()` take none and are
//! fine), `.wait_timeout(…)`, `.wait_while(…)`, `.wait_timeout_while(…)`.

use crate::report::Finding;
use crate::scan::SourceFile;

const RULE: &str = "lock-discipline";

/// True for files this rule audits, with the crate's designated lock module
/// (the one place raw primitives are allowed) exempted.
fn in_scope(rel: &str) -> bool {
    let service = rel.starts_with("crates/service/") && !rel.ends_with("/sync.rs");
    let lp = rel.starts_with("crates/lp/") && !rel.ends_with("/par.rs");
    (service || lp) && rel.ends_with(".rs")
}

/// The crate-appropriate remedy for a raw-primitive finding.
fn remedy(rel: &str) -> &'static str {
    if rel.starts_with("crates/lp/") {
        "confine raw Mutex/Condvar use to `par.rs` (its `lock_unpoisoned` \
         clears poison) so the solver has one audited locking module"
    } else {
        "use `sync::lock_recover` / `sync::wait_recover` so poisoned locks \
         recover instead of cascading panics"
    }
}

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files.iter().filter(|f| in_scope(&f.rel)) {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(name) = toks.get(i + 1) else {
                continue;
            };
            if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let zero_args = toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
            let bad = match name.text.as_str() {
                "lock" | "try_lock" => zero_args,
                "wait" => !zero_args,
                "wait_timeout" | "wait_while" | "wait_timeout_while" => true,
                _ => false,
            };
            if bad {
                out.push(Finding::new(
                    RULE,
                    &file.rel,
                    name.line,
                    format!("raw `.{}(` — {}", name.text, remedy(&file.rel)),
                ));
            }
        }
    }
    out
}
