#![forbid(unsafe_code)]
//! # teccl-lint
//!
//! A workspace-aware static analysis pass for TE-CCL's repo-specific
//! invariants: the concurrency, cancellation and hashing properties that
//! keep the schedule service correct but that no compiler or test
//! machine-checks. Std-only: a lightweight Rust lexer and brace/item
//! scanner (no full parser), a rule engine, `file:line` diagnostics, a JSON
//! report, and `// lint:allow(rule): reason` escapes that themselves
//! require a reason.
//!
//! The rules (see `crates/lint/README.md` for the catalog and history):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `lock-discipline` | no raw `.lock()`/`.wait(g)` in `teccl-service` outside `sync.rs`, nor in `teccl-lp` outside `par.rs` |
//! | `lock-order` | the static lock-acquisition graph is acyclic and follows `LockRank` |
//! | `budget-coverage` | every hot solver loop charges/checks the `SolveBudget` |
//! | `panic-hygiene` | no panicking constructs outside the `catch_unwind` boundary |
//! | `hash-stability` | key-derivation code stays deterministic (no `DefaultHasher`, …) |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Run with `cargo run -p teccl-lint --release -- --workspace`.

pub mod allow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

use report::{Finding, Outcome};
use scan::SourceFile;

/// Walks upward from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every `.rs` file under `root` (skipping `target`, `.git` and
/// other dot-directories) as `(workspace-relative path, contents)`.
/// Relative paths are `/`-separated regardless of platform, and sorted so
/// runs are deterministic.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let text = std::fs::read_to_string(&path)?;
                out.push((rel, text));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Runs every rule over in-memory `(relative path, source)` pairs and
/// applies the `lint:allow` escapes. This is the whole pipeline; the CLI
/// only adds file IO around it.
pub fn analyze(sources: &[(String, String)]) -> Outcome {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, text)| SourceFile::parse(rel, text))
        .collect();

    let mut raw: Vec<Finding> = rules::run_all(&files);
    // The escapes themselves are linted; meta-findings are unsuppressible.
    let per_file_allows: Vec<(usize, Vec<allow::Allow>)> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (i, allow::collect_allows(f)))
        .collect();
    for (i, allows) in &per_file_allows {
        raw.extend(allow::validate_allows(
            &files[*i],
            allows,
            rules::RULE_NAMES,
        ));
    }

    let mut outcome = Outcome {
        files_scanned: files.len(),
        ..Outcome::default()
    };
    for mut finding in raw {
        let allows = files
            .iter()
            .position(|f| f.rel == finding.file)
            .and_then(|i| per_file_allows.iter().find(|(j, _)| *j == i))
            .map(|(_, a)| a.as_slice())
            .unwrap_or(&[]);
        match allow::suppressing(allows, &finding) {
            Some(a) => {
                finding.allowed = Some(a.reason.clone());
                outcome.allowed.push(finding);
            }
            None => outcome.errors.push(finding),
        }
    }
    // Deterministic output: sort by file, line, rule.
    let sort_key = |f: &Finding| (f.file.clone(), f.line, f.rule);
    outcome.errors.sort_by_key(sort_key);
    outcome.allowed.sort_by_key(sort_key);
    outcome
}

/// Convenience for tests: analyze a set of snippets.
pub fn analyze_snippets(snippets: &[(&str, &str)]) -> Outcome {
    let owned: Vec<(String, String)> = snippets
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze(&owned)
}
