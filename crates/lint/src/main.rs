#![forbid(unsafe_code)]
//! `teccl-lint` CLI: scan the workspace, print `file:line` diagnostics,
//! optionally write the JSON report, exit non-zero on any unsuppressed
//! finding.
//!
//! ```text
//! teccl-lint --workspace [--root DIR] [--json PATH] [--quiet]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --workspace is the only mode; accepted for self-description.
            "--workspace" => {}
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "teccl-lint: workspace invariants checker\n\
                     usage: teccl-lint [--workspace] [--root DIR] [--json PATH] [--quiet]\n\
                     rules: {}",
                    teccl_lint::rules::RULE_NAMES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let start = root
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = teccl_lint::discover_root(&start) else {
        eprintln!("no workspace root found above {}", start.display());
        return ExitCode::from(2);
    };
    let sources = match teccl_lint::collect_files(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = teccl_lint::analyze(&sources);

    if let Some(path) = &json {
        let report = outcome.to_json(teccl_lint::rules::RULE_NAMES);
        if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
            eprintln!("failed to write JSON report to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &outcome.errors {
        println!("{}", f.render());
    }
    if !quiet {
        for f in &outcome.allowed {
            println!(
                "{} (allowed: {})",
                f.render(),
                f.allowed.as_deref().unwrap_or("")
            );
        }
        println!(
            "teccl-lint: {} files scanned, {} error(s), {} allowed",
            outcome.files_scanned,
            outcome.errors.len(),
            outcome.allowed.len()
        );
    }
    if outcome.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
