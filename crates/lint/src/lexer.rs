//! A lightweight Rust lexer: just enough to tell identifiers, punctuation
//! and literals apart, with comments preserved (the `lint:allow` escape
//! hatch lives in them) and line numbers on every token.
//!
//! It is deliberately *not* a full lexer — no token trees, no macro
//! expansion — but it is exact about the things that make naive text
//! scanning wrong: string literals (including raw and byte strings),
//! char literals vs. lifetimes, and nested block comments. A forbidden
//! pattern inside a string or comment never becomes an identifier token,
//! so the rules can match on token text without regex false positives.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`while`, `lock_recover`, `HashMap`, …).
    Ident,
    /// One punctuation character (`{`, `.`, `(`, `!`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
    /// String / char / number literal (text preserved, quotes included).
    Lit,
}

/// One code token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block), preserved for the allow-escape parser.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Interior text, delimiters stripped (`// x` → ` x`).
    pub text: String,
    /// 1-based line the comment *starts* on.
    pub line: u32,
    /// True when code tokens precede the comment on its starting line
    /// (a trailing comment annotates its own line, not the next).
    pub trailing: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply consume to end of file (the rustc build catches real
/// syntax errors; the linter only needs to stay aligned).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_code_line: u32 = 0;

    // Consumes a quoted string starting at the opening quote; returns the
    // index one past the closing quote. `raw` disables escape processing.
    let scan_string = |chars: &[char], start: usize, raw: bool, line: &mut u32| -> usize {
        let mut j = start + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' if !raw => j += 2,
                '"' => return j + 1,
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        j
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: chars[start..j].iter().collect(),
                    line,
                    trailing: last_code_line == line,
                });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: chars[start..end].iter().collect(),
                    line: start_line,
                    trailing: last_code_line == start_line,
                });
                i = j;
            }
            '"' => {
                let end = scan_string(&chars, i, false, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: chars[i..end.min(chars.len())].iter().collect(),
                    line,
                });
                last_code_line = line;
                i = end;
            }
            '\'' => {
                // Lifetime or char literal. `'a'`/`'\n'` are chars;
                // `'static` (no closing quote right after the name) is a
                // lifetime.
                let next = chars.get(i + 1).copied();
                let is_char = match next {
                    Some('\\') => true,
                    Some(n) if is_ident_start(n) => {
                        // 'x' is a char, 'xy is a lifetime.
                        let mut j = i + 2;
                        while j < chars.len() && is_ident_continue(chars[j]) {
                            j += 1;
                        }
                        chars.get(j) == Some(&'\'') && j == i + 2
                    }
                    Some(_) => true,
                    None => false,
                };
                if is_char {
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(chars.len());
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: chars[i..end].iter().collect(),
                        line,
                    });
                    last_code_line = line;
                    i = end;
                } else {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: chars[i..j].iter().collect(),
                        line,
                    });
                    last_code_line = line;
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    let continues_number = is_ident_continue(d)
                        || (d == '.' && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()))
                        || ((d == '+' || d == '-')
                            && matches!(chars[j - 1], 'e' | 'E')
                            && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()));
                    if !continues_number {
                        break;
                    }
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                last_code_line = line;
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#"..".
                let (is_raw_prefix, is_byte_prefix) = match text.as_str() {
                    "r" | "br" => (true, false),
                    "b" => (false, true),
                    _ => (false, false),
                };
                if is_raw_prefix && matches!(chars.get(j), Some('"') | Some('#')) {
                    // Count the # fence, then scan to `"` + fence.
                    let mut hashes = 0;
                    let mut k = j;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        k += 1;
                        'scan: while k < chars.len() {
                            if chars[k] == '\n' {
                                line += 1;
                            }
                            if chars[k] == '"' {
                                let mut h = 0;
                                while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                                    h += 1;
                                }
                                if h == hashes {
                                    k += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            k += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Lit,
                            text: chars[start..k].iter().collect(),
                            line,
                        });
                        last_code_line = line;
                        i = k;
                        continue;
                    }
                }
                if is_byte_prefix && chars.get(j) == Some(&'"') {
                    let end = scan_string(&chars, j, false, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: chars[start..end.min(chars.len())].iter().collect(),
                        line,
                    });
                    last_code_line = line;
                    i = end;
                    continue;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                last_code_line = line;
                i = j;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                last_code_line = line;
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let x = "DefaultHasher"; // DefaultHasher in a comment
            /* HashMap in a block
               comment */
            let raw = r#"unwrap() inside raw "quoted" string"#;
            let c = '"'; let lt: &'static str = "";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"DefaultHasher".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"quoted".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'z'; g(x, c, y) }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // 'z' stayed a literal, 'a stayed a lifetime token.
        assert!(!ids.contains(&"z".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "a\n\"two\nline string\"\nb";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ after";
        let ids = idents(src);
        assert_eq!(ids, vec!["after".to_string()]);
    }
}
