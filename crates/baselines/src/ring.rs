//! NCCL-style ring collectives.
//!
//! The ring ALLGATHER sends, in step `t`, the block that originated `t` hops
//! upstream to the next GPU in the ring; after `n-1` steps every GPU holds all
//! blocks. This is the production-default schedule large training jobs run
//! today and the reference point for the idle-GPU numbers the paper's
//! introduction quotes.

use teccl_collective::DemandMatrix;
use teccl_schedule::{ChunkId, Schedule};
use teccl_topology::{NodeId, Topology};

/// Builds a ring ALLGATHER schedule over `ring_order` (each consecutive pair,
/// including last→first, must be directly linked in `topo`).
///
/// Each GPU contributes `chunks` chunks; step `t` (epoch `t`) forwards the
/// block originating `t` hops upstream. Returns `None` if the ring order uses
/// a missing link.
pub fn ring_all_gather(
    topo: &Topology,
    ring_order: &[NodeId],
    chunks: usize,
    chunk_bytes: f64,
) -> Option<Schedule> {
    let n = ring_order.len();
    if n < 2 {
        return None;
    }
    for i in 0..n {
        let from = ring_order[i];
        let to = ring_order[(i + 1) % n];
        topo.link_between(from, to)?;
    }
    let mut schedule = Schedule::new("ring-allgather", chunk_bytes);
    for step in 0..n - 1 {
        for (i, &gpu) in ring_order.iter().enumerate() {
            // The block that originated `step` hops upstream of `gpu`.
            let origin = ring_order[(i + n - step) % n];
            let next = ring_order[(i + 1) % n];
            for c in 0..chunks {
                schedule.push(ChunkId::new(origin, c), gpu, next, step);
            }
        }
    }
    Some(schedule)
}

/// The communication schedule of a ring ALLREDUCE (reduce-scatter phase
/// followed by an all-gather phase) together with the demand matrix describing
/// the bytes it must move. Reduction compute is not modeled (as in the paper).
///
/// Returns `(demand, schedule)`.
pub fn ring_all_reduce_demand_schedule(
    topo: &Topology,
    ring_order: &[NodeId],
    chunks_per_shard: usize,
    chunk_bytes: f64,
) -> Option<(DemandMatrix, Schedule)> {
    let n = ring_order.len();
    if n < 2 {
        return None;
    }
    for i in 0..n {
        topo.link_between(ring_order[i], ring_order[(i + 1) % n])?;
    }
    // Communication-wise, each phase moves (n-1) blocks per GPU around the
    // ring; we model it as an all-gather demand executed twice back-to-back
    // (the reduce-scatter phase moves the same volume in the same pattern).
    let gpus: Vec<NodeId> = ring_order.to_vec();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, chunks_per_shard);
    let mut schedule = Schedule::new("ring-allreduce", chunk_bytes);
    // Phase 1 (reduce-scatter) + phase 2 (all-gather): 2(n-1) steps; for the
    // demand-accounting we register the all-gather deliveries in phase 2 but
    // the phase-1 traffic still occupies the links (same origin blocks).
    for phase in 0..2 {
        for step in 0..n - 1 {
            let epoch = phase * (n - 1) + step;
            for (i, &gpu) in ring_order.iter().enumerate() {
                let origin = ring_order[(i + n - step) % n];
                let next = ring_order[(i + 1) % n];
                for c in 0..chunks_per_shard {
                    schedule.push(ChunkId::new(origin, c), gpu, next, epoch);
                }
            }
        }
    }
    Some((demand, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_schedule::{simulate, validate};
    use teccl_topology::ring_topology;

    #[test]
    fn ring_allgather_satisfies_demand() {
        let topo = ring_topology(4, 1e9, 1e-6);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let schedule = ring_all_gather(&topo, &gpus, 1, 1e6).unwrap();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let report = validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
        let sim = simulate(&topo, &demand, &schedule).unwrap();
        // 3 steps of 1 ms each plus alphas.
        assert!(sim.transfer_time >= 3e-3);
        assert!(sim.transfer_time < 3.5e-3);
    }

    #[test]
    fn ring_allgather_send_count() {
        let topo = ring_topology(5, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let schedule = ring_all_gather(&topo, &gpus, 2, 1e6).unwrap();
        // (n-1) steps * n GPUs * chunks sends.
        assert_eq!(schedule.num_sends(), 4 * 5 * 2);
    }

    #[test]
    fn missing_link_returns_none() {
        let topo = teccl_topology::line_topology(3, 1e9, 0.0); // no wrap-around link
        let gpus: Vec<NodeId> = topo.gpus().collect();
        assert!(ring_all_gather(&topo, &gpus, 1, 1e6).is_none());
    }

    #[test]
    fn allreduce_moves_twice_the_allgather_volume() {
        let topo = ring_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let ag = ring_all_gather(&topo, &gpus, 1, 1e6).unwrap();
        let (demand, ar) = ring_all_reduce_demand_schedule(&topo, &gpus, 1, 1e6).unwrap();
        assert_eq!(ar.num_sends(), 2 * ag.num_sends());
        let report = validate(&topo, &demand, &ar, false);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn single_node_ring_rejected() {
        let topo = ring_topology(3, 1e9, 0.0);
        assert!(ring_all_gather(&topo, &[NodeId(0)], 1, 1e6).is_none());
    }
}
