//! Shortest-path unicast schedules (the approach of Zhao et al. [31]).
//!
//! Every `(source, chunk, destination)` demand is routed independently along
//! the α-shortest path and the resulting hops are list-scheduled per link.
//! Because the same chunk headed to several destinations is sent separately
//! for each of them, this baseline "fails to leverage copy" (§2.1) — the gap
//! Figure 1c / Figure 7 quantify.

use std::collections::HashMap;

use teccl_collective::DemandMatrix;
use teccl_schedule::{ChunkId, Schedule};
use teccl_topology::{floyd_warshall, NodeId, Topology};

/// Builds a shortest-path unicast schedule for `demand`.
///
/// Epochs are logical steps (epoch pacing is not used; the α–β simulator
/// derives the actual timing), assigned by list scheduling: a hop is placed in
/// the first epoch after the chunk is available at the hop's source in which
/// the link has not yet been used by this schedule.
pub fn shortest_path_schedule(
    topo: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
) -> Schedule {
    // Weight: α plus transmission time of one chunk — the per-hop latency.
    let pm = floyd_warshall(topo, |l| l.alpha + chunk_bytes / l.capacity);
    let mut schedule = Schedule::new("shortest-path", chunk_bytes);

    // Per-link occupancy per epoch: link id -> set of used epochs (count).
    let mut link_used: HashMap<(usize, usize), Vec<bool>> = HashMap::new();
    // Availability epoch of (chunk, node) — per (s,c,d) path we treat each
    // copy independently (no sharing across destinations: that is the point
    // of this baseline), but within one path hops chain causally.
    let horizon = 8 * (topo.num_nodes() + demand.total_demands());

    let mut triples: Vec<(NodeId, usize, NodeId)> = demand.iter().collect();
    triples.sort();
    for (s, c, d) in triples {
        let path = match pm.path(s, d) {
            Some(p) => p,
            None => continue,
        };
        let mut available = 0usize;
        for hop in path.windows(2) {
            let (from, to) = (hop[0], hop[1]);
            let used = link_used
                .entry((from.0, to.0))
                .or_insert_with(|| vec![false; horizon]);
            let mut epoch = available;
            while epoch < used.len() && used[epoch] {
                epoch += 1;
            }
            if epoch >= used.len() {
                used.resize(epoch + 1, false);
            }
            used[epoch] = true;
            schedule.push(ChunkId::new(s, c), from, to, epoch);
            available = epoch + 1;
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_schedule::{simulate, validate};
    use teccl_topology::{fig1c, line_topology, ring_topology};

    #[test]
    fn broadcast_without_copy_duplicates_upstream_traffic() {
        // Figure 1c: without copy, the s->h link carries the chunk once per
        // destination (3 times) instead of once.
        let topo = fig1c(1e9);
        let mut demand = DemandMatrix::new(5, 1);
        for d in 2..5 {
            demand.set(NodeId(0), 0, NodeId(d));
        }
        let schedule = shortest_path_schedule(&topo, &demand, 1e6);
        let upstream = schedule
            .sends
            .iter()
            .filter(|s| s.from == NodeId(0) && s.to == NodeId(1))
            .count();
        assert_eq!(upstream, 3);
        let report = validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
        // The wasted upstream bandwidth is 3x: 3 MB cross the s->h link instead
        // of 1 MB (Figure 1c's "without copy" flow model charges 4 s vs 2 s for
        // exactly this duplication). The simulator still lets the first copy
        // serve all fan-out hops, so the finish time here is 2 ms, but the
        // bytes-on-wire waste is visible.
        let sim = simulate(&topo, &demand, &schedule).unwrap();
        assert!(
            (sim.transfer_time - 2e-3).abs() < 1e-9,
            "{}",
            sim.transfer_time
        );
        assert_eq!(schedule.num_sends(), 6); // copy-aware schedules need only 4
    }

    #[test]
    fn alltoall_on_ring_is_valid() {
        let topo = ring_topology(4, 1e9, 1e-6);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(4, &gpus, 1);
        let schedule = shortest_path_schedule(&topo, &demand, 1e6);
        let report = validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(simulate(&topo, &demand, &schedule).is_ok());
    }

    #[test]
    fn relay_hops_follow_the_line() {
        let topo = line_topology(3, 1e9, 0.0);
        let mut demand = DemandMatrix::new(3, 1);
        demand.set(NodeId(0), 0, NodeId(2));
        let schedule = shortest_path_schedule(&topo, &demand, 1e6);
        assert_eq!(schedule.num_sends(), 2);
        let report = validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid());
    }

    #[test]
    fn deterministic_output() {
        let topo = ring_topology(5, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(5, &gpus, 1);
        let a = shortest_path_schedule(&topo, &demand, 1e6);
        let b = shortest_path_schedule(&topo, &demand, 1e6);
        assert_eq!(a.sends, b.sends);
    }
}
