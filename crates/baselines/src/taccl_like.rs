//! A TACCL-style two-phase heuristic.
//!
//! TACCL first chooses *routes* (guided by a human-written communication
//! sketch and an integer program over hyper-edges) and then *orders* the
//! transfers on each link in a separate scheduling phase. Decoupling the two
//! phases is what makes it scale — and what makes it sub-optimal and
//! unreliable: the router cannot see queueing, the orderer cannot change
//! routes, the randomized ordering produces different schedules run to run,
//! and under a tight search budget it may fail to return anything (§6.1).
//!
//! This module reproduces that structure:
//!
//! 1. **Routing phase** — each `(source, chunk, destination)` demand picks a
//!    path through the (hyper-edge transformed, i.e. switch-free) graph by
//!    randomized shortest path with a link-load penalty; copies to different
//!    destinations may share a prefix only if the random choices happen to
//!    coincide.
//! 2. **Scheduling phase** — per-link list scheduling of the chosen hops in a
//!    randomized priority order.
//!
//! A `budget` caps the number of ordering attempts; if no attempt satisfies
//! the deadline implied by the budget the heuristic reports failure, the
//! behaviour the "X" markers in Figures 4–6 correspond to.

use std::collections::HashMap;

use teccl_collective::DemandMatrix;
use teccl_schedule::{simulate, ChunkId, Schedule};
use teccl_topology::{floyd_warshall, NodeId, Topology};
use teccl_util::Rng64;

/// Configuration of the TACCL-like heuristic.
#[derive(Debug, Clone)]
pub struct TacclConfig {
    /// RNG seed; different seeds give different schedules (TACCL's run-to-run
    /// variance).
    pub seed: u64,
    /// Number of randomized routing/ordering attempts to try; the best result
    /// is kept.
    pub attempts: usize,
    /// Optional deadline on the transfer time (seconds); if no attempt meets
    /// it the heuristic reports failure, mimicking TACCL's infeasible cases.
    pub deadline: Option<f64>,
    /// Strength of the link-load penalty in the routing phase.
    pub load_penalty: f64,
}

impl Default for TacclConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            attempts: 8,
            deadline: None,
            load_penalty: 0.5,
        }
    }
}

/// Result of the heuristic.
#[derive(Debug, Clone)]
pub struct TacclResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its simulated transfer time (seconds).
    pub transfer_time: f64,
    /// Wall-clock time spent by the heuristic (seconds).
    pub solver_time: f64,
    /// Number of attempts evaluated.
    pub attempts: usize,
}

/// Runs the TACCL-like heuristic. Returns `None` when no attempt produced a
/// schedule meeting the deadline.
pub fn taccl_like_schedule(
    topo: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    config: &TacclConfig,
) -> Option<TacclResult> {
    let start = std::time::Instant::now();
    let mut rng = Rng64::seed_from_u64(config.seed);
    let mut best: Option<(f64, Schedule)> = None;

    for _ in 0..config.attempts.max(1) {
        let schedule = one_attempt(topo, demand, chunk_bytes, config, &mut rng);
        if let Ok(sim) = simulate(topo, demand, &schedule) {
            let t = sim.transfer_time;
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, schedule));
            }
        }
    }

    let (transfer_time, mut schedule) = best?;
    if let Some(deadline) = config.deadline {
        if transfer_time > deadline {
            return None;
        }
    }
    schedule.solver_time = start.elapsed().as_secs_f64();
    Some(TacclResult {
        schedule,
        transfer_time,
        solver_time: start.elapsed().as_secs_f64(),
        attempts: config.attempts.max(1),
    })
}

/// One randomized routing + ordering attempt.
fn one_attempt(
    topo: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    config: &TacclConfig,
    rng: &mut Rng64,
) -> Schedule {
    // Base per-hop latency for routing decisions.
    let base = floyd_warshall(topo, |l| l.alpha + chunk_bytes / l.capacity);

    // ---- Phase 1: routing. Route demands one by one with a load penalty and
    // random jitter, so routing decisions ignore the eventual ordering.
    let mut link_load: HashMap<usize, f64> = HashMap::new();
    let mut routes: Vec<((NodeId, usize, NodeId), Vec<NodeId>)> = Vec::new();
    let mut triples: Vec<(NodeId, usize, NodeId)> = demand.iter().collect();
    // TACCL routes in an order driven by its sketch; randomize here.
    for i in (1..triples.len()).rev() {
        let j = rng.gen_range_usize_inclusive(i);
        triples.swap(i, j);
    }
    for (s, c, d) in triples {
        let path = route_with_penalty(
            topo,
            s,
            d,
            &link_load,
            config.load_penalty,
            chunk_bytes,
            rng,
        )
        .or_else(|| base.path(s, d));
        if let Some(p) = path {
            for hop in p.windows(2) {
                if let Some(l) = topo.link_between(hop[0], hop[1]) {
                    *link_load.entry(l.id.0).or_insert(0.0) += 1.0;
                }
            }
            routes.push(((s, c, d), p));
        }
    }

    // ---- Phase 2: ordering. List-schedule each route's hops with a random
    // priority per demand (the scheduling phase cannot revisit routes).
    let mut priorities: Vec<(f64, usize)> = (0..routes.len()).map(|i| (rng.gen_f64(), i)).collect();
    priorities.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut schedule = Schedule::new("taccl-like", chunk_bytes);
    let mut link_next_free: HashMap<(usize, usize), usize> = HashMap::new();
    for (_, idx) in priorities {
        let ((s, c, _d), path) = &routes[idx];
        let mut available = 0usize;
        for hop in path.windows(2) {
            let key = (hop[0].0, hop[1].0);
            let slot = (*link_next_free.get(&key).unwrap_or(&0)).max(available);
            schedule.push(ChunkId::new(*s, *c), hop[0], hop[1], slot);
            link_next_free.insert(key, slot + 1);
            available = slot + 1;
        }
    }
    schedule
}

/// Randomized shortest path with a congestion penalty.
fn route_with_penalty(
    topo: &Topology,
    s: NodeId,
    d: NodeId,
    link_load: &HashMap<usize, f64>,
    penalty: f64,
    chunk_bytes: f64,
    rng: &mut Rng64,
) -> Option<Vec<NodeId>> {
    let jitter: Vec<f64> = topo
        .links
        .iter()
        .map(|_| rng.gen_range_f64(0.0, 0.2))
        .collect();
    let pm = floyd_warshall(topo, |l| {
        let load = link_load.get(&l.id.0).copied().unwrap_or(0.0);
        let base = l.alpha + chunk_bytes / l.capacity;
        base * (1.0 + penalty * load + jitter[l.id.0])
    });
    pm.path(s, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_schedule::validate;
    use teccl_topology::{clique_topology, dgx1, ring_topology};

    #[test]
    fn allgather_on_clique_produces_valid_schedule() {
        let topo = clique_topology(4, 1e9, 1e-6);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let res = taccl_like_schedule(&topo, &demand, 1e6, &TacclConfig::default()).unwrap();
        let report = validate(&topo, &demand, &res.schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(res.transfer_time > 0.0);
    }

    #[test]
    fn different_seeds_can_give_different_schedules() {
        let topo = dgx1();
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(8, &gpus, 1);
        let a = taccl_like_schedule(
            &topo,
            &demand,
            25e3,
            &TacclConfig {
                seed: 1,
                attempts: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = taccl_like_schedule(
            &topo,
            &demand,
            25e3,
            &TacclConfig {
                seed: 99,
                attempts: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // The heuristic is randomized: schedules generally differ across seeds
        // (they must at least both be valid).
        assert!(a.schedule.num_sends() > 0 && b.schedule.num_sends() > 0);
        let differs = a.schedule.sorted_sends() != b.schedule.sorted_sends();
        let same_time = (a.transfer_time - b.transfer_time).abs() < 1e-12;
        assert!(differs || same_time);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let topo = ring_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(4, &gpus, 1);
        let cfg = TacclConfig {
            seed: 7,
            attempts: 3,
            ..Default::default()
        };
        let a = taccl_like_schedule(&topo, &demand, 1e6, &cfg).unwrap();
        let b = taccl_like_schedule(&topo, &demand, 1e6, &cfg).unwrap();
        assert_eq!(a.schedule.sorted_sends(), b.schedule.sorted_sends());
    }

    #[test]
    fn impossible_deadline_reports_failure() {
        let topo = ring_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let cfg = TacclConfig {
            deadline: Some(1e-9),
            ..Default::default()
        };
        assert!(taccl_like_schedule(&topo, &demand, 1e6, &cfg).is_none());
    }

    #[test]
    fn more_attempts_never_hurt() {
        let topo = dgx1();
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(8, &gpus, 1);
        let few = taccl_like_schedule(
            &topo,
            &demand,
            1e6,
            &TacclConfig {
                seed: 3,
                attempts: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let many = taccl_like_schedule(
            &topo,
            &demand,
            1e6,
            &TacclConfig {
                seed: 3,
                attempts: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(many.transfer_time <= few.transfer_time + 1e-12);
    }
}
