//! A synchronous-round synthesizer standing in for SCCL.
//!
//! SCCL synthesizes schedules over *rounds*: in each round a link carries at
//! most one chunk, and a round only starts once the previous one has fully
//! completed everywhere — a global barrier. The barrier is the property the
//! paper's Table 3 comparison hinges on: every round pays the worst-case
//! per-link α + β cost, so multi-chunk transfers cannot pipeline.
//!
//! The synthesizer here is greedy (it may use more rounds than SCCL's SMT
//! search would in contrived cases) but is exact for the broadcast/allgather
//! patterns on the topologies the experiments use: in each round, every link
//! forwards a chunk the receiver still misses, preferring chunks that more
//! nodes still need.

use std::collections::BTreeSet;

use teccl_collective::DemandMatrix;
use teccl_schedule::{ChunkId, Schedule};
use teccl_topology::Topology;

/// Result of the SCCL-like synthesis.
#[derive(Debug, Clone)]
pub struct ScclLikeResult {
    /// The synthesized schedule (epoch = synchronous round).
    pub schedule: Schedule,
    /// Number of rounds (steps) used.
    pub rounds: usize,
    /// Modeled transfer time under the barrier cost model: every round costs
    /// the maximum `α + chunk/capacity` over the links used in that round.
    pub transfer_time: f64,
    /// Wall-clock synthesis time in seconds.
    pub solver_time: f64,
}

/// Synthesizes a synchronous-round schedule for `demand`.
///
/// Returns `None` if the greedy synthesis cannot make progress (disconnected
/// demand) within `4 * |N| + |C|` rounds.
pub fn sccl_like_schedule(
    topo: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
) -> Option<ScclLikeResult> {
    let start = std::time::Instant::now();
    let n = topo.num_nodes();

    // Which chunks each node currently holds.
    let mut holds: Vec<BTreeSet<ChunkId>> = vec![BTreeSet::new(); n];
    for (s, held) in holds.iter_mut().enumerate() {
        for c in 0..demand.num_chunks {
            if demand.chunk_in_use(teccl_topology::NodeId(s), c) {
                held.insert(ChunkId::new(teccl_topology::NodeId(s), c));
            }
        }
    }
    // Which chunks each node still needs (demands but does not hold).
    let still_needed = |holds: &Vec<BTreeSet<ChunkId>>| -> usize {
        demand
            .iter()
            .filter(|(s, c, d)| !holds[d.0].contains(&ChunkId::new(*s, *c)))
            .count()
    };

    let mut schedule = Schedule::new("sccl-like", chunk_bytes);
    let mut transfer_time = 0.0;
    let mut round = 0usize;
    let max_rounds = 4 * n + demand.num_chunks * n + 8;

    while still_needed(&holds) > 0 {
        if round >= max_rounds {
            return None;
        }
        // Plan this round: one chunk per link, receivers must not already hold
        // the chunk; prefer chunks that the receiver itself demands, then
        // chunks that downstream nodes still miss the most.
        let mut planned: Vec<(usize, ChunkId)> = Vec::new(); // (link id, chunk)
        let mut incoming_this_round: Vec<BTreeSet<ChunkId>> = vec![BTreeSet::new(); n];
        for link in &topo.links {
            let from = link.src.0;
            let to = link.dst.0;
            // Candidate chunks the sender holds and the receiver misses.
            let mut best: Option<(i64, ChunkId)> = None;
            for &chunk in &holds[from] {
                if holds[to].contains(&chunk) || incoming_this_round[to].contains(&chunk) {
                    continue;
                }
                // Score: 2 if the receiver demands it itself, plus how many
                // nodes in total still miss it (usefulness for forwarding).
                let wanted_by_receiver = demand.wants(chunk.source, chunk.chunk, link.dst)
                    && !holds[to].contains(&chunk);
                let missing_elsewhere = demand
                    .destinations_of(chunk.source, chunk.chunk)
                    .iter()
                    .filter(|d| !holds[d.0].contains(&chunk))
                    .count();
                // Switches must not hold chunks across rounds; only forward to
                // a switch if something downstream needs it (handled by the
                // same score).
                let score = (wanted_by_receiver as i64) * 1000 + missing_elsewhere as i64;
                if score <= 0 {
                    continue;
                }
                match best {
                    Some((b, _)) if b >= score => {}
                    _ => best = Some((score, chunk)),
                }
            }
            if let Some((_, chunk)) = best {
                planned.push((link.id.0, chunk));
                incoming_this_round[to].insert(chunk);
            }
        }
        if planned.is_empty() {
            return None; // no progress possible
        }
        // Apply the round: barrier semantics (everything lands before round+1).
        let mut round_cost: f64 = 0.0;
        for (link_id, chunk) in planned {
            let link = &topo.links[link_id];
            schedule.push(chunk, link.src, link.dst, round);
            round_cost = round_cost.max(link.alpha + chunk_bytes / link.capacity);
            holds[link.dst.0].insert(chunk);
        }
        transfer_time += round_cost;
        round += 1;
    }

    Some(ScclLikeResult {
        schedule,
        rounds: round,
        transfer_time,
        solver_time: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_schedule::validate;
    use teccl_topology::{clique_topology, dgx1, line_topology, NodeId};

    #[test]
    fn allgather_on_clique_takes_n_minus_one_rounds_for_one_chunk() {
        // On a 4-clique with 1 chunk per GPU, every GPU can receive at most
        // 3 distinct peers' chunks over its 3 incoming links: 1 round would do
        // it if all links are used; the greedy should finish in 1 round.
        let topo = clique_topology(4, 1e9, 0.7e-6);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let res = sccl_like_schedule(&topo, &demand, 25e3).unwrap();
        assert_eq!(res.rounds, 1);
        let report = validate(&topo, &demand, &res.schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn broadcast_on_line_pays_barrier_per_hop() {
        let topo = line_topology(4, 1e9, 1e-6);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(4, &gpus, NodeId(0), 1);
        let res = sccl_like_schedule(&topo, &demand, 1e6).unwrap();
        assert_eq!(res.rounds, 3);
        // Every round pays alpha + beta.
        let per_round = 1e-6 + 1e-3;
        assert!((res.transfer_time - 3.0 * per_round).abs() < 1e-9);
    }

    #[test]
    fn dgx1_allgather_valid_and_barrier_costed() {
        let topo = dgx1();
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(8, &gpus, 1);
        let res = sccl_like_schedule(&topo, &demand, 25e3).unwrap();
        let report = validate(&topo, &demand, &res.schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(res.rounds >= 2);
        // Barrier cost model: rounds * (alpha + beta) is the transfer time
        // when all rounds use the same link class.
        let per_round = 0.7e-6 + 25e3 / 25e9;
        assert!((res.transfer_time - res.rounds as f64 * per_round).abs() < 1e-9);
    }

    #[test]
    fn multi_chunk_takes_proportionally_more_rounds() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let one = sccl_like_schedule(&topo, &DemandMatrix::broadcast(3, &gpus, NodeId(0), 1), 1e6)
            .unwrap();
        let three =
            sccl_like_schedule(&topo, &DemandMatrix::broadcast(3, &gpus, NodeId(0), 3), 1e6)
                .unwrap();
        assert!(three.rounds > one.rounds);
    }

    #[test]
    fn impossible_demand_returns_none() {
        // Demand between disconnected components can never be satisfied.
        let mut topo = Topology::new("split");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        let c = topo.add_gpu("c", 1);
        topo.add_bilink(a, b, 1e9, 0.0);
        let mut demand = DemandMatrix::new(3, 1);
        demand.set(a, 0, c);
        assert!(sccl_like_schedule(&topo, &demand, 1e6).is_none());
    }
}
