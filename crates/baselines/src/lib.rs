#![forbid(unsafe_code)]
//! # teccl-baselines
//!
//! The comparison systems the TE-CCL paper evaluates against, reimplemented on
//! the same topology / demand / schedule substrate so every scheduler can be
//! measured by the same α–β simulator:
//!
//! * [`ring`] — NCCL-style ring ALLGATHER / ALLREDUCE schedules (the
//!   production default the paper's introduction motivates improving on),
//! * [`shortest_path`] — shortest-path unicast schedules (the approach of
//!   Zhao et al. [31], which "fails to leverage copy", §2.1),
//! * [`sccl_like`] — a synchronous-round synthesizer standing in for SCCL:
//!   every round is a barrier (each link carries at most one chunk per round,
//!   every round pays the worst α), which is exactly the modeling difference
//!   §6.1 exploits ("TE-CCL ... pipelines traffic; SCCL enforces a barrier"),
//! * [`taccl_like`] — a TACCL-style two-phase heuristic (routing first, then
//!   ordering) with seeded randomness and a budget knob, reproducing the
//!   structural weaknesses §6.1 reports: routing and scheduling are not
//!   co-optimized, results vary run to run, and tight budgets can fail.

pub mod ring;
pub mod sccl_like;
pub mod shortest_path;
pub mod taccl_like;

pub use ring::{ring_all_gather, ring_all_reduce_demand_schedule};
pub use sccl_like::{sccl_like_schedule, ScclLikeResult};
pub use shortest_path::shortest_path_schedule;
pub use taccl_like::{taccl_like_schedule, TacclConfig, TacclResult};
