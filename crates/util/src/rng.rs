//! A small deterministic PRNG (xorshift64* seeded through splitmix64).
//!
//! Used by the randomized baselines (TACCL-style run-to-run variance) and by
//! property-style tests. Not cryptographic; determinism and portability are
//! the only requirements.

/// A seeded 64-bit PRNG.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 step so that small consecutive seeds give uncorrelated
        // starting states.
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn gen_range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range_usize(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[0, n]` (inclusive).
    pub fn gen_range_usize_inclusive(&mut self, n: usize) -> usize {
        self.gen_range_usize(n + 1)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&g));
            let u = r.gen_range_usize_inclusive(4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = Rng64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }
}
