//! A minimal JSON document model: construction helpers, a writer (compact and
//! pretty), and a recursive-descent parser.
//!
//! Numbers are stored as `f64`, objects preserve insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as indented JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                msg: "trailing characters".into(),
            });
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Arr(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no inf/NaN; emit null like serde_json's lossy modes would
        // reject — downstream tooling treats null as "not available".
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with the byte offset at which it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            pos: *pos,
            msg: format!("expected `{lit}`"),
        })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError {
            pos: *pos,
            msg: "unexpected end of input".into(),
        }),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            msg: "expected `,` or `]`".into(),
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            msg: "expected `,` or `}`".into(),
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            pos: *pos,
            msg: "expected string".into(),
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(JsonError {
                    pos: *pos,
                    msg: "unterminated string".into(),
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let bad = |pos: usize| JsonError {
                            pos,
                            msg: "bad \\u escape".into(),
                        };
                        let read_hex = |b: &[u8], at: usize| {
                            b.get(at..at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                        };
                        let mut cp = read_hex(b, *pos + 1).ok_or(bad(*pos))?;
                        *pos += 4;
                        // Combine UTF-16 surrogate pairs (how standard
                        // serializers escape non-BMP characters).
                        if (0xd800..0xdc00).contains(&cp) {
                            if b.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(bad(*pos));
                            }
                            let low = read_hex(b, *pos + 3).ok_or(bad(*pos))?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(bad(*pos));
                            }
                            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                            *pos += 6;
                        }
                        out.push(char::from_u32(cp).ok_or(bad(*pos))?);
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            msg: "bad escape".into(),
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError {
                    pos: start,
                    msg: "invalid UTF-8".into(),
                })?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or(JsonError {
            pos: start,
            msg: "invalid number".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let v = Value::obj(vec![
            ("name", Value::from("sched")),
            ("count", Value::from(3usize)),
            ("rate", Value::from(0.25)),
            ("ok", Value::from(true)),
            (
                "items",
                Value::Arr(vec![Value::from(1usize), Value::Null, Value::from("x")]),
            ),
        ]);
        let text = v.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        let pretty = v.to_json_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = Value::parse(r#""a\ud83d\ude00b""#).unwrap();
        assert_eq!(v.as_str(), Some("a\u{1f600}b"));
        // Lone or malformed surrogates are rejected, not silently corrupted.
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ud83dx""#).is_err());
        assert!(Value::parse(r#""\ud83d\u0041""#).is_err());
        // Raw non-BMP characters round-trip through the writer and parser.
        let v = Value::from("snowman \u{2603} emoji \u{1f600}");
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": 1, "b": "s", "c": [true, null], "d": 1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_usize), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("s"));
        assert_eq!(v.get("c").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(
            v.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("d").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("d").and_then(Value::as_usize), None);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::from(3usize).to_json(), "3");
        assert_eq!(Value::from(2.5).to_json(), "2.5");
    }
}
