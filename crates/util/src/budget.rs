//! Cooperative solve budgets: deadline + iteration cap + cancellation flag.
//!
//! A [`SolveBudget`] is shared (cheaply cloned — clones observe the same
//! atomics) between the thread that owns a solve and the solver's innermost
//! loops. The solver calls [`SolveBudget::charge`] once per pivot / node /
//! round; the owner can revoke the budget at any time with
//! [`SolveBudget::cancel`], or let the deadline or iteration cap trip it.
//! Checks are designed to sit on a hot loop: a relaxed atomic load, a
//! relaxed counter add, and an `Instant` comparison.
//!
//! The budget lives here (not in the LP crate) so every layer — simplex
//! pivots, branch-and-bound nodes, A* rounds, and the schedule service's
//! deadline ladder — shares one vocabulary for "stop now, hand back your
//! best incumbent".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted solve was stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// [`SolveBudget::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The shared iteration cap was consumed.
    IterationCap,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
            BudgetExceeded::DeadlineExceeded => write!(f, "deadline exceeded"),
            BudgetExceeded::IterationCap => write!(f, "iteration cap exceeded"),
        }
    }
}

impl BudgetExceeded {
    /// Stable wire/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetExceeded::Cancelled => "cancelled",
            BudgetExceeded::DeadlineExceeded => "deadline_exceeded",
            BudgetExceeded::IterationCap => "iteration_cap",
        }
    }

    /// Inverse of [`BudgetExceeded::name`].
    pub fn from_name(name: &str) -> Option<BudgetExceeded> {
        match name {
            "cancelled" => Some(BudgetExceeded::Cancelled),
            "deadline_exceeded" => Some(BudgetExceeded::DeadlineExceeded),
            "iteration_cap" => Some(BudgetExceeded::IterationCap),
            _ => None,
        }
    }
}

/// A shared, cooperative budget for one logical solve.
///
/// `Clone` is shallow: all clones share the cancel flag and the iteration
/// counter, so a budget handed to a B&B node and the one held by the
/// service worker are the same budget.
///
/// [`SolveBudget::child`] derives a budget with a **private** cancel flag
/// layered over the parent's: cancelling the child stops only that child,
/// while a parent cancel still stops every descendant. This is what the LP
/// portfolio race uses — the winning racer cancels its siblings without
/// revoking the request's own budget.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    iteration_cap: Option<u64>,
    cancel: Arc<AtomicBool>,
    iterations: Arc<AtomicU64>,
    /// Cancel flags of every ancestor budget this one was [`SolveBudget::child`]ed
    /// from, outermost first. Observed (never set) by this budget's checks.
    ancestors: Vec<Arc<AtomicBool>>,
}

impl SolveBudget {
    /// A budget that never trips (cancellation still works).
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// A budget that trips once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> SolveBudget {
        SolveBudget {
            deadline: Some(Instant::now() + timeout),
            ..SolveBudget::default()
        }
    }

    /// A budget that trips after `cap` charged iterations (shared across
    /// all clones).
    pub fn with_iteration_cap(cap: u64) -> SolveBudget {
        SolveBudget {
            iteration_cap: Some(cap),
            ..SolveBudget::default()
        }
    }

    /// Adds a deadline to an existing budget.
    pub fn and_deadline(mut self, timeout: Duration) -> SolveBudget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds an iteration cap to an existing budget.
    pub fn and_iteration_cap(mut self, cap: u64) -> SolveBudget {
        self.iteration_cap = Some(cap);
        self
    }

    /// Derives a child budget: same deadline and iteration accounting (the
    /// child's work charges the shared counter), but a **new** cancel flag.
    /// Cancelling the child leaves the parent — and the child's siblings —
    /// running; cancelling the parent still trips the child. Children of
    /// children keep observing the whole ancestor chain.
    pub fn child(&self) -> SolveBudget {
        let mut ancestors = self.ancestors.clone();
        ancestors.push(Arc::clone(&self.cancel));
        SolveBudget {
            deadline: self.deadline,
            iteration_cap: self.iteration_cap,
            cancel: Arc::new(AtomicBool::new(false)),
            iterations: Arc::clone(&self.iterations),
            ancestors,
        }
    }

    /// Whether an iteration cap is configured (racing duplicates work across
    /// threads, so callers skip the race when total-iteration accounting is
    /// what bounds the solve).
    pub fn has_iteration_cap(&self) -> bool {
        self.iteration_cap.is_some()
    }

    /// Revokes the budget: every holder's next `charge`/`exceeded` call
    /// reports [`BudgetExceeded::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`SolveBudget::cancel`] has been called on this budget or any
    /// ancestor it was derived from.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.ancestors.iter().any(|a| a.load(Ordering::Relaxed))
    }

    /// Total iterations charged so far across all clones.
    pub fn iterations_used(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// The remaining wall-clock time, if a deadline is set.
    pub fn time_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Charges `n` iterations of work and reports whether the budget has
    /// been exhausted. Call this from the innermost loop (one pivot, one
    /// B&B node, one A* round).
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        let used = self.iterations.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(cap) = self.iteration_cap {
            if used > cap {
                return Err(BudgetExceeded::IterationCap);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Checks the budget without charging work.
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        self.charge(0).err()
    }
}

/// Batches [`SolveBudget::charge`] calls from one hot loop.
///
/// Under multi-thread solves the shared `fetch_add` in `charge` serializes
/// the pivot loops of every worker on one cache line. The batcher keeps a
/// thread-local pending count and flushes it to the shared counter every
/// [`ChargeBatcher::FLUSH_EVERY`] ticks; the cancel flag is still read on
/// **every** tick (a relaxed load of a shared-read line — cheap and
/// contention-free), so cancellation latency stays one pivot.
///
/// Iteration-cap precision is preserved through a local snapshot of the
/// shared counter (refreshed at each flush): a flush is forced as soon as
/// `snapshot + pending` would cross the cap, so a single-threaded solve
/// trips on exactly the same pivot as unbatched charging, and a
/// multi-threaded one at most `FLUSH_EVERY - 1` sibling pivots late.
/// Deadline trips coarsen to the flush granularity — far below anything the
/// solver's deadline ladder can resolve.
///
/// Call [`ChargeBatcher::flush`] before dropping the batcher (or on leaving
/// the loop) so the shared accounting stays exact; an unflushed remainder
/// only under-reports `iterations_used` by at most `FLUSH_EVERY - 1`.
#[derive(Debug)]
pub struct ChargeBatcher<'a> {
    budget: Option<&'a SolveBudget>,
    pending: u64,
    /// `iterations_used()` as of the last flush; `snapshot + pending` is the
    /// exact used count when no sibling thread is charging, and a lower
    /// bound otherwise.
    snapshot: u64,
}

impl<'a> ChargeBatcher<'a> {
    /// Ticks between flushes of the pending count to the shared counter.
    pub const FLUSH_EVERY: u64 = 64;

    /// Wraps an optional budget; a `None` budget makes every call a no-op.
    pub fn new(budget: Option<&'a SolveBudget>) -> ChargeBatcher<'a> {
        ChargeBatcher {
            budget,
            pending: 0,
            snapshot: budget.map_or(0, |b| b.iterations_used()),
        }
    }

    /// Charges one unit of work, batched. Cancellation is checked on every
    /// call; cap/deadline checks run at each flush, with the flush forced
    /// early when the local view says the cap is about to be crossed.
    #[inline]
    pub fn charge(&mut self) -> Result<(), BudgetExceeded> {
        let Some(b) = self.budget else {
            return Ok(());
        };
        if b.is_cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        self.pending += 1;
        let cap_near = b
            .iteration_cap
            .is_some_and(|cap| self.snapshot + self.pending > cap);
        if self.pending >= Self::FLUSH_EVERY || cap_near {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Flushes the pending count to the shared counter and runs the full
    /// cap/deadline check.
    pub fn flush(&mut self) -> Result<(), BudgetExceeded> {
        let Some(b) = self.budget else {
            return Ok(());
        };
        let n = std::mem::take(&mut self.pending);
        let r = b.charge(n);
        self.snapshot = b.iterations_used();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = SolveBudget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.charge(1_000_000), Ok(()));
        }
        assert_eq!(b.exceeded(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = SolveBudget::unlimited();
        let inner = b.clone();
        assert_eq!(inner.charge(1), Ok(()));
        b.cancel();
        assert_eq!(inner.charge(1), Err(BudgetExceeded::Cancelled));
        assert_eq!(inner.exceeded(), Some(BudgetExceeded::Cancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn iteration_cap_is_shared_across_clones() {
        let b = SolveBudget::with_iteration_cap(10);
        let inner = b.clone();
        assert_eq!(b.charge(6), Ok(()));
        assert_eq!(inner.charge(4), Ok(())); // exactly at the cap
        assert_eq!(inner.charge(1), Err(BudgetExceeded::IterationCap));
        assert_eq!(b.iterations_used(), 11);
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let b = SolveBudget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.charge(1), Err(BudgetExceeded::DeadlineExceeded));
        assert_eq!(b.time_remaining(), Some(Duration::ZERO));
        let far = SolveBudget::with_deadline(Duration::from_secs(3600));
        assert_eq!(far.charge(1), Ok(()));
        assert!(far.time_remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancelled_wins_over_other_causes() {
        let b = SolveBudget::with_deadline(Duration::from_millis(0)).and_iteration_cap(0);
        b.cancel();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.charge(1), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn child_cancel_is_private_but_parent_cancel_propagates() {
        let parent = SolveBudget::unlimited();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert_eq!(a.charge(1), Err(BudgetExceeded::Cancelled));
        assert_eq!(b.charge(1), Ok(()), "sibling unaffected");
        assert_eq!(parent.charge(1), Ok(()), "parent unaffected");
        parent.cancel();
        assert_eq!(b.charge(1), Err(BudgetExceeded::Cancelled));
        // Grandchildren observe the whole chain.
        let fresh = SolveBudget::unlimited();
        let mid = fresh.child();
        let leaf = mid.child();
        fresh.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn child_shares_iteration_accounting() {
        let parent = SolveBudget::with_iteration_cap(10);
        assert!(parent.has_iteration_cap());
        let kid = parent.child();
        assert_eq!(kid.charge(6), Ok(()));
        assert_eq!(parent.iterations_used(), 6);
        assert_eq!(parent.charge(5), Err(BudgetExceeded::IterationCap));
    }

    #[test]
    fn batcher_flushes_and_preserves_cancel_latency() {
        let b = SolveBudget::unlimited();
        let mut batch = ChargeBatcher::new(Some(&b));
        for _ in 0..ChargeBatcher::FLUSH_EVERY - 1 {
            assert_eq!(batch.charge(), Ok(()));
        }
        assert_eq!(b.iterations_used(), 0, "pending work not yet flushed");
        assert_eq!(batch.charge(), Ok(()));
        assert_eq!(b.iterations_used(), ChargeBatcher::FLUSH_EVERY);
        // A cancel is seen on the very next tick, not at the next flush.
        assert_eq!(batch.charge(), Ok(()));
        b.cancel();
        assert_eq!(batch.charge(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn batcher_trips_iteration_cap_on_the_exact_tick() {
        // Single-threaded cap precision: the batcher must error on the same
        // tick unbatched per-pivot charging would, not at the next 64-flush.
        let b = SolveBudget::with_iteration_cap(10);
        let mut batch = ChargeBatcher::new(Some(&b));
        for i in 0..10 {
            assert_eq!(batch.charge(), Ok(()), "tick {i} within cap");
        }
        assert_eq!(batch.charge(), Err(BudgetExceeded::IterationCap));
        assert_eq!(b.iterations_used(), 11, "the tripping tick is flushed");
    }

    #[test]
    fn batcher_explicit_flush_settles_remainder() {
        let b = SolveBudget::unlimited();
        let mut batch = ChargeBatcher::new(Some(&b));
        for _ in 0..5 {
            assert_eq!(batch.charge(), Ok(()));
        }
        assert_eq!(batch.flush(), Ok(()));
        assert_eq!(b.iterations_used(), 5);
        let mut none = ChargeBatcher::new(None);
        assert_eq!(none.charge(), Ok(()));
        assert_eq!(none.flush(), Ok(()));
    }

    #[test]
    fn names_roundtrip() {
        for cause in [
            BudgetExceeded::Cancelled,
            BudgetExceeded::DeadlineExceeded,
            BudgetExceeded::IterationCap,
        ] {
            assert_eq!(BudgetExceeded::from_name(cause.name()), Some(cause));
            assert!(!cause.to_string().is_empty());
        }
        assert_eq!(BudgetExceeded::from_name("nope"), None);
    }
}
