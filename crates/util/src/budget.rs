//! Cooperative solve budgets: deadline + iteration cap + cancellation flag.
//!
//! A [`SolveBudget`] is shared (cheaply cloned — clones observe the same
//! atomics) between the thread that owns a solve and the solver's innermost
//! loops. The solver calls [`SolveBudget::charge`] once per pivot / node /
//! round; the owner can revoke the budget at any time with
//! [`SolveBudget::cancel`], or let the deadline or iteration cap trip it.
//! Checks are designed to sit on a hot loop: a relaxed atomic load, a
//! relaxed counter add, and an `Instant` comparison.
//!
//! The budget lives here (not in the LP crate) so every layer — simplex
//! pivots, branch-and-bound nodes, A* rounds, and the schedule service's
//! deadline ladder — shares one vocabulary for "stop now, hand back your
//! best incumbent".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted solve was stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// [`SolveBudget::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The shared iteration cap was consumed.
    IterationCap,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
            BudgetExceeded::DeadlineExceeded => write!(f, "deadline exceeded"),
            BudgetExceeded::IterationCap => write!(f, "iteration cap exceeded"),
        }
    }
}

impl BudgetExceeded {
    /// Stable wire/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetExceeded::Cancelled => "cancelled",
            BudgetExceeded::DeadlineExceeded => "deadline_exceeded",
            BudgetExceeded::IterationCap => "iteration_cap",
        }
    }

    /// Inverse of [`BudgetExceeded::name`].
    pub fn from_name(name: &str) -> Option<BudgetExceeded> {
        match name {
            "cancelled" => Some(BudgetExceeded::Cancelled),
            "deadline_exceeded" => Some(BudgetExceeded::DeadlineExceeded),
            "iteration_cap" => Some(BudgetExceeded::IterationCap),
            _ => None,
        }
    }
}

/// A shared, cooperative budget for one logical solve.
///
/// `Clone` is shallow: all clones share the cancel flag and the iteration
/// counter, so a budget handed to a B&B node and the one held by the
/// service worker are the same budget.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    iteration_cap: Option<u64>,
    cancel: Arc<AtomicBool>,
    iterations: Arc<AtomicU64>,
}

impl SolveBudget {
    /// A budget that never trips (cancellation still works).
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// A budget that trips once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> SolveBudget {
        SolveBudget {
            deadline: Some(Instant::now() + timeout),
            ..SolveBudget::default()
        }
    }

    /// A budget that trips after `cap` charged iterations (shared across
    /// all clones).
    pub fn with_iteration_cap(cap: u64) -> SolveBudget {
        SolveBudget {
            iteration_cap: Some(cap),
            ..SolveBudget::default()
        }
    }

    /// Adds a deadline to an existing budget.
    pub fn and_deadline(mut self, timeout: Duration) -> SolveBudget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds an iteration cap to an existing budget.
    pub fn and_iteration_cap(mut self, cap: u64) -> SolveBudget {
        self.iteration_cap = Some(cap);
        self
    }

    /// Revokes the budget: every holder's next `charge`/`exceeded` call
    /// reports [`BudgetExceeded::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`SolveBudget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Total iterations charged so far across all clones.
    pub fn iterations_used(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// The remaining wall-clock time, if a deadline is set.
    pub fn time_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Charges `n` iterations of work and reports whether the budget has
    /// been exhausted. Call this from the innermost loop (one pivot, one
    /// B&B node, one A* round).
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        let used = self.iterations.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(cap) = self.iteration_cap {
            if used > cap {
                return Err(BudgetExceeded::IterationCap);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Checks the budget without charging work.
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        self.charge(0).err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = SolveBudget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.charge(1_000_000), Ok(()));
        }
        assert_eq!(b.exceeded(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = SolveBudget::unlimited();
        let inner = b.clone();
        assert_eq!(inner.charge(1), Ok(()));
        b.cancel();
        assert_eq!(inner.charge(1), Err(BudgetExceeded::Cancelled));
        assert_eq!(inner.exceeded(), Some(BudgetExceeded::Cancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn iteration_cap_is_shared_across_clones() {
        let b = SolveBudget::with_iteration_cap(10);
        let inner = b.clone();
        assert_eq!(b.charge(6), Ok(()));
        assert_eq!(inner.charge(4), Ok(())); // exactly at the cap
        assert_eq!(inner.charge(1), Err(BudgetExceeded::IterationCap));
        assert_eq!(b.iterations_used(), 11);
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let b = SolveBudget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.charge(1), Err(BudgetExceeded::DeadlineExceeded));
        assert_eq!(b.time_remaining(), Some(Duration::ZERO));
        let far = SolveBudget::with_deadline(Duration::from_secs(3600));
        assert_eq!(far.charge(1), Ok(()));
        assert!(far.time_remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancelled_wins_over_other_causes() {
        let b = SolveBudget::with_deadline(Duration::from_millis(0)).and_iteration_cap(0);
        b.cancel();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.charge(1), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn names_roundtrip() {
        for cause in [
            BudgetExceeded::Cancelled,
            BudgetExceeded::DeadlineExceeded,
            BudgetExceeded::IterationCap,
        ] {
            assert_eq!(BudgetExceeded::from_name(cause.name()), Some(cause));
            assert!(!cause.to_string().is_empty());
        }
        assert_eq!(BudgetExceeded::from_name("nope"), None);
    }
}
