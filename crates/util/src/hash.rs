//! A stable, dependency-free 64-bit hasher for content-addressed keys.
//!
//! `std::hash` deliberately randomizes `SipHash` per process, which makes it
//! useless for fingerprints that must be identical across runs and machines
//! (on-disk schedule cache names, request deduplication). This is FNV-1a with
//! explicit, endianness-independent encodings for the primitive types the
//! fingerprints need — including *quantized* floats, so values that differ
//! only by measurement noise (an α read from two configuration files, a
//! capacity computed two ways) still land on the same key.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with a stable byte encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian byte encoding).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `i64`.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` widened to 64 bits (so 32- and 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// Absorbs a float by its exact bit pattern (use for values that must
    /// match exactly; prefer [`StableHasher::write_f64_quantized`] for
    /// physical quantities).
    pub fn write_f64_bits(&mut self, v: f64) -> &mut Self {
        // Normalize the two zeros and all NaN payloads.
        let v = if v == 0.0 {
            0.0
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.write_u64(v.to_bits())
    }

    /// Absorbs a float quantized to `1/scale` resolution: `round(v * scale)`.
    /// E.g. `scale = 1e12` hashes a link α in picosecond resolution, so two
    /// α values differing by floating-point noise hash identically.
    pub fn write_f64_quantized(&mut self, v: f64, scale: f64) -> &mut Self {
        if !v.is_finite() {
            // Distinguish +inf / -inf / NaN from every finite value.
            return self.write_u64(v.to_bits()).write_i64(i64::MIN);
        }
        self.write_i64((v * scale).round() as i64)
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot convenience: FNV-1a of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Buckets a positive size (bytes) onto a half-octave log₂ grid:
/// `round(2 · log₂ size)`. Sizes within ~19% of each other share a bucket, so
/// near-identical requests (16 MB vs 17 MB) are served from one cache entry,
/// while the canonical power-of-two sweep points (…, 4 MB, 16 MB, 64 MB) all
/// land in distinct buckets. Non-positive / non-finite sizes map to
/// `i64::MIN` (never a valid bucket neighbour).
pub fn size_bucket(bytes: f64) -> i64 {
    if bytes <= 0.0 || bytes.is_nan() || !bytes.is_finite() {
        return i64::MIN;
    }
    (2.0 * bytes.log2()).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_known_vector() {
        // FNV-1a test vectors: "" and "a".
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn deterministic_across_invocations() {
        let run = || {
            let mut h = StableHasher::new();
            h.write_str("topo")
                .write_u64(7)
                .write_f64_quantized(0.7e-6, 1e12);
            h.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn quantization_merges_noise_and_splits_real_deltas() {
        let h = |v: f64| {
            let mut h = StableHasher::new();
            h.write_f64_quantized(v, 1e12);
            h.finish()
        };
        assert_eq!(h(0.7e-6), h(0.7e-6 + 1e-16));
        assert_ne!(h(0.7e-6), h(1.3e-6));
    }

    #[test]
    fn zero_normalization() {
        let h = |v: f64| {
            let mut h = StableHasher::new();
            h.write_f64_bits(v);
            h.finish()
        };
        assert_eq!(h(0.0), h(-0.0));
    }

    #[test]
    fn size_buckets() {
        // The paper's sweep points are all distinct…
        let sweep = [16e3, 64e3, 256e3, 1e6, 4e6, 16e6, 64e6, 256e6];
        let buckets: Vec<i64> = sweep.iter().map(|&s| size_bucket(s)).collect();
        let mut dedup = buckets.clone();
        dedup.dedup();
        assert_eq!(buckets.len(), dedup.len());
        // …while near-identical sizes coalesce.
        assert_eq!(size_bucket(16.0e6), size_bucket(16.5e6));
        assert!(size_bucket(-1.0) == i64::MIN && size_bucket(f64::NAN) == i64::MIN);
    }
}
