#![forbid(unsafe_code)]
//! # teccl-util
//!
//! Small dependency-free utilities shared across the workspace. The offline
//! build environment has no third-party crates, so the pieces the seed design
//! would normally pull from `serde_json` and `rand` live here instead:
//!
//! * [`json`] — a minimal JSON document model ([`json::Value`]) with a writer
//!   (compact and pretty) and a parser, used for schedule export and the
//!   machine-readable benchmark output.
//! * [`rng`] — a tiny deterministic PRNG (splitmix64 seeded xorshift) for the
//!   randomized baselines and property-style tests.
//! * [`hash`] — a stable (cross-run, cross-machine) FNV-1a 64-bit hasher with
//!   quantized-float encodings, used for content-addressed schedule-cache
//!   keys and topology fingerprints.
//! * [`budget`] — a shared cooperative [`budget::SolveBudget`] (deadline +
//!   iteration cap + cancel flag) threaded from the schedule service down
//!   into the simplex pivot loops.

pub mod budget;
pub mod hash;
pub mod json;
pub mod rng;

pub use budget::{BudgetExceeded, ChargeBatcher, SolveBudget};
pub use hash::{fnv1a64, size_bucket, StableHasher};
pub use json::Value;
pub use rng::Rng64;
