//! End-to-end test of `teccld`'s TCP protocol: a real Table-4 request
//! (Internal1 x2, ALLGATHER, 16 MB output buffer, A* — the first row of the
//! paper's Table 4 at this reproduction's scale) round-trips over a socket,
//! the reply's schedule validates, and the second ask is a cache hit that
//! performed no solver work.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use teccl_collective::CollectiveKind;
use teccl_service::protocol::{parse_solve_reply, solve_request_line};
use teccl_service::{
    serve, CacheStatus, RequestMethod, ScheduleService, ServiceConfig, SolveRequest,
};
use teccl_util::json::Value;

fn table4_request() -> SolveRequest {
    let mut req = SolveRequest::new(
        teccl_topology::internal1(2),
        CollectiveKind::AllGather,
        1,
        16.0 * 1024.0 * 1024.0,
    )
    .with_method(RequestMethod::AStar);
    // The experiment harness's quick_config: early stop at 30%, bounded time.
    req.config.early_stop_gap = Some(0.3);
    req.config.time_limit = Some(std::time::Duration::from_secs(60));
    req
}

#[test]
fn table4_request_roundtrips_over_tcp() {
    let service = Arc::new(
        ScheduleService::start(ServiceConfig {
            workers: 2,
            fault_plan: Some(String::new()),
            ..Default::default()
        })
        .unwrap(),
    );
    let handle = serve("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut round_trip = |request: &str| -> String {
        writer
            .write_all(format!("{request}\n").as_bytes())
            .and_then(|_| writer.flush())
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        line.clone()
    };

    // 1. Solve the Table-4 request; the schedule must come back intact.
    let req = table4_request();
    let reply = parse_solve_reply(&round_trip(&solve_request_line(&req))).unwrap();
    assert_eq!(reply.cache, CacheStatus::Miss);
    assert!(reply.output.schedule.num_sends() > 0);
    assert!(reply.output.metrics.transfer_time > 0.0);
    assert!((reply.chunk_bytes - req.chunk_bytes()).abs() < 1e-6);
    // Validate the wire-delivered schedule against the demand (the default
    // switch model leaves the topology untransformed).
    let report =
        teccl_schedule::validate(&req.topology, &req.demand(), &reply.output.schedule, false);
    assert!(report.is_valid(), "{:?}", report.errors);

    // 2. The identical request again: a hit, and — the acceptance gate — the
    //    solver counters did not move.
    let before = service.stats();
    let reply2 = parse_solve_reply(&round_trip(&solve_request_line(&req))).unwrap();
    assert_eq!(reply2.cache, CacheStatus::Hit);
    assert_eq!(reply2.output.schedule.sends, reply.output.schedule.sends);
    assert_eq!(reply2.output.metrics, reply.output.metrics);
    let after = service.stats();
    assert_eq!(after.solves, before.solves);
    assert_eq!(
        after.solve_simplex_iterations,
        before.solve_simplex_iterations
    );
    assert_eq!(after.hits, before.hits + 1);

    // 3. The stats verb reflects the conversation.
    let stats_line = round_trip(r#"{"verb":"stats"}"#);
    let v = Value::parse(stats_line.trim()).unwrap();
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    let stats = v.get("stats").unwrap();
    assert_eq!(stats.get("solves").and_then(Value::as_usize), Some(1));
    assert_eq!(stats.get("hits").and_then(Value::as_usize), Some(1));

    // 4. Evict, then the same request is a miss (and a fresh solve) again.
    let evict_line = round_trip(r#"{"verb":"evict"}"#);
    let v = Value::parse(evict_line.trim()).unwrap();
    assert_eq!(v.get("evicted").and_then(Value::as_usize), Some(1));
    let reply3 = parse_solve_reply(&round_trip(&solve_request_line(&req))).unwrap();
    assert_eq!(reply3.cache, CacheStatus::Miss);
    assert_eq!(
        reply3.output.schedule.sends.len(),
        reply.output.schedule.sends.len()
    );

    // 5. Malformed input gets an error response, not a hangup.
    let err_line = round_trip(r#"{"verb":"solve"}"#);
    let v = Value::parse(err_line.trim()).unwrap();
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));

    // 6. Degenerate buffer sizes are rejected at parse time with a typed
    //    code — they must never reach the solver or the cache, where they
    //    would all collapse into the single `i64::MIN` size bucket and
    //    cross-warm-start each other.
    let before = service.stats();
    for bad_size in ["0", "-16777216", "1e999"] {
        let line = round_trip(&format!(
            r#"{{"verb":"solve","topology":"dgx1","collective":"all_gather","output_buffer":{bad_size}}}"#
        ));
        let v = Value::parse(line.trim()).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("code").and_then(Value::as_str),
            Some("invalid_buffer_size"),
            "size {bad_size} must be rejected with the typed code: {line}"
        );
    }
    let after = service.stats();
    assert_eq!(after.solves, before.solves);
    assert_eq!(after.misses, before.misses);

    handle.shutdown();
}
