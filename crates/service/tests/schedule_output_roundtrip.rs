//! Satellite property test: `ScheduleOutput` JSON round-trips exactly for
//! real solver outputs across the Table-4 scenario set — serialize →
//! deserialize → `validate` still passes and the metrics are bit-identical.
//!
//! The A* rows run at the paper's full 16 MB buffer; the ALLTOALL LP rows
//! run at reduced chassis counts — the full internal1(2)/internal2(4)
//! ALLTOALL LPs are the ~100k-iteration instances of Table 4 (minutes in a
//! debug build) and the serialization path under test is independent of LP
//! size. The same reduced-scale convention applies throughout
//! `teccl-bench` (see its crate docs).

use teccl_collective::{CollectiveKind, DemandMatrix};
use teccl_core::{SolverConfig, TeCcl};
use teccl_schedule::{simulate, validate, CollectiveMetrics, ScheduleOutput};
use teccl_service::{RequestMethod, SolveRequest};
use teccl_topology::{internal1, internal2, NodeId, Topology};

fn table4_cases() -> Vec<(&'static str, Topology, CollectiveKind, RequestMethod, f64)> {
    const MB: f64 = 1024.0 * 1024.0;
    vec![
        (
            "internal1x2-ag-astar-16M",
            internal1(2),
            CollectiveKind::AllGather,
            RequestMethod::AStar,
            16.0 * MB,
        ),
        (
            "internal1x1-atoa-lp-1M",
            internal1(1),
            CollectiveKind::AllToAll,
            RequestMethod::Lp,
            MB,
        ),
        (
            "internal2x4-ag-astar-16M",
            internal2(4),
            CollectiveKind::AllGather,
            RequestMethod::AStar,
            16.0 * MB,
        ),
        (
            "internal2x2-atoa-lp-1M",
            internal2(2),
            CollectiveKind::AllToAll,
            RequestMethod::Lp,
            MB,
        ),
    ]
}

#[test]
fn table4_outputs_roundtrip_bit_exactly() {
    for (name, topo, kind, method, size) in table4_cases() {
        let mut config = SolverConfig::early_stop();
        config.time_limit = Some(std::time::Duration::from_secs(60));
        let request = SolveRequest::new(topo.clone(), kind, 1, size)
            .with_method(method)
            .with_config(config.clone());
        let demand: DemandMatrix = request.demand();
        let chunk_bytes = request.chunk_bytes();
        let solver = TeCcl::new(topo.clone(), config);
        let outcome = match method {
            RequestMethod::Lp => solver.solve_lp(&demand, chunk_bytes),
            RequestMethod::AStar => solver.solve_astar(&demand, chunk_bytes),
            _ => solver.solve(&demand, chunk_bytes),
        }
        .unwrap_or_else(|e| panic!("{name}: solve failed: {e}"));

        let sim = simulate(&outcome.topology_used, &demand, &outcome.schedule).unwrap();
        let output = ScheduleOutput {
            schedule: outcome.schedule,
            metrics: CollectiveMetrics {
                solver: format!("te-ccl-{name}"),
                epoch_duration: outcome.epoch_duration,
                transfer_time: sim.transfer_time,
                solver_time: outcome.solver_time.as_secs_f64(),
                output_buffer_bytes: request.output_buffer,
                bytes_on_wire: sim.bytes_on_wire,
            },
        };

        // serialize → deserialize…
        let text = output.to_json_value().to_json();
        let back = ScheduleOutput::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));

        // …validate still passes…
        let report = validate(&outcome.topology_used, &demand, &back.schedule, false);
        assert!(report.is_valid(), "{name}: {:?}", report.errors);
        assert_eq!(back.schedule.sends, output.schedule.sends, "{name}");
        assert_eq!(
            back.schedule.num_epochs, output.schedule.num_epochs,
            "{name}"
        );

        // …and the metrics are bit-identical, field by field.
        let (a, b) = (&back.metrics, &output.metrics);
        assert_eq!(a.solver, b.solver, "{name}");
        for (field, x, y) in [
            ("epoch_duration", a.epoch_duration, b.epoch_duration),
            ("transfer_time", a.transfer_time, b.transfer_time),
            ("solver_time", a.solver_time, b.solver_time),
            (
                "output_buffer_bytes",
                a.output_buffer_bytes,
                b.output_buffer_bytes,
            ),
            ("bytes_on_wire", a.bytes_on_wire, b.bytes_on_wire),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: metric {field} not bit-identical"
            );
        }

        // The simulator agrees with itself on the reparsed schedule — the
        // round trip did not perturb anything the α–β model observes.
        let sim2 = simulate(&outcome.topology_used, &demand, &back.schedule).unwrap();
        assert_eq!(
            sim2.transfer_time.to_bits(),
            sim.transfer_time.to_bits(),
            "{name}"
        );
    }

    // Pure property sweep on top of the real outputs: random schedules with
    // adversarial float values round-trip exactly.
    let mut rng = teccl_util::Rng64::seed_from_u64(42);
    for case in 0..50 {
        let mut s = teccl_schedule::Schedule::new(format!("prop-{case}"), rng.gen_f64() * 1e9);
        s.epoch_duration = rng.gen_f64() * 1e-3;
        s.solver_time = rng.gen_f64() * 100.0;
        for _ in 0..rng.gen_range_usize(20) {
            s.push(
                teccl_schedule::ChunkId::new(
                    NodeId(rng.gen_range_usize(8)),
                    rng.gen_range_usize(4),
                ),
                NodeId(rng.gen_range_usize(8)),
                NodeId(rng.gen_range_usize(8)),
                rng.gen_range_usize(12),
            );
        }
        let out = ScheduleOutput {
            schedule: s,
            metrics: CollectiveMetrics {
                solver: format!("prop-{case}"),
                epoch_duration: rng.gen_f64() / 3.0,
                transfer_time: rng.gen_f64() * 1e-2 + 1e-9,
                solver_time: rng.gen_f64() * 7.0,
                output_buffer_bytes: rng.gen_f64() * 1e12,
                bytes_on_wire: rng.gen_f64() * 1e12,
            },
        };
        let back = ScheduleOutput::from_json_str(&out.to_json_value().to_json()).unwrap();
        assert_eq!(back.schedule.sends, out.schedule.sends);
        assert_eq!(back.metrics, out.metrics);
        assert_eq!(
            back.metrics.transfer_time.to_bits(),
            out.metrics.transfer_time.to_bits()
        );
        assert_eq!(
            back.metrics.output_buffer_bytes.to_bits(),
            out.metrics.output_buffer_bytes.to_bits()
        );
    }
}
