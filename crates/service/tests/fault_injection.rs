//! Fault-injection integration tests: the robustness story end to end.
//!
//! Each test wires a deterministic [`teccl_service::fault`] plan (or an
//! expired deadline) into a real service and asserts the failure is
//! *contained*: exactly one typed error where an error is due, a degraded
//! but validated schedule where the ladder has a rung, and a service that
//! keeps serving afterwards.
//!
//! CI runs this file once more with `TECCL_FAULT_PLAN` set in the
//! environment; the panic test switches to the env-driven path when the
//! variable is present, so both plumbing routes (config spec and env var)
//! stay covered.

use std::time::{Duration, Instant};

use teccl_collective::CollectiveKind;
use teccl_schedule::validate;
use teccl_service::fault::FAULT_PLAN_ENV;
use teccl_service::{
    CacheStatus, Quality, ScheduleService, ServiceConfig, ServiceError, SolveRequest,
};
use teccl_topology::ring_topology;

fn small_request() -> SolveRequest {
    SolveRequest::new(
        ring_topology(3, 1e9, 0.0),
        CollectiveKind::AllGather,
        1,
        64.0 * 1024.0,
    )
}

/// A scratch directory for disk-store tests, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("teccl-fault-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }

    fn entry_path(&self, req: &SolveRequest) -> std::path::PathBuf {
        self.0.join(format!("sched-{:016x}.json", req.key().hash))
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An injected panic inside the solve reaches the waiter as exactly one
/// typed error; the worker survives (the panic is caught at the solve
/// boundary, so no respawn is even needed) and the very next request — the
/// same key — solves normally.
#[test]
fn injected_panic_is_contained_and_the_service_keeps_serving() {
    // When CI exports TECCL_FAULT_PLAN this exercises the env-driven path
    // (config `None`); standalone runs inject an equivalent plan explicitly.
    let fault_plan = if std::env::var_os(FAULT_PLAN_ENV).is_some() {
        None
    } else {
        Some("panic-in-solve=1".to_string())
    };
    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        fault_plan,
        ..Default::default()
    })
    .unwrap();

    let err = svc.request(small_request()).unwrap_err();
    match &err {
        ServiceError::WorkerPanicked(m) => assert!(m.contains("injected fault"), "{m}"),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.solve_errors, 1);
    assert_eq!(stats.solves, 0);

    // The sole worker is still alive: the retry must solve, not hang.
    let served = svc.request(small_request()).unwrap();
    assert_eq!(served.quality, Quality::Exact);
    let stats = svc.stats();
    assert_eq!(stats.solves, 1);
    assert_eq!(
        stats.worker_respawns, 0,
        "a caught panic must not kill the worker thread"
    );
    svc.shutdown();
}

/// The ISSUE acceptance scenario, fast half: a 100 ms deadline on the large
/// internal1(2) ALLTOALL (whose exact solve takes tens of seconds) comes
/// back promptly with a degraded, *validated* schedule.
#[test]
fn deadline_on_large_alltoall_serves_validated_degraded_schedule() {
    let svc = ScheduleService::start(ServiceConfig {
        workers: 2,
        // Without this, shutdown below would join the (multi-minute) exact
        // background re-solve; the upgrade path has its own test.
        background_upgrade: false,
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let req = SolveRequest::new(
        teccl_topology::internal1(2),
        CollectiveKind::AllToAll,
        1,
        16.0 * 1024.0 * 1024.0,
    )
    .with_deadline(Duration::from_millis(100));

    let start = Instant::now();
    let served = svc.request(req.clone()).unwrap();
    let elapsed = start.elapsed();
    assert_ne!(
        served.quality,
        Quality::Exact,
        "a 100 ms deadline cannot certify this solve exactly"
    );
    // Measured ~1.06× the deadline (budget trip + fallback construction);
    // the bound is generous for loaded CI machines and debug builds.
    assert!(
        elapsed < Duration::from_secs(2),
        "degraded answer took {elapsed:?}"
    );
    // The baseline rung is built directly on the request topology; re-check
    // the server-side validation from the outside.
    if served.quality == Quality::Baseline {
        let report = validate(
            &req.topology,
            &req.demand(),
            &served.entry.output.schedule,
            false,
        );
        assert!(report.is_valid(), "{:?}", report.errors);
    }
    assert!(svc.stats().degraded >= 1);
    svc.shutdown();
}

/// Same deadline scenario but with the Dantzig-Wolfe path *forced on*: the
/// column-generation solve trips its budget mid-run and the reply must still
/// be a validated, honestly-tagged schedule — `incumbent` when the master
/// had an artificial-free point in hand (the RMP incumbent is fed through
/// the same `budget_stop` contract as the monolithic solver), a lower rung
/// otherwise, never a silently-wrong `exact`.
#[test]
fn deadline_on_decomposed_alltoall_tags_quality_honestly() {
    let svc = ScheduleService::start(ServiceConfig {
        workers: 2,
        background_upgrade: false,
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let mut req = SolveRequest::new(
        teccl_topology::internal1(2),
        CollectiveKind::AllToAll,
        1,
        16.0 * 1024.0 * 1024.0,
    )
    .with_deadline(Duration::from_millis(150));
    req.config.decompose = teccl_service::Decompose::On;
    req.config.threads = 2;

    let served = svc.request(req.clone()).unwrap();
    assert_ne!(
        served.quality,
        Quality::Exact,
        "a 150 ms deadline cannot certify this solve exactly"
    );
    // Whatever rung answered — incumbent, stale or baseline — the schedule
    // must hold up to external validation on the request topology.
    let report = validate(
        &req.topology,
        &req.demand(),
        &served.entry.output.schedule,
        false,
    );
    assert!(report.is_valid(), "{:?}", report.errors);
    assert!(svc.stats().degraded >= 1 || served.quality == Quality::Incumbent);
    svc.shutdown();
}

/// The ISSUE acceptance scenario in full: the deadline-bearing request
/// degrades, the patient request still certifies `exact`. The exact ALLTOALL
/// solve takes ~20 s in release (minutes in debug), so this runs ignored;
/// CI invokes it explicitly in release mode.
#[test]
#[ignore = "exact internal1(2) ALLTOALL solve takes ~20 s in release; run with --ignored"]
fn acceptance_patient_alltoall_still_certifies_exact() {
    let svc = ScheduleService::start(ServiceConfig {
        workers: 2,
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let req = SolveRequest::new(
        teccl_topology::internal1(2),
        CollectiveKind::AllToAll,
        1,
        16.0 * 1024.0 * 1024.0,
    );

    let start = Instant::now();
    let degraded = svc
        .request(req.clone().with_deadline(Duration::from_millis(100)))
        .unwrap();
    assert_ne!(degraded.quality, Quality::Exact);
    assert!(start.elapsed() < Duration::from_secs(2));

    // No deadline: the degraded cache entry must be bypassed and the solve
    // carried to optimality.
    let exact = svc.request(req).unwrap();
    assert_eq!(exact.quality, Quality::Exact);
    svc.shutdown();
}

/// An already-expired deadline on a size variant of a solved family is the
/// stale rung: the neighbouring bucket's exact entry is served as-is, and
/// the simplex is never entered (zero iterations charged).
#[test]
fn expired_deadline_serves_stale_family_neighbor_without_touching_simplex() {
    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        background_upgrade: false,
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let base = small_request();
    let exact = svc.request(base.clone()).unwrap();
    assert_eq!(exact.quality, Quality::Exact);
    let iters_before = svc.stats().solve_simplex_iterations;

    // Same family (topology / collective / chunks / config), different
    // half-octave size bucket, and no time to solve it.
    let mut variant = small_request();
    variant.output_buffer = 256.0 * 1024.0;
    assert_eq!(variant.key().family, base.key().family);
    assert_ne!(variant.key().hash, base.key().hash);
    let served = svc
        .request(variant.clone().with_deadline(Duration::ZERO))
        .unwrap();
    assert_eq!(served.quality, Quality::Stale);
    assert_eq!(served.cache, CacheStatus::Miss);
    assert_eq!(
        served.entry.key.hash,
        base.key().hash,
        "the stale rung serves the neighbour's entry under the neighbour's key"
    );
    assert_eq!(
        svc.stats().solve_simplex_iterations,
        iters_before,
        "an expired deadline must never enter the simplex"
    );

    // A patient request for the variant is not fobbed off with the stale
    // serving: the stale entry was never cached under the variant's key.
    let patient = svc.request(variant).unwrap();
    assert_eq!(patient.quality, Quality::Exact);
    assert!(svc.stats().solve_simplex_iterations > iters_before);
    svc.shutdown();
}

/// A stalled solve blows its deadline, falls to the baseline rung (no
/// family neighbour exists), and the background upgrade then replaces the
/// degraded cache entry with the exact schedule.
#[test]
fn slow_solve_falls_to_baseline_then_background_upgrade_restores_exact() {
    let svc = ScheduleService::start(ServiceConfig {
        workers: 2,
        fault_plan: Some("slow-solve=250:1".to_string()),
        ..Default::default()
    })
    .unwrap();
    let req = small_request().with_deadline(Duration::from_millis(50));

    let served = svc.request(req.clone()).unwrap();
    assert_eq!(served.quality, Quality::Baseline);
    assert_eq!(served.entry.stats.simplex_iterations, 0);

    // The degraded publish enqueued a deadline-stripped re-solve; wait for
    // it to land.
    let start = Instant::now();
    while svc.stats().background_upgrades == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "background upgrade never completed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Even a deadline-bearing caller now gets the exact entry from cache.
    let upgraded = svc.request(req).unwrap();
    assert_eq!(upgraded.quality, Quality::Exact);
    assert_eq!(upgraded.cache, CacheStatus::Hit);
    svc.shutdown();
}

/// A corrupted on-disk entry is quarantined (renamed aside, counted), the
/// request falls through to a fresh solve, and the store heals itself.
#[test]
fn corrupt_disk_entry_is_quarantined_and_resolved() {
    let scratch = ScratchDir::new("corrupt");
    let req = small_request();
    let path = scratch.entry_path(&req);

    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        disk_dir: Some(scratch.0.clone()),
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    svc.request(req.clone()).unwrap();
    svc.shutdown();
    assert!(path.exists(), "exact solve must persist to disk");

    std::fs::write(&path, "not json at all").unwrap();

    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        disk_dir: Some(scratch.0.clone()),
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let served = svc.request(req.clone()).unwrap();
    assert_eq!(served.quality, Quality::Exact);
    assert_eq!(
        served.cache,
        CacheStatus::Miss,
        "the corrupt file must not count as a disk hit"
    );
    let stats = svc.stats();
    assert_eq!(stats.disk_quarantined, 1);
    let corrupt = path.with_extension("json.corrupt");
    assert!(corrupt.exists(), "bad file moved aside, not deleted");
    // The re-solve wrote a fresh entry; a restart now disk-hits again.
    svc.shutdown();
    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        disk_dir: Some(scratch.0.clone()),
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let served = svc.request(req).unwrap();
    assert_eq!(served.cache, CacheStatus::DiskHit);
    svc.shutdown();
}

/// A crash mid-disk-write leaves a stray `.tmp` and (in the worst case) a
/// torn entry file. A restarted service must quarantine the torn file and
/// serve anyway.
#[test]
fn restart_after_crash_mid_disk_write_serves() {
    let scratch = ScratchDir::new("torn");
    let req = small_request();
    // Simulated wreckage: a half-written temp file and a truncated entry.
    std::fs::write(
        scratch.0.join("sched-00000000deadbeef.tmp"),
        "{\"key\":{\"ha",
    )
    .unwrap();
    std::fs::write(scratch.entry_path(&req), "{\"key\":{\"family\":1,").unwrap();

    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        disk_dir: Some(scratch.0.clone()),
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    let served = svc.request(req).unwrap();
    assert_eq!(served.quality, Quality::Exact);
    assert_eq!(served.cache, CacheStatus::Miss);
    assert_eq!(svc.stats().disk_quarantined, 1);
    svc.shutdown();
}

/// The injected `corrupt-disk-read` fault (a read that returns garbage even
/// though the file on disk is fine) is also quarantined and survived.
#[test]
fn injected_corrupt_disk_read_is_quarantined() {
    let scratch = ScratchDir::new("badread");
    let req = small_request();

    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        disk_dir: Some(scratch.0.clone()),
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .unwrap();
    svc.request(req.clone()).unwrap();
    svc.shutdown();

    let svc = ScheduleService::start(ServiceConfig {
        workers: 1,
        disk_dir: Some(scratch.0.clone()),
        fault_plan: Some("corrupt-disk-read=1".to_string()),
        ..Default::default()
    })
    .unwrap();
    let served = svc.request(req).unwrap();
    // The poisoned read cost the disk hit but not the request.
    assert_eq!(served.quality, Quality::Exact);
    assert_eq!(served.cache, CacheStatus::Miss);
    assert_eq!(svc.stats().disk_quarantined, 1);
    svc.shutdown();
}
