//! Concurrency tests for the orchestrator: the single-flight guarantee under
//! a deliberate 2-thread race, and an 8-thread × 200-request fuzz over a
//! mixed request pool.

use std::sync::{Arc, Barrier};

use teccl_collective::CollectiveKind;
use teccl_service::{CacheStatus, RequestMethod, ScheduleService, ServiceConfig, SolveRequest};
use teccl_topology::{line_topology, ring_topology};
use teccl_util::Rng64;

fn request_pool() -> Vec<SolveRequest> {
    // Small, fast scenarios: distinct topologies / collectives / sizes /
    // methods so keys, formulations and schedules all differ.
    let mut pool = vec![
        SolveRequest::new(
            ring_topology(3, 1e9, 0.0),
            CollectiveKind::AllGather,
            1,
            64.0 * 1024.0,
        ),
        SolveRequest::new(
            ring_topology(4, 1e9, 0.0),
            CollectiveKind::AllToAll,
            1,
            64.0 * 1024.0,
        ),
        SolveRequest::new(
            line_topology(3, 1e9, 1e-6),
            CollectiveKind::Broadcast,
            1,
            64.0 * 1024.0,
        ),
        SolveRequest::new(
            line_topology(4, 1e9, 0.0),
            CollectiveKind::AllGather,
            1,
            64.0 * 1024.0,
        )
        .with_method(RequestMethod::AStar),
        SolveRequest::new(
            ring_topology(3, 1e9, 0.0),
            CollectiveKind::Gather,
            1,
            32.0 * 1024.0,
        ),
        // Same as pool[0] but one size bucket up: a distinct key in the same
        // family (exercises the warm-hint path during the fuzz).
        SolveRequest::new(
            ring_topology(3, 1e9, 0.0),
            CollectiveKind::AllGather,
            1,
            256.0 * 1024.0,
        ),
    ];
    // And a size-coalescing alias: within the half-octave of pool[0], so it
    // must share pool[0]'s key and cache entry.
    let mut alias = pool[0].clone();
    alias.output_buffer = 64.0 * 1024.0 * 1.07;
    pool.push(alias);
    pool
}

/// The acceptance-criteria race: two threads submit the *same* request at
/// the same time; exactly one solve happens and both get the same entry.
#[test]
fn two_thread_identical_race_solves_once() {
    let svc = Arc::new(
        ScheduleService::start(ServiceConfig {
            fault_plan: Some(String::new()),
            ..Default::default()
        })
        .unwrap(),
    );
    let barrier = Arc::new(Barrier::new(2));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let req = SolveRequest::new(
                    ring_topology(3, 1e9, 0.0),
                    CollectiveKind::AllGather,
                    1,
                    64.0 * 1024.0,
                );
                barrier.wait();
                svc.request(req).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let stats = svc.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(
        stats.solves, 1,
        "identical race must perform exactly one solve"
    );
    assert!(Arc::ptr_eq(&results[0].entry, &results[1].entry));
    // One of the two owned the solve; the other hit, coalesced, or (if it
    // arrived after completion) hit the cache.
    assert_eq!(stats.hits + stats.coalesced + stats.misses, 2);
    assert_eq!(stats.misses, 1);
    // The replies' cache statuses agree with the counters: exactly one Miss,
    // and the joiner is reported as what it was (Coalesced or Hit), not as a
    // second miss.
    let statuses: Vec<CacheStatus> = results.iter().map(|r| r.cache).collect();
    assert_eq!(
        statuses.iter().filter(|s| **s == CacheStatus::Miss).count(),
        1
    );
    assert_eq!(
        statuses
            .iter()
            .filter(|s| **s == CacheStatus::Coalesced)
            .count() as u64,
        stats.coalesced
    );
    assert_eq!(
        statuses.iter().filter(|s| **s == CacheStatus::Hit).count() as u64,
        stats.hits
    );
}

/// The satellite fuzz: 8 threads × 200 mixed requests. Exactly one solve per
/// unique key, and every reply's schedule is identical to the entry the
/// cache holds for that key.
#[test]
fn eight_thread_mixed_fuzz_single_flight() {
    let pool = request_pool();
    let unique_keys: std::collections::BTreeSet<u64> = pool.iter().map(|r| r.key().hash).collect();
    assert_eq!(
        unique_keys.len(),
        pool.len() - 1,
        "the alias must coalesce with pool[0], everything else is distinct"
    );

    let svc = Arc::new(
        ScheduleService::start(ServiceConfig {
            workers: 4,
            fault_plan: Some(String::new()),
            ..Default::default()
        })
        .unwrap(),
    );
    let barrier = Arc::new(Barrier::new(8));
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from_u64(0xf00d + t);
                barrier.wait();
                let mut replies = Vec::new();
                for _ in 0..200 {
                    let req = pool[rng.gen_range_usize(pool.len())].clone();
                    let key = req.key();
                    let served = svc.request(req).expect("fuzz requests all solve");
                    assert_eq!(served.entry.key, key);
                    replies.push(served);
                }
                replies
            })
        })
        .collect();
    let all: Vec<_> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();

    let stats = svc.stats();
    assert_eq!(stats.requests, 1600);
    assert_eq!(
        stats.solves,
        unique_keys.len() as u64,
        "exactly one solve per unique key (single-flight): {stats:?}"
    );
    assert_eq!(stats.solve_errors, 0);
    assert_eq!(
        stats.hits + stats.coalesced + stats.misses + stats.disk_hits,
        1600
    );
    assert_eq!(stats.misses, unique_keys.len() as u64);

    // Every waiter received a schedule identical to the cached one: replies
    // for one key all share the same Arc (hit/coalesced fan-out both clone
    // the entry Arc), and its sends match the cache's current entry.
    let mut by_key: std::collections::BTreeMap<u64, Vec<&teccl_service::ServedSchedule>> =
        Default::default();
    for served in &all {
        by_key
            .entry(served.entry.key.hash)
            .or_default()
            .push(served);
    }
    assert_eq!(by_key.len(), unique_keys.len());
    for (key, replies) in by_key {
        let first = &replies[0].entry;
        for r in &replies {
            assert!(
                Arc::ptr_eq(&r.entry, first),
                "key {key:x}: waiter got a different entry"
            );
            assert_eq!(r.entry.output.schedule.sends, first.output.schedule.sends);
        }
        assert!(replies.iter().any(|r| r.cache == CacheStatus::Miss));
    }
}
