//! `teccld` — the TE-CCL schedule server.
//!
//! Serves the line-delimited-JSON protocol (`solve` / `stats` / `evict`)
//! over TCP, backed by the content-addressed schedule cache and the
//! concurrent solve orchestrator.
//!
//! ```text
//! teccld [--addr 127.0.0.1:7677] [--workers N] [--cache-capacity N]
//!        [--core-budget N] [--disk-cache DIR] [--fault-plan SPEC]
//! ```
//!
//! `--fault-plan` (or the `TECCL_FAULT_PLAN` env var) injects deterministic
//! faults for robustness testing — see `teccl_service::fault`.

use std::sync::Arc;

use teccl_service::{serve, ScheduleService, ServiceConfig};

fn main() {
    let mut addr = "127.0.0.1:7677".to_string();
    let mut config = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => {
                config.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers must be a positive integer"));
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| die("--cache-capacity must be a positive integer"));
            }
            "--core-budget" => {
                config.core_budget = Some(
                    value("--core-budget")
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--core-budget must be a positive integer")),
                );
            }
            "--disk-cache" => config.disk_dir = Some(value("--disk-cache").into()),
            "--fault-plan" => config.fault_plan = Some(value("--fault-plan")),
            "--help" | "-h" => {
                println!(
                    "teccld — TE-CCL schedule server\n\n\
                     USAGE:\n  teccld [--addr HOST:PORT] [--workers N] \
                     [--cache-capacity N] [--core-budget N] [--disk-cache DIR] \
                     [--fault-plan SPEC]\n\n\
                     --core-budget caps the solver threads handed out across \
                     concurrently active solves (default: the machine's \
                     available parallelism).\n\n\
                     Protocol: one JSON request per line over TCP; verbs \
                     `solve`, `stats`, `evict`.\nSee crates/service/README.md."
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    let workers = config.workers;
    let disk = config.disk_dir.clone();
    let service = match ScheduleService::start(config) {
        Ok(s) => Arc::new(s),
        Err(e) => die(&format!("failed to start service: {e}")),
    };
    let handle = match serve(addr.as_str(), service) {
        Ok(h) => h,
        Err(e) => die(&format!("failed to bind {addr}: {e}")),
    };
    println!(
        "teccld listening on {} ({} workers, disk cache: {})",
        handle.addr(),
        workers,
        disk.map(|d| d.display().to_string())
            .unwrap_or_else(|| "off".into()),
    );
    handle.wait();
}

fn die(msg: &str) -> ! {
    eprintln!("teccld: {msg}");
    std::process::exit(2);
}
