//! `teccl-cli` — client for the `teccld` schedule server.
//!
//! ```text
//! teccl-cli solve --addr H:P --topology internal1x2 --collective all_gather \
//!                 --buffer 16M [--chunks N] [--method astar] [--deadline-ms D] [...]
//! teccl-cli batch --addr H:P --file requests.jsonl [--repeat N] [--deadline-ms D]
//! teccl-cli stats --addr H:P
//! teccl-cli evict --addr H:P
//! ```
//!
//! `batch` replays a file of solve requests (one JSON object per line — the
//! same documents the `solve` verb accepts, `verb` optional) against the
//! server and reports latency percentiles per cache status and per quality
//! tier, the visible face of the cache and the degradation ladder: misses
//! cost a solve, hits cost a round trip, and deadline-degraded answers sit
//! in between.
//!
//! Connections and requests are retried with exponential backoff plus
//! jitter: solve requests are idempotent (content-addressed and cached
//! server-side), so a dropped connection mid-request is always safe to
//! replay.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use teccl_collective::chunk::{format_size, parse_size};
use teccl_service::protocol::{parse_solve_reply, solve_request_line};
use teccl_service::{builtin_topology, CacheStatus, Quality, RequestMethod, SolveRequest};
use teccl_topology::Topology;
use teccl_util::json::Value;
use teccl_util::rng::Rng64;

/// Total attempts per request (1 initial + retries).
const ATTEMPTS: u32 = 4;
/// Base backoff before the first retry; doubles per attempt, ±50% jitter.
const BACKOFF_BASE_MS: f64 = 50.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        die("missing command (solve | batch | stats | evict; try --help)")
    };
    match command.as_str() {
        "solve" => cmd_solve(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "stats" => cmd_verb(&args[1..], "stats"),
        "evict" => cmd_verb(&args[1..], "evict"),
        "--help" | "-h" => print_help(),
        other => die(&format!("unknown command `{other}` (try --help)")),
    }
}

fn print_help() {
    println!(
        "teccl-cli — client for the teccld schedule server\n\n\
         COMMANDS:\n  \
         solve  --topology SPEC --collective KIND --buffer SIZE\n         \
         [--chunks N] [--method auto|milp|lp|astar] [--addr H:P]\n         \
         [--max-epochs K] [--early-stop GAP] [--time-limit-s S]\n         \
         [--deadline-ms D] [--threads N] [--decompose auto|on|off]\n  \
         batch  --file requests.jsonl [--repeat N] [--deadline-ms D]\n         \
         [--threads N] [--decompose auto|on|off] [--addr H:P]\n  \
         stats  [--addr H:P]\n  \
         evict  [--addr H:P]\n\n\
         SPEC is a builtin name (dgx1, ndv2x2, internal1x2, …) or @FILE.json;\n\
         SIZE accepts 16M / 64K / 1G suffixes.\n\
         --deadline-ms asks the server for its best answer within D ms; the\n\
         reply's quality tag (exact/incumbent/stale/baseline) says what it\n\
         had to settle for.\n\
         --threads asks the server to solve with up to N worker threads\n\
         (granted subject to its --core-budget; the answer is unchanged).\n\
         --decompose controls the copy-free LP's Dantzig-Wolfe path: auto\n\
         (default) engages it when it should win, on/off force it; the\n\
         certified answer is identical either way."
    );
}

/// Flag parsing shared by the commands: `(addr, remaining key→value flags)`.
fn parse_flags(args: &[String]) -> (String, Vec<(String, String)>) {
    let mut addr = "127.0.0.1:7677".to_string();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")));
        if flag == "--addr" {
            addr = value.clone();
        } else {
            rest.push((flag.clone(), value.clone()));
        }
    }
    (addr, rest)
}

struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            writer: stream,
            reader,
        })
    }

    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply)
    }
}

/// A connection that transparently reconnects and replays on failure, with
/// exponential backoff and jitter so a fleet of clients retrying against a
/// recovering server does not stampede it.
struct Client {
    addr: String,
    conn: Option<Connection>,
    rng: Rng64,
}

impl Client {
    fn new(addr: &str) -> Client {
        // The seed only decorrelates jitter between concurrent clients; it
        // does not need to be strong.
        let seed = std::process::id() as u64 ^ Instant::now().elapsed().subsec_nanos() as u64;
        Client {
            addr: addr.to_string(),
            conn: None,
            rng: Rng64::seed_from_u64(seed ^ 0x74ec_c1c1),
        }
    }

    fn backoff(&mut self, attempt: u32) {
        let ms = BACKOFF_BASE_MS * f64::from(1u32 << attempt) * self.rng.gen_range_f64(0.5, 1.5);
        std::thread::sleep(Duration::from_secs_f64(ms / 1e3));
    }

    /// Sends one line and reads one reply, reconnecting and retrying with
    /// backoff on connection or transport failure. Dies after [`ATTEMPTS`].
    fn request(&mut self, line: &str) -> String {
        let mut last_err = String::new();
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            if self.conn.is_none() {
                match Connection::open(&self.addr) {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        last_err = format!("cannot connect to {}: {e}", self.addr);
                        eprintln!("teccl-cli: {last_err} (attempt {}/{ATTEMPTS})", attempt + 1);
                        continue;
                    }
                }
            }
            match self.conn.as_mut().expect("just set").round_trip(line) {
                Ok(reply) => return reply,
                Err(e) => {
                    // The stream is in an unknown state: reconnect fresh.
                    self.conn = None;
                    last_err = format!("request failed: {e}");
                    eprintln!("teccl-cli: {last_err} (attempt {}/{ATTEMPTS})", attempt + 1);
                }
            }
        }
        die(&format!("{last_err} (giving up after {ATTEMPTS} attempts)"))
    }
}

fn cmd_verb(args: &[String], verb: &str) {
    let (addr, rest) = parse_flags(args);
    if let Some((flag, _)) = rest.first() {
        die(&format!("unknown flag `{flag}` for {verb}"));
    }
    let reply = Client::new(&addr).request(&format!("{{\"verb\":\"{verb}\"}}"));
    match Value::parse(reply.trim()) {
        Ok(v) => println!("{}", v.to_json_pretty()),
        Err(_) => die("malformed server reply"),
    }
}

fn cmd_solve(args: &[String]) {
    let (addr, rest) = parse_flags(args);
    let mut topology: Option<Topology> = None;
    let mut collective = None;
    let mut buffer = None;
    let mut chunks = 1usize;
    let mut method = RequestMethod::Auto;
    let mut config = teccl_core::SolverConfig::default();
    let mut deadline = None;
    for (flag, value) in &rest {
        match flag.as_str() {
            "--topology" => topology = Some(resolve_topology(value)),
            "--collective" => {
                collective = Some(
                    teccl_service::key::collective_from_name(value)
                        .unwrap_or_else(|| die(&format!("unknown collective `{value}`"))),
                )
            }
            "--buffer" => {
                buffer =
                    Some(parse_size(value).unwrap_or_else(|| die(&format!("bad size `{value}`"))))
            }
            "--chunks" => chunks = parse_num(value, "--chunks"),
            "--method" => {
                method = RequestMethod::from_name(value)
                    .unwrap_or_else(|| die(&format!("unknown method `{value}`")))
            }
            "--max-epochs" => config.max_epochs = Some(parse_num(value, "--max-epochs")),
            "--early-stop" => {
                config.early_stop_gap =
                    Some(value.parse().unwrap_or_else(|_| die("bad --early-stop")))
            }
            "--time-limit-s" => {
                config.time_limit = Some(std::time::Duration::from_secs_f64(
                    value.parse().unwrap_or_else(|_| die("bad --time-limit-s")),
                ))
            }
            "--deadline-ms" => {
                deadline = Some(Duration::from_millis(parse_num(value, "--deadline-ms")))
            }
            "--threads" => config.threads = parse_threads(value),
            "--decompose" => config.decompose = parse_decompose(value),
            other => die(&format!("unknown flag `{other}` for solve")),
        }
    }
    let request = SolveRequest {
        topology: topology.unwrap_or_else(|| die("--topology is required")),
        collective: collective.unwrap_or_else(|| die("--collective is required")),
        chunks,
        output_buffer: buffer.unwrap_or_else(|| die("--buffer is required")),
        method,
        config,
        deadline,
    };

    let start = Instant::now();
    let reply = Client::new(&addr).request(&solve_request_line(&request));
    let elapsed = start.elapsed();
    match parse_solve_reply(&reply) {
        Ok(r) => {
            let m = &r.output.metrics;
            println!(
                "{} ({}, {}) in {:.3} ms: {} sends over {} epochs, transfer {:.3} us, \
                 algo bw {:.3} GB/s, chunk {}",
                r.key,
                r.cache.name(),
                r.quality.name(),
                elapsed.as_secs_f64() * 1e3,
                r.output.schedule.num_sends(),
                r.output.schedule.num_epochs,
                m.transfer_time * 1e6,
                m.algorithmic_bandwidth_gbps(),
                format_size(r.chunk_bytes),
            );
        }
        Err(e) => die(&e),
    }
}

fn cmd_batch(args: &[String]) {
    let (addr, rest) = parse_flags(args);
    let mut file = None;
    let mut repeat = 1usize;
    let mut deadline = None;
    let mut threads = None;
    let mut decompose = None;
    for (flag, value) in &rest {
        match flag.as_str() {
            "--file" => file = Some(value.clone()),
            "--repeat" => repeat = parse_num(value, "--repeat"),
            "--deadline-ms" => {
                deadline = Some(Duration::from_millis(parse_num(value, "--deadline-ms")))
            }
            "--threads" => threads = Some(parse_threads(value)),
            "--decompose" => decompose = Some(parse_decompose(value)),
            other => die(&format!("unknown flag `{other}` for batch")),
        }
    }
    let file = file.unwrap_or_else(|| die("--file is required"));
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
    // Pre-parse every line so a malformed file fails before any traffic.
    // `--deadline-ms` and `--threads` override whatever each line says (or
    // doesn't).
    let requests: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let v = Value::parse(l).unwrap_or_else(|e| die(&format!("bad request line: {e}")));
            let mut req = SolveRequest::from_json_value(&v)
                .unwrap_or_else(|e| die(&format!("bad request line: {e}")));
            if let Some(d) = deadline {
                req.deadline = Some(d);
            }
            if let Some(t) = threads {
                req.config.threads = t;
            }
            if let Some(d) = decompose {
                req.config.decompose = d;
            }
            solve_request_line(&req)
        })
        .collect();
    if requests.is_empty() {
        die("request file is empty");
    }

    let mut client = Client::new(&addr);
    // Latencies in microseconds, bucketed by the server-reported cache
    // status and quality tier.
    let mut by_status: Vec<(CacheStatus, Vec<f64>)> = vec![
        (CacheStatus::Hit, Vec::new()),
        (CacheStatus::DiskHit, Vec::new()),
        (CacheStatus::Coalesced, Vec::new()),
        (CacheStatus::Miss, Vec::new()),
    ];
    let mut by_quality: Vec<(Quality, Vec<f64>)> = vec![
        (Quality::Exact, Vec::new()),
        (Quality::Incumbent, Vec::new()),
        (Quality::Stale, Vec::new()),
        (Quality::Baseline, Vec::new()),
    ];
    let batch_start = Instant::now();
    let mut errors = 0usize;
    for _ in 0..repeat {
        for line in &requests {
            let t = Instant::now();
            let reply = client.request(line);
            let us = t.elapsed().as_secs_f64() * 1e6;
            match parse_solve_reply(&reply) {
                Ok(r) => {
                    by_status
                        .iter_mut()
                        .find(|(s, _)| *s == r.cache)
                        .expect("all statuses present")
                        .1
                        .push(us);
                    by_quality
                        .iter_mut()
                        .find(|(q, _)| *q == r.quality)
                        .expect("all qualities present")
                        .1
                        .push(us);
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    errors += 1;
                }
            }
        }
    }
    let wall = batch_start.elapsed().as_secs_f64();
    let total = requests.len() * repeat;
    println!(
        "{} requests in {:.3} s ({:.1} req/s), {} errors",
        total,
        wall,
        total as f64 / wall,
        errors
    );
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12}",
        "status", "count", "p50_us", "p90_us", "p99_us"
    );
    for (status, lat) in &mut by_status {
        print_latency_row(status.name(), lat);
    }
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12}",
        "quality", "count", "p50_us", "p90_us", "p99_us"
    );
    for (quality, lat) in &mut by_quality {
        print_latency_row(quality.name(), lat);
    }
}

/// Prints one percentile row; silent when the bucket is empty.
fn print_latency_row(name: &str, lat: &mut [f64]) {
    if lat.is_empty() {
        return;
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{:<10} {:>7} {:>12.1} {:>12.1} {:>12.1}",
        name,
        lat.len(),
        percentile(lat, 0.50),
        percentile(lat, 0.90),
        percentile(lat, 0.99),
    );
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Resolves `--topology`: a builtin name or `@file.json`.
fn resolve_topology(spec: &str) -> Topology {
    if let Some(path) = spec.strip_prefix('@') {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        return Topology::from_json_str(&text)
            .unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    }
    builtin_topology(spec).unwrap_or_else(|| die(&format!("unknown builtin topology `{spec}`")))
}

/// Parses `--threads`: a positive integer (the wire format rejects zero).
fn parse_threads(value: &str) -> usize {
    value
        .parse::<usize>()
        .ok()
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| die("--threads must be a positive integer"))
}

/// Parses `--decompose`: one of the wire names `auto`, `on`, `off`.
fn parse_decompose(value: &str) -> teccl_core::Decompose {
    teccl_core::Decompose::from_name(value)
        .unwrap_or_else(|| die("--decompose must be auto, on or off"))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} must be a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("teccl-cli: {msg}");
    std::process::exit(2);
}
