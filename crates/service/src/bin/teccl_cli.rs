//! `teccl-cli` — client for the `teccld` schedule server.
//!
//! ```text
//! teccl-cli solve --addr H:P --topology internal1x2 --collective all_gather \
//!                 --buffer 16M [--chunks N] [--method astar] [...]
//! teccl-cli batch --addr H:P --file requests.jsonl [--repeat N]
//! teccl-cli stats --addr H:P
//! teccl-cli evict --addr H:P
//! ```
//!
//! `batch` replays a file of solve requests (one JSON object per line — the
//! same documents the `solve` verb accepts, `verb` optional) against the
//! server and reports per-cache-status latency percentiles, the visible face
//! of the cache: misses cost a solve, hits cost a round trip.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use teccl_collective::chunk::{format_size, parse_size};
use teccl_service::protocol::{parse_solve_reply, solve_request_line};
use teccl_service::{builtin_topology, CacheStatus, RequestMethod, SolveRequest};
use teccl_topology::Topology;
use teccl_util::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        die("missing command (solve | batch | stats | evict; try --help)")
    };
    match command.as_str() {
        "solve" => cmd_solve(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "stats" => cmd_verb(&args[1..], "stats"),
        "evict" => cmd_verb(&args[1..], "evict"),
        "--help" | "-h" => print_help(),
        other => die(&format!("unknown command `{other}` (try --help)")),
    }
}

fn print_help() {
    println!(
        "teccl-cli — client for the teccld schedule server\n\n\
         COMMANDS:\n  \
         solve  --topology SPEC --collective KIND --buffer SIZE\n         \
         [--chunks N] [--method auto|milp|lp|astar] [--addr H:P]\n         \
         [--max-epochs K] [--early-stop GAP] [--time-limit-s S]\n  \
         batch  --file requests.jsonl [--repeat N] [--addr H:P]\n  \
         stats  [--addr H:P]\n  \
         evict  [--addr H:P]\n\n\
         SPEC is a builtin name (dgx1, ndv2x2, internal1x2, …) or @FILE.json;\n\
         SIZE accepts 16M / 64K / 1G suffixes."
    );
}

/// Flag parsing shared by the commands: `(addr, remaining key→value flags)`.
fn parse_flags(args: &[String]) -> (String, Vec<(String, String)>) {
    let mut addr = "127.0.0.1:7677".to_string();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")));
        if flag == "--addr" {
            addr = value.clone();
        } else {
            rest.push((flag.clone(), value.clone()));
        }
    }
    (addr, rest)
}

struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
        let reader = BufReader::new(
            stream
                .try_clone()
                .unwrap_or_else(|e| die(&format!("clone stream: {e}"))),
        );
        Connection {
            writer: stream,
            reader,
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|_| self.writer.flush())
            .unwrap_or_else(|e| die(&format!("send failed: {e}")));
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .unwrap_or_else(|e| die(&format!("receive failed: {e}")));
        if n == 0 {
            die("server closed the connection");
        }
        reply
    }
}

fn cmd_verb(args: &[String], verb: &str) {
    let (addr, rest) = parse_flags(args);
    if let Some((flag, _)) = rest.first() {
        die(&format!("unknown flag `{flag}` for {verb}"));
    }
    let reply = Connection::open(&addr).round_trip(&format!("{{\"verb\":\"{verb}\"}}"));
    match Value::parse(reply.trim()) {
        Ok(v) => println!("{}", v.to_json_pretty()),
        Err(_) => die("malformed server reply"),
    }
}

fn cmd_solve(args: &[String]) {
    let (addr, rest) = parse_flags(args);
    let mut topology: Option<Topology> = None;
    let mut collective = None;
    let mut buffer = None;
    let mut chunks = 1usize;
    let mut method = RequestMethod::Auto;
    let mut config = teccl_core::SolverConfig::default();
    for (flag, value) in &rest {
        match flag.as_str() {
            "--topology" => topology = Some(resolve_topology(value)),
            "--collective" => {
                collective = Some(
                    teccl_service::key::collective_from_name(value)
                        .unwrap_or_else(|| die(&format!("unknown collective `{value}`"))),
                )
            }
            "--buffer" => {
                buffer =
                    Some(parse_size(value).unwrap_or_else(|| die(&format!("bad size `{value}`"))))
            }
            "--chunks" => chunks = parse_num(value, "--chunks"),
            "--method" => {
                method = RequestMethod::from_name(value)
                    .unwrap_or_else(|| die(&format!("unknown method `{value}`")))
            }
            "--max-epochs" => config.max_epochs = Some(parse_num(value, "--max-epochs")),
            "--early-stop" => {
                config.early_stop_gap =
                    Some(value.parse().unwrap_or_else(|_| die("bad --early-stop")))
            }
            "--time-limit-s" => {
                config.time_limit = Some(std::time::Duration::from_secs_f64(
                    value.parse().unwrap_or_else(|_| die("bad --time-limit-s")),
                ))
            }
            other => die(&format!("unknown flag `{other}` for solve")),
        }
    }
    let request = SolveRequest {
        topology: topology.unwrap_or_else(|| die("--topology is required")),
        collective: collective.unwrap_or_else(|| die("--collective is required")),
        chunks,
        output_buffer: buffer.unwrap_or_else(|| die("--buffer is required")),
        method,
        config,
    };

    let start = Instant::now();
    let reply = Connection::open(&addr).round_trip(&solve_request_line(&request));
    let elapsed = start.elapsed();
    match parse_solve_reply(&reply) {
        Ok(r) => {
            let m = &r.output.metrics;
            println!(
                "{} ({}) in {:.3} ms: {} sends over {} epochs, transfer {:.3} us, \
                 algo bw {:.3} GB/s, chunk {}",
                r.key,
                r.cache.name(),
                elapsed.as_secs_f64() * 1e3,
                r.output.schedule.num_sends(),
                r.output.schedule.num_epochs,
                m.transfer_time * 1e6,
                m.algorithmic_bandwidth_gbps(),
                format_size(r.chunk_bytes),
            );
        }
        Err(e) => die(&e),
    }
}

fn cmd_batch(args: &[String]) {
    let (addr, rest) = parse_flags(args);
    let mut file = None;
    let mut repeat = 1usize;
    for (flag, value) in &rest {
        match flag.as_str() {
            "--file" => file = Some(value.clone()),
            "--repeat" => repeat = parse_num(value, "--repeat"),
            other => die(&format!("unknown flag `{other}` for batch")),
        }
    }
    let file = file.unwrap_or_else(|| die("--file is required"));
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
    // Pre-parse every line so a malformed file fails before any traffic.
    let requests: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let v = Value::parse(l).unwrap_or_else(|e| die(&format!("bad request line: {e}")));
            let req = SolveRequest::from_json_value(&v)
                .unwrap_or_else(|e| die(&format!("bad request line: {e}")));
            solve_request_line(&req)
        })
        .collect();
    if requests.is_empty() {
        die("request file is empty");
    }

    let mut conn = Connection::open(&addr);
    // Latencies in microseconds, bucketed by the server-reported cache status.
    let mut by_status: Vec<(CacheStatus, Vec<f64>)> = vec![
        (CacheStatus::Hit, Vec::new()),
        (CacheStatus::DiskHit, Vec::new()),
        (CacheStatus::Coalesced, Vec::new()),
        (CacheStatus::Miss, Vec::new()),
    ];
    let batch_start = Instant::now();
    let mut errors = 0usize;
    for _ in 0..repeat {
        for line in &requests {
            let t = Instant::now();
            let reply = conn.round_trip(line);
            let us = t.elapsed().as_secs_f64() * 1e6;
            match parse_solve_reply(&reply) {
                Ok(r) => by_status
                    .iter_mut()
                    .find(|(s, _)| *s == r.cache)
                    .expect("all statuses present")
                    .1
                    .push(us),
                Err(e) => {
                    eprintln!("request failed: {e}");
                    errors += 1;
                }
            }
        }
    }
    let wall = batch_start.elapsed().as_secs_f64();
    let total = requests.len() * repeat;
    println!(
        "{} requests in {:.3} s ({:.1} req/s), {} errors",
        total,
        wall,
        total as f64 / wall,
        errors
    );
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12}",
        "status", "count", "p50_us", "p90_us", "p99_us"
    );
    for (status, mut lat) in by_status {
        if lat.is_empty() {
            continue;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{:<10} {:>7} {:>12.1} {:>12.1} {:>12.1}",
            status.name(),
            lat.len(),
            percentile(&lat, 0.50),
            percentile(&lat, 0.90),
            percentile(&lat, 0.99),
        );
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Resolves `--topology`: a builtin name or `@file.json`.
fn resolve_topology(spec: &str) -> Topology {
    if let Some(path) = spec.strip_prefix('@') {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        return Topology::from_json_str(&text)
            .unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    }
    builtin_topology(spec).unwrap_or_else(|| die(&format!("unknown builtin topology `{spec}`")))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} must be a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("teccl-cli: {msg}");
    std::process::exit(2);
}
