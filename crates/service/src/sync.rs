//! Poison-recovering lock helpers.
//!
//! A worker that panics while holding the state mutex poisons it; with plain
//! `lock().unwrap()` every later request would then panic too, turning one
//! bad solve into a dead service. The service's invariants are all
//! re-derivable (queue/cache/map bookkeeping — no multi-step critical
//! sections that leave half-applied state), so the right response to poison
//! is to clear it and keep serving.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, clearing poison left by a panicked holder.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Waits on `cv`, recovering the guard even if the mutex was poisoned while
/// we slept (the poison flag itself is cleared on the next [`lock_recover`]).
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recover_clears_poison() {
        let m = Mutex::new(7);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(r.is_err());
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        assert!(!m.is_poisoned(), "poison cleared for future lockers");
        assert!(m.lock().is_ok());
    }
}
