//! Poison-recovering, order-checked lock helpers.
//!
//! A worker that panics while holding the state mutex poisons it; with plain
//! `lock().unwrap()` every later request would then panic too, turning one
//! bad solve into a dead service. The service's invariants are all
//! re-derivable (queue/cache/map bookkeeping — no multi-step critical
//! sections that leave half-applied state), so the right response to poison
//! is to clear it and keep serving.
//!
//! The second hazard is lock-order inversion: the service holds two mutexes
//! ([`LockRank::Workers`] over the worker-handle table, [`LockRank::State`]
//! over the queue/cache/map state), and `ensure_workers` acquires the state
//! lock while already holding the workers lock. If any other path ever
//! acquired them in the opposite order the classic two-lock deadlock would be
//! one unlucky interleaving away. The acquisition order is therefore
//! *declared* — a lock may only be acquired while every lock already held by
//! this thread has a strictly smaller [`LockRank`] — and enforced twice:
//!
//! * statically, by `teccl-lint`'s `lock-order` rule, which extracts the
//!   acquisition graph from the source (including one level of calls) and
//!   fails CI on any cycle or rank inversion;
//! * dynamically in debug builds, by a thread-local stack of held ranks that
//!   panics the moment an acquisition violates the declared order, whether or
//!   not the opposing thread is running. Release builds compile the
//!   bookkeeping out.

use std::sync::{Condvar, Mutex, MutexGuard};

/// The declared lock-acquisition order for the whole service, smallest first.
/// A thread may only acquire a lock whose rank is strictly greater than every
/// rank it already holds. Extend by appending variants in acquisition order;
/// `teccl-lint` parses this declaration to learn the order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockRank {
    /// [`crate::ScheduleService`]'s worker-handle table (`workers`).
    Workers = 0,
    /// The orchestrator state mutex (`Inner::state`): queue, cache, in-flight
    /// map, basis book, stats.
    State = 1,
    /// The intra-solve core-budget ledger (`Inner::cores`): how many solver
    /// threads each active worker was granted. Highest rank so a worker may
    /// settle its grant while the state lock is held.
    Cores = 2,
}

impl LockRank {
    /// Human-readable name for panic messages (only the debug-build rank
    /// checker panics with it, so release builds compile it out).
    #[cfg(debug_assertions)]
    fn name(self) -> &'static str {
        match self {
            LockRank::Workers => "Workers",
            LockRank::State => "State",
            LockRank::Cores => "Cores",
        }
    }
}

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks of the locks this thread currently holds, in acquisition order.
    static HELD: std::cell::RefCell<Vec<LockRank>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Debug-only: records an acquisition, panicking on a rank inversion.
#[cfg(debug_assertions)]
fn rank_acquire(rank: LockRank) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(&worst) = held.iter().max() {
            assert!(
                worst < rank,
                "lock-order violation: acquiring {} while already holding {} \
                 (declared order: {:?})",
                rank.name(),
                worst.name(),
                *held,
            );
        }
        held.push(rank);
    });
}

/// Debug-only: records a release (guards may drop in any order).
#[cfg(debug_assertions)]
fn rank_release(rank: LockRank) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&r| r == rank) {
            held.remove(pos);
        }
    });
}

/// A [`MutexGuard`] tagged with its [`LockRank`]; releases the rank from the
/// thread's held-lock stack when dropped.
#[derive(Debug)]
pub struct RankedGuard<'a, T> {
    /// `None` only transiently, while [`wait_recover`] has handed the inner
    /// guard to the condvar; such a husk never escapes and its `Drop` is
    /// rank-inert.
    guard: Option<MutexGuard<'a, T>>,
    rank: LockRank,
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard surrendered to wait")
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard surrendered to wait")
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            #[cfg(debug_assertions)]
            rank_release(self.rank);
            #[cfg(not(debug_assertions))]
            let _ = self.rank;
        }
    }
}

/// Locks `m` at `rank`, clearing poison left by a panicked holder. Panics in
/// debug builds if this thread already holds a lock of equal or greater rank
/// (the declared-order check).
pub fn lock_recover<T>(m: &Mutex<T>, rank: LockRank) -> RankedGuard<'_, T> {
    #[cfg(debug_assertions)]
    rank_acquire(rank);
    let guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    };
    RankedGuard {
        guard: Some(guard),
        rank,
    }
}

/// Waits on `cv`, recovering the guard even if the mutex was poisoned while
/// we slept (the poison flag itself is cleared on the next [`lock_recover`]).
/// The guard's rank stays on the held stack across the wait: the blocked
/// thread still *logically* owns that slot in the order, and service waiters
/// never hold a second lock while waiting.
pub fn wait_recover<'a, T>(cv: &Condvar, mut guard: RankedGuard<'a, T>) -> RankedGuard<'a, T> {
    let inner = guard.guard.take().expect("guard surrendered to wait");
    // `guard` is now a husk: its Drop sees None and leaves the rank held.
    let rank = guard.rank;
    let reacquired = match cv.wait(inner) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    RankedGuard {
        guard: Some(reacquired),
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recover_clears_poison() {
        let m = Mutex::new(7);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(r.is_err());
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m, LockRank::State), 7);
        assert!(!m.is_poisoned(), "poison cleared for future lockers");
        assert!(m.lock().is_ok());
    }

    #[test]
    fn ordered_acquisition_passes() {
        let workers = Mutex::new(0);
        let state = Mutex::new(0);
        let w = lock_recover(&workers, LockRank::Workers);
        let s = lock_recover(&state, LockRank::State);
        drop(s);
        drop(w);
        // And again after release: the stack unwound cleanly.
        let s = lock_recover(&state, LockRank::State);
        drop(s);
        let w = lock_recover(&workers, LockRank::Workers);
        drop(w);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn reversed_acquisition_trips_debug_assertion() {
        let workers = Mutex::new(0);
        let state = Mutex::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = lock_recover(&state, LockRank::State);
            // Deliberate inversion: Workers while holding State.
            let _w = lock_recover(&workers, LockRank::Workers);
        }));
        let msg = match r {
            Ok(_) => panic!("reversed acquisition must panic in debug builds"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
        };
        assert!(
            msg.contains("lock-order violation"),
            "unexpected panic message: {msg}"
        );
        // The unwound thread's stack is clean: ordered locking works again.
        let _w = lock_recover(&workers, LockRank::Workers);
        let _s = lock_recover(&state, LockRank::State);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reacquisition_trips_debug_assertion() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _x = lock_recover(&a, LockRank::State);
            let _y = lock_recover(&b, LockRank::State);
        }));
        assert!(r.is_err(), "two locks may not share a rank on one thread");
    }

    #[test]
    fn wait_recover_keeps_rank_across_wait() {
        use std::sync::{Arc, Condvar};
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*waker;
            *lock_recover(m, LockRank::State) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = lock_recover(m, LockRank::State);
        while !*g {
            g = wait_recover(cv, g);
        }
        drop(g);
        t.join().unwrap();
        // After the wait + drop the rank stack is empty again.
        let _w = lock_recover(m, LockRank::Workers);
    }
}
