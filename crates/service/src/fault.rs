//! Deterministic fault injection for the service.
//!
//! A [`FaultPlan`] is a small set of countdown counters, one per fault site.
//! Each counter arms its fault for the next N occurrences and then goes
//! inert, so a test (or a chaos run of the daemon) can say exactly "the
//! first solve panics, the next two are delayed 10 ms" and assert what the
//! service does about it.
//!
//! Plans are written as a comma-separated spec, e.g.
//!
//! ```text
//! panic-in-solve=1,slow-solve=10:2,corrupt-disk-read=1,drop-connection=3
//! ```
//!
//! * `panic-in-solve=N` — the next N solves panic on the worker thread.
//! * `slow-solve=MS:N` — the next N solves sleep MS milliseconds first.
//! * `corrupt-disk-read=N` — the next N disk-store reads behave as if the
//!   file were corrupt (it is quarantined like a real corruption).
//! * `drop-connection=N` — the server drops the TCP connection instead of
//!   writing the next N responses.
//!
//! The plan comes from [`crate::service::ServiceConfig::fault_plan`] when
//! set, else from the `TECCL_FAULT_PLAN` environment variable, else it is
//! inert. Production builds pay one relaxed atomic load per site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The environment variable consulted when no plan is configured.
pub const FAULT_PLAN_ENV: &str = "TECCL_FAULT_PLAN";

/// Armed fault counters; see the module docs for the spec grammar.
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_in_solve: AtomicU64,
    slow_solve: AtomicU64,
    slow_solve_ms: u64,
    corrupt_disk_read: AtomicU64,
    drop_connection: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parses a spec string (see the module docs). The empty string is the
    /// inert plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not name=value"))?;
            let count = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| format!("bad count in fault clause `{clause}`"))
            };
            match name.trim() {
                "panic-in-solve" => plan.panic_in_solve = AtomicU64::new(count(value)?),
                "slow-solve" => {
                    let (ms, n) = value
                        .split_once(':')
                        .ok_or_else(|| format!("slow-solve wants MS:N, got `{value}`"))?;
                    plan.slow_solve_ms = count(ms)?;
                    plan.slow_solve = AtomicU64::new(count(n)?);
                }
                "corrupt-disk-read" => plan.corrupt_disk_read = AtomicU64::new(count(value)?),
                "drop-connection" => plan.drop_connection = AtomicU64::new(count(value)?),
                other => return Err(format!("unknown fault site `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The plan named by `TECCL_FAULT_PLAN`, or the inert plan if the
    /// variable is unset. A malformed spec is reported on stderr and treated
    /// as inert rather than silently arming the wrong fault.
    pub fn from_env() -> FaultPlan {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) => FaultPlan::parse(&spec).unwrap_or_else(|e| {
                eprintln!("teccl-service: ignoring {FAULT_PLAN_ENV}: {e}");
                FaultPlan::none()
            }),
            Err(_) => FaultPlan::none(),
        }
    }

    /// Decrements a counter if it is still armed; true means "fire now".
    fn take(counter: &AtomicU64) -> bool {
        counter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Should the current solve panic?
    pub fn should_panic_in_solve(&self) -> bool {
        Self::take(&self.panic_in_solve)
    }

    /// How long the current solve should stall first, if armed.
    pub fn slow_solve_delay(&self) -> Option<Duration> {
        Self::take(&self.slow_solve).then(|| Duration::from_millis(self.slow_solve_ms))
    }

    /// Should the current disk-store read behave as corrupt?
    pub fn should_corrupt_disk_read(&self) -> bool {
        Self::take(&self.corrupt_disk_read)
    }

    /// Should the server drop the connection instead of responding?
    pub fn should_drop_connection(&self) -> bool {
        Self::take(&self.drop_connection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(!p.should_panic_in_solve());
        assert!(p.slow_solve_delay().is_none());
        assert!(!p.should_corrupt_disk_read());
        assert!(!p.should_drop_connection());
        assert!(FaultPlan::parse("").is_ok());
    }

    #[test]
    fn counters_count_down_and_exhaust() {
        let p = FaultPlan::parse("panic-in-solve=2,slow-solve=7:1,corrupt-disk-read=1").unwrap();
        assert!(p.should_panic_in_solve());
        assert!(p.should_panic_in_solve());
        assert!(!p.should_panic_in_solve(), "exhausted after two");
        assert_eq!(p.slow_solve_delay(), Some(Duration::from_millis(7)));
        assert!(p.slow_solve_delay().is_none());
        assert!(p.should_corrupt_disk_read());
        assert!(!p.should_corrupt_disk_read());
        assert!(!p.should_drop_connection(), "unarmed site stays inert");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("panic-in-solve").is_err());
        assert!(FaultPlan::parse("panic-in-solve=x").is_err());
        assert!(FaultPlan::parse("slow-solve=10").is_err());
        assert!(FaultPlan::parse("teleport=1").is_err());
    }
}
