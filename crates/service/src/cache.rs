//! The content-addressed schedule cache: an in-memory LRU over
//! [`RequestKey`] hashes plus an optional on-disk store of the same entries.
//!
//! Disk entries are ordinary `teccl-util` JSON documents (one file per key,
//! named by the key hash — content addressing makes invalidation trivial:
//! a changed request simply hashes elsewhere). Every load is re-validated
//! with [`teccl_schedule::validate`] against the demand reconstructed from
//! the request before it is served; a corrupt or stale file is ignored
//! rather than trusted.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use teccl_lp::{SimplexBasis, SolveStats};
use teccl_schedule::ScheduleOutput;
use teccl_topology::Topology;
use teccl_util::json::Value;

use crate::fault::FaultPlan;
use crate::key::{RequestKey, SolveRequest};

/// How good a schedule is relative to the exact optimum — the rung of the
/// degradation ladder it was served from. Ordered best-first, so
/// `a < b` means "a is a better answer than b".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Quality {
    /// The certified optimum of the requested formulation.
    Exact,
    /// The best feasible point a deadline-stopped solve had in hand,
    /// validated and simulated like any other schedule.
    Incumbent,
    /// A validated cache entry for a *neighbouring* size bucket of the same
    /// request family (same topology / collective / chunks / config — the
    /// demand is identical, only the chunk size differs).
    Stale,
    /// An instant textbook schedule (ring all-gather or shortest-path
    /// unicast) built without touching the solver at all.
    Baseline,
}

impl Quality {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Quality::Exact => "exact",
            Quality::Incumbent => "incumbent",
            Quality::Stale => "stale",
            Quality::Baseline => "baseline",
        }
    }

    /// Parses the wire name.
    pub fn from_name(s: &str) -> Option<Quality> {
        Some(match s {
            "exact" => Quality::Exact,
            "incumbent" => Quality::Incumbent,
            "stale" => Quality::Stale,
            "baseline" => Quality::Baseline,
            _ => return None,
        })
    }
}

/// A cached, validated solve result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The canonical key this entry is stored under.
    pub key: RequestKey,
    /// The schedule and its metrics (the serializable unit).
    pub output: ScheduleOutput,
    /// The topology the schedule runs on — identical to the request topology
    /// unless the hyper-edge switch model transformed it.
    pub topology_used: Topology,
    /// Chunk size the schedule was solved for (the bucket representative's,
    /// which may differ slightly from a coalesced request's own).
    pub chunk_bytes: f64,
    /// Solver statistics of the original solve. A cache hit returns these
    /// untouched — the service-level counters prove no new simplex work
    /// happened.
    pub stats: SolveStats,
    /// How this entry ranks against the exact optimum. Anything below
    /// [`Quality::Exact`] lives in memory only and is upgraded in the
    /// background; the disk store holds exact entries exclusively.
    pub quality: Quality,
}

impl CacheEntry {
    /// Serializes the entry (plus an optional warm-start basis) to JSON.
    pub fn to_json_value(&self, basis: Option<&SimplexBasis>) -> Value {
        // 64-bit hashes do not fit JSON's f64 numbers exactly — hex strings.
        let mut pairs = vec![
            (
                "key_family",
                Value::from(format!("{:016x}", self.key.family)),
            ),
            ("key_bucket", Value::from(self.key.size_bucket)),
            ("key_hash", Value::from(format!("{:016x}", self.key.hash))),
            ("chunk_bytes", Value::from(self.chunk_bytes)),
            ("topology_used", self.topology_used.to_json_value()),
            ("output", self.output.to_json_value()),
            ("stats", stats_to_json(&self.stats)),
            ("quality", Value::from(self.quality.name())),
        ];
        if let Some(b) = basis {
            pairs.push(("basis", b.to_json_value()));
        }
        Value::obj(pairs)
    }

    /// Deserializes an entry and its optional basis. Fails on malformed
    /// documents; semantic validation (does the schedule satisfy the
    /// request?) is the caller's job.
    pub fn from_json_value(
        v: &Value,
    ) -> Result<(CacheEntry, Option<SimplexBasis>), teccl_util::json::JsonError> {
        let bad = |msg: &str| teccl_util::json::JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        let hex = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or(bad("missing/bad key field"))
        };
        let key = RequestKey {
            family: hex("key_family")?,
            size_bucket: v
                .get("key_bucket")
                .and_then(Value::as_f64)
                .ok_or(bad("missing key_bucket"))? as i64,
            hash: hex("key_hash")?,
        };
        let entry = CacheEntry {
            key,
            output: ScheduleOutput::from_json_value(v.get("output").ok_or(bad("missing output"))?)?,
            topology_used: Topology::from_json_value(
                v.get("topology_used").ok_or(bad("missing topology_used"))?,
            )?,
            chunk_bytes: v
                .get("chunk_bytes")
                .and_then(Value::as_f64)
                .ok_or(bad("missing chunk_bytes"))?,
            stats: stats_from_json(v.get("stats")),
            // Files written before quality tags existed are all exact solves.
            quality: v
                .get("quality")
                .and_then(Value::as_str)
                .and_then(Quality::from_name)
                .unwrap_or(Quality::Exact),
        };
        let basis = match v.get("basis") {
            Some(b) => Some(SimplexBasis::from_json_value(b)?),
            None => None,
        };
        Ok((entry, basis))
    }
}

/// Serializes the solver counters a served entry reports.
fn stats_to_json(s: &SolveStats) -> Value {
    Value::obj(vec![
        ("solve_time_s", Value::from(s.solve_time.as_secs_f64())),
        ("simplex_iterations", Value::from(s.simplex_iterations)),
        ("dual_iterations", Value::from(s.dual_iterations)),
        ("nodes_explored", Value::from(s.nodes_explored)),
        ("factorizations", Value::from(s.factorizations)),
        ("warm_starts", Value::from(s.warm_starts)),
        ("cold_starts", Value::from(s.cold_starts)),
        ("iteration_limit_hit", Value::from(s.iteration_limit_hit)),
    ])
}

/// Reads back the counters written by [`stats_to_json`] (missing fields are
/// zero — old cache files stay loadable as counters are added).
fn stats_from_json(v: Option<&Value>) -> SolveStats {
    let mut s = SolveStats::default();
    let Some(v) = v else { return s };
    let num = |k: &str| v.get(k).and_then(Value::as_usize).unwrap_or(0);
    s.solve_time = std::time::Duration::from_secs_f64(
        v.get("solve_time_s").and_then(Value::as_f64).unwrap_or(0.0),
    );
    s.simplex_iterations = num("simplex_iterations");
    s.dual_iterations = num("dual_iterations");
    s.nodes_explored = num("nodes_explored");
    s.factorizations = num("factorizations");
    s.warm_starts = num("warm_starts");
    s.cold_starts = num("cold_starts");
    s.iteration_limit_hit = v
        .get("iteration_limit_hit")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    s
}

/// A bounded in-memory LRU cache keyed by request hash.
#[derive(Debug)]
pub struct ScheduleCache {
    capacity: usize,
    map: HashMap<u64, (Arc<CacheEntry>, u64)>,
    tick: u64,
}

impl ScheduleCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
        }
    }

    /// Looks up an entry, marking it most-recently-used.
    pub fn get(&mut self, hash: u64) -> Option<Arc<CacheEntry>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&hash).map(|(e, t)| {
            *t = tick;
            Arc::clone(e)
        })
    }

    /// Inserts an entry, evicting the least-recently-used one on overflow.
    pub fn insert(&mut self, entry: Arc<CacheEntry>) {
        self.tick += 1;
        self.map.insert(entry.key.hash, (entry, self.tick));
        if self.map.len() > self.capacity {
            if let Some(&lru) = self.map.iter().min_by_key(|(_, (_, t))| *t).map(|(h, _)| h) {
                self.map.remove(&lru);
            }
        }
    }

    /// Finds the best entry of a request `family` other than `exclude_hash`
    /// — the "stale" rung of the degradation ladder. Same family means same
    /// topology, collective, chunk count and config, so the schedule
    /// satisfies the identical demand; only its chunk size is off. Prefers
    /// better quality, then recency; never returns a baseline entry (the
    /// caller can build a fresh baseline for free).
    pub fn find_family(&self, family: u64, exclude_hash: u64) -> Option<Arc<CacheEntry>> {
        self.map
            .values()
            .filter(|(e, _)| {
                e.key.family == family
                    && e.key.hash != exclude_hash
                    && e.quality < Quality::Baseline
            })
            .max_by_key(|(e, tick)| (std::cmp::Reverse(e.quality), *tick))
            .map(|(e, _)| Arc::clone(e))
    }

    /// Removes one entry; returns whether it existed.
    pub fn evict(&mut self, hash: u64) -> bool {
        self.map.remove(&hash).is_some()
    }

    /// Clears the cache, returning how many entries were dropped.
    pub fn evict_all(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The on-disk half of the cache: one JSON file per key. A file that fails
/// to parse or validate is **quarantined** — renamed to `<file>.corrupt` and
/// counted — so one bad sector (or a crash mid-write by an older build)
/// costs one re-solve, not a poisoned key that fails on every restart.
#[derive(Debug, Clone)]
pub struct DiskStore {
    dir: PathBuf,
    quarantined: Arc<AtomicU64>,
    fault: Arc<FaultPlan>,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            quarantined: Arc::new(AtomicU64::new(0)),
            fault: Arc::new(FaultPlan::none()),
        })
    }

    /// Attaches a fault-injection plan (`corrupt-disk-read`).
    pub fn with_fault_plan(mut self, fault: Arc<FaultPlan>) -> DiskStore {
        self.fault = fault;
        self
    }

    /// How many corrupt files this store has quarantined since it was opened.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Moves a bad file out of the addressable namespace and counts it.
    /// A rename failure (e.g. the file vanished) is ignored: either way the
    /// key no longer resolves to the bad content.
    fn quarantine(&self, path: &Path) {
        let mut target = path.as_os_str().to_owned();
        target.push(".corrupt");
        let _ = std::fs::rename(path, &target);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// The file a key is stored at.
    pub fn path_for(&self, key: RequestKey) -> PathBuf {
        self.dir.join(format!("sched-{:016x}.json", key.hash))
    }

    /// Persists an entry (write-to-temp + rename, so readers never observe a
    /// torn file). Degraded entries are silently skipped: disk is the
    /// long-lived tier, and a deadline-shaped answer must not outlive the
    /// deadline that shaped it.
    pub fn save(&self, entry: &CacheEntry, basis: Option<&SimplexBasis>) -> std::io::Result<()> {
        if entry.quality != Quality::Exact {
            return Ok(());
        }
        let text = entry.to_json_value(basis).to_json_pretty();
        let tmp = self.dir.join(format!("sched-{:016x}.tmp", entry.key.hash));
        std::fs::write(&tmp, format!("{text}\n"))?;
        std::fs::rename(&tmp, self.path_for(entry.key))
    }

    /// Loads and *re-validates* an entry for a request: the stored key must
    /// match, the stored schedule must validate against the demand implied by
    /// the request, and the metrics must belong to the stored schedule.
    /// Anything less quarantines the file and returns `None` — on-disk state
    /// is never trusted blindly, and a file that failed once would fail on
    /// every future probe too.
    pub fn load(
        &self,
        key: RequestKey,
        request: &SolveRequest,
    ) -> Option<(CacheEntry, Option<SimplexBasis>)> {
        let path = self.path_for(key);
        // Missing is the normal cache-miss case, not a corruption.
        let text = std::fs::read_to_string(&path).ok()?;
        let text = if self.fault.should_corrupt_disk_read() {
            "{injected corrupt-disk-read".to_string()
        } else {
            text
        };
        let parsed = Value::parse(&text)
            .ok()
            .and_then(|v| CacheEntry::from_json_value(&v).ok());
        let Some((entry, basis)) = parsed else {
            self.quarantine(&path);
            return None;
        };
        if entry.key != key {
            // The content does not belong under this name — same treatment.
            self.quarantine(&path);
            return None;
        }
        let demand = request.demand();
        let report =
            teccl_schedule::validate(&entry.topology_used, &demand, &entry.output.schedule, false);
        if !report.is_valid() {
            self.quarantine(&path);
            return None;
        }
        Some((entry, basis))
    }

    /// Deletes every stored schedule, returning how many files were removed.
    pub fn evict_all(&self) -> usize {
        let mut n = 0;
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for f in dir.flatten() {
                let name = f.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("sched-") && name.ends_with(".json") {
                    n += usize::from(std::fs::remove_file(f.path()).is_ok());
                }
            }
        }
        n
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_collective::CollectiveKind;
    use teccl_schedule::{ChunkId, CollectiveMetrics, Schedule};
    use teccl_topology::{line_topology, NodeId};

    fn entry_for(request: &SolveRequest, key_tweak: u64) -> CacheEntry {
        // A real 2-hop broadcast relay schedule so validation passes.
        let mut s = Schedule::new("test", request.chunk_bytes());
        s.epoch_duration = 1e-3;
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 1);
        let mut key = request.key();
        key.hash ^= key_tweak;
        CacheEntry {
            key,
            output: ScheduleOutput {
                schedule: s,
                metrics: CollectiveMetrics {
                    solver: "test".into(),
                    epoch_duration: 1e-3,
                    transfer_time: 2e-3,
                    solver_time: 0.5,
                    output_buffer_bytes: request.output_buffer,
                    bytes_on_wire: 2.0 * request.chunk_bytes(),
                },
            },
            topology_used: request.topology.clone(),
            chunk_bytes: request.chunk_bytes(),
            stats: SolveStats {
                simplex_iterations: 42,
                warm_starts: 1,
                ..Default::default()
            },
            quality: Quality::Exact,
        }
    }

    fn broadcast_request() -> SolveRequest {
        SolveRequest::new(
            line_topology(3, 1e9, 0.0),
            CollectiveKind::Broadcast,
            1,
            1e6,
        )
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ScheduleCache::new(2);
        let req = broadcast_request();
        let (a, b, d) = (
            Arc::new(entry_for(&req, 1)),
            Arc::new(entry_for(&req, 2)),
            Arc::new(entry_for(&req, 3)),
        );
        c.insert(Arc::clone(&a));
        c.insert(Arc::clone(&b));
        assert!(c.get(a.key.hash).is_some()); // a is now more recent than b
        c.insert(Arc::clone(&d)); // evicts b
        assert_eq!(c.len(), 2);
        assert!(c.get(a.key.hash).is_some());
        assert!(c.get(b.key.hash).is_none());
        assert!(c.get(d.key.hash).is_some());
        assert_eq!(c.evict_all(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn disk_roundtrip_validates_on_load() {
        let dir = std::env::temp_dir().join(format!("teccl-store-test-{}", std::process::id()));
        let store = DiskStore::open(&dir).unwrap();
        store.evict_all();
        let req = broadcast_request();
        let entry = entry_for(&req, 0);
        let basis = SimplexBasis {
            basic: vec![1, 2],
            status: vec![teccl_lp::VarStatus::Basic; 3],
        };
        store.save(&entry, Some(&basis)).unwrap();
        let (back, back_basis) = store.load(entry.key, &req).expect("valid entry loads");
        assert_eq!(back.output.schedule.sends, entry.output.schedule.sends);
        assert_eq!(back.output.metrics, entry.output.metrics);
        assert_eq!(back.stats.simplex_iterations, 42);
        assert_eq!(back.quality, Quality::Exact);
        assert_eq!(back_basis.as_ref(), Some(&basis));
        // A missing file is a plain miss, not a corruption.
        let mut other = entry.key;
        other.hash ^= 0xdead;
        assert!(store.load(other, &req).is_none());
        assert_eq!(store.quarantined(), 0);
        // Corrupt file → quarantined (renamed aside and counted), not trusted.
        std::fs::write(store.path_for(entry.key), "{not json").unwrap();
        assert!(store.load(entry.key, &req).is_none());
        assert_eq!(store.quarantined(), 1);
        assert!(!store.path_for(entry.key).exists(), "bad file moved aside");
        // A schedule that does not satisfy the demand is quarantined even if
        // the file parses: drop the relay's second hop.
        let mut broken = entry.clone();
        broken.output.schedule.sends.truncate(1);
        store.save(&broken, None).unwrap();
        assert!(store.load(entry.key, &req).is_none());
        assert_eq!(store.quarantined(), 2);
        // The key is re-solvable: a fresh save works and loads again.
        store.save(&entry, None).unwrap();
        assert!(store.load(entry.key, &req).is_some());
        assert!(store.evict_all() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_entries_never_reach_disk() {
        let dir = std::env::temp_dir().join(format!("teccl-store-degr-{}", std::process::id()));
        let store = DiskStore::open(&dir).unwrap();
        store.evict_all();
        let req = broadcast_request();
        let mut entry = entry_for(&req, 0);
        entry.quality = Quality::Incumbent;
        store.save(&entry, None).unwrap();
        assert!(!store.path_for(entry.key).exists());
        assert!(store.load(entry.key, &req).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn find_family_prefers_quality_then_recency() {
        let req = broadcast_request();
        let mut cache = ScheduleCache::new(8);
        let mut exact = entry_for(&req, 1);
        exact.key.family = 77;
        let mut incumbent = entry_for(&req, 2);
        incumbent.key.family = 77;
        incumbent.quality = Quality::Incumbent;
        let mut baseline = entry_for(&req, 3);
        baseline.key.family = 77;
        baseline.quality = Quality::Baseline;
        cache.insert(Arc::new(exact.clone()));
        cache.insert(Arc::new(incumbent));
        cache.insert(Arc::new(baseline.clone()));
        let found = cache.find_family(77, 0).expect("family member found");
        assert_eq!(
            found.key.hash, exact.key.hash,
            "exact beats fresher incumbent"
        );
        // Excluding the requesting key itself, and never serving a baseline.
        let found = cache.find_family(77, exact.key.hash).unwrap();
        assert_eq!(found.quality, Quality::Incumbent);
        assert!(
            cache.find_family(78, 0).is_none(),
            "other families invisible"
        );
        cache.evict(exact.key.hash);
        cache.evict(found.key.hash);
        assert!(
            cache.find_family(77, 0).is_none(),
            "a lone baseline entry is not worth serving stale"
        );
    }
}
