//! The concurrent solve orchestrator: a `std::thread` worker pool behind a
//! request queue, with single-flight coalescing and cross-request warm
//! starting.
//!
//! * **Single-flight**: identical concurrent cache misses collapse onto one
//!   solve; every waiter receives the same `Arc`'d entry when it lands.
//! * **Warm starts**: a completed solve publishes its final LP basis under
//!   its `(family, size bucket)`; a later miss in the same family first looks
//!   for a basis in its own bucket, then in neighbouring buckets, and feeds
//!   it to [`teccl_core::TeCcl::solve_from`]. A basis whose shape no longer
//!   matches (the neighbour bucket changed the epoch count, say) silently
//!   degrades to a cold solve inside the LP layer.
//! * **Validation**: every solved schedule is validated and simulated before
//!   it is cached or served; the service never hands out an unchecked
//!   schedule, whether it came from a solver, memory, or disk.
//! * **Deadlines & degradation**: a request with a deadline runs its solve
//!   under a cooperative [`SolveBudget`]; when the deadline expires the
//!   service serves the best answer on a fixed ladder — the solver's
//!   incumbent, a stale same-family cache entry, or an instant baseline —
//!   tagged with a [`Quality`], while the exact solve continues in the
//!   background to upgrade the cache entry.
//! * **Fault isolation**: solves run under `catch_unwind`, a panicked solve
//!   fans a typed [`ServiceError::WorkerPanicked`] to its waiters (never a
//!   hang), dead workers are respawned, poisoned locks are recovered, and
//!   corrupt disk entries are quarantined. All of it is deterministically
//!   testable through [`crate::fault::FaultPlan`].

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use teccl_baselines::{ring_all_gather, shortest_path_schedule};
use teccl_collective::CollectiveKind;
use teccl_core::{TeCcl, TeCclError};
use teccl_lp::{SimplexBasis, SolveStats};
use teccl_schedule::{simulate, validate, CollectiveMetrics, ScheduleOutput};
use teccl_topology::NodeId;
use teccl_util::json::Value;
use teccl_util::SolveBudget;

use crate::cache::{CacheEntry, DiskStore, Quality, ScheduleCache};
use crate::fault::FaultPlan;
use crate::key::{RequestKey, RequestMethod, SolveRequest};
use crate::sync::{lock_recover, wait_recover, LockRank, RankedGuard};

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the in-memory cache; no solver work at all.
    Hit,
    /// Served from the on-disk store (validated on load), now in memory.
    DiskHit,
    /// Joined an identical solve already in flight (single-flight).
    Coalesced,
    /// This request triggered the solve.
    Miss,
}

impl CacheStatus {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::DiskHit => "disk_hit",
            CacheStatus::Coalesced => "coalesced",
            CacheStatus::Miss => "miss",
        }
    }
}

/// A served schedule: the shared cache entry plus how it was obtained.
#[derive(Debug, Clone)]
pub struct ServedSchedule {
    /// The validated entry (shared with the cache and all coalesced waiters).
    pub entry: Arc<CacheEntry>,
    /// How this particular request was satisfied.
    pub cache: CacheStatus,
    /// How the answer ranks against the exact optimum. Usually the entry's
    /// own quality; [`Quality::Stale`] when a deadline was met by borrowing
    /// a neighbouring size bucket's entry.
    pub quality: Quality,
}

/// Why a request failed.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The solver failed (infeasible, did not converge, …).
    Solve(String),
    /// The solver returned, but its schedule failed validation or simulation
    /// — a bug worth surfacing loudly rather than caching.
    InvalidSchedule(String),
    /// The worker thread panicked while solving this request. The panic was
    /// contained: the service keeps serving, and every waiter coalesced onto
    /// this solve receives exactly this error.
    WorkerPanicked(String),
    /// The service is shutting down and dropped the request.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Solve(m) => write!(f, "solve failed: {m}"),
            ServiceError::InvalidSchedule(m) => {
                write!(f, "solver produced an invalid schedule: {m}")
            }
            ServiceError::WorkerPanicked(m) => write!(f, "worker panicked during solve: {m}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Monotonic counters describing the service since startup. `solves` and
/// `solve_simplex_iterations` are the acceptance gate for the no-solve hit
/// path: a cache hit must leave both untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests submitted.
    pub requests: u64,
    /// In-memory cache hits.
    pub hits: u64,
    /// On-disk store hits (validated on load).
    pub disk_hits: u64,
    /// Requests coalesced onto an in-flight identical solve.
    pub coalesced: u64,
    /// Requests that triggered a solve.
    pub misses: u64,
    /// Solves completed successfully.
    pub solves: u64,
    /// Solves that failed (solver error or validation failure).
    pub solve_errors: u64,
    /// Solves launched with a published warm-start basis from the family.
    pub hinted_solves: u64,
    /// Total simplex iterations spent by all solves — unchanged by hits
    /// *and* by baseline fallbacks, which never touch the simplex.
    pub solve_simplex_iterations: u64,
    /// Total wall-clock seconds spent inside the solver.
    pub solve_time_s: f64,
    /// Requests served below [`Quality::Exact`] (incumbent/stale/baseline).
    pub degraded: u64,
    /// Background exact re-solves that upgraded a degraded cache entry.
    pub background_upgrades: u64,
    /// Solves that panicked on a worker thread (contained, not fatal).
    pub worker_panics: u64,
    /// Worker threads respawned after dying.
    pub worker_respawns: u64,
    /// Corrupt disk-store files quarantined since startup (gauge from the
    /// store).
    pub disk_quarantined: u64,
    /// Entries currently in the in-memory cache (gauge, not a counter).
    pub cached_entries: u64,
    /// Workers currently inside a solve (gauge).
    pub active_solves: u64,
    /// Solver threads currently granted to active solves against the core
    /// budget (gauge).
    pub cores_in_use: u64,
    /// The service-wide solver-thread budget the core ledger arbitrates
    /// (gauge; constant for the service's lifetime).
    pub cores_total: u64,
    /// Names of the worker threads currently inside a solve, sorted (gauge).
    pub workers_active: Vec<String>,
}

impl ServiceStats {
    /// Serializes the counters (for the `stats` verb).
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("requests", Value::from(self.requests)),
            ("hits", Value::from(self.hits)),
            ("disk_hits", Value::from(self.disk_hits)),
            ("coalesced", Value::from(self.coalesced)),
            ("misses", Value::from(self.misses)),
            ("solves", Value::from(self.solves)),
            ("solve_errors", Value::from(self.solve_errors)),
            ("hinted_solves", Value::from(self.hinted_solves)),
            (
                "solve_simplex_iterations",
                Value::from(self.solve_simplex_iterations),
            ),
            ("solve_time_s", Value::from(self.solve_time_s)),
            ("degraded", Value::from(self.degraded)),
            ("background_upgrades", Value::from(self.background_upgrades)),
            ("worker_panics", Value::from(self.worker_panics)),
            ("worker_respawns", Value::from(self.worker_respawns)),
            ("disk_quarantined", Value::from(self.disk_quarantined)),
            ("cached_entries", Value::from(self.cached_entries)),
            ("active_solves", Value::from(self.active_solves)),
            ("cores_in_use", Value::from(self.cores_in_use)),
            ("cores_total", Value::from(self.cores_total)),
            (
                "workers_active",
                Value::Arr(
                    self.workers_active
                        .iter()
                        .map(|w| Value::Str(w.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads back the counters written by [`ServiceStats::to_json_value`].
    pub fn from_json_value(v: &Value) -> ServiceStats {
        let num = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        ServiceStats {
            requests: num("requests") as u64,
            hits: num("hits") as u64,
            disk_hits: num("disk_hits") as u64,
            coalesced: num("coalesced") as u64,
            misses: num("misses") as u64,
            solves: num("solves") as u64,
            solve_errors: num("solve_errors") as u64,
            hinted_solves: num("hinted_solves") as u64,
            solve_simplex_iterations: num("solve_simplex_iterations") as u64,
            solve_time_s: num("solve_time_s"),
            degraded: num("degraded") as u64,
            background_upgrades: num("background_upgrades") as u64,
            worker_panics: num("worker_panics") as u64,
            worker_respawns: num("worker_respawns") as u64,
            disk_quarantined: num("disk_quarantined") as u64,
            cached_entries: num("cached_entries") as u64,
            active_solves: num("active_solves") as u64,
            cores_in_use: num("cores_in_use") as u64,
            cores_total: num("cores_total") as u64,
            workers_active: v
                .get("workers_active")
                .and_then(Value::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|w| w.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads solving queued requests.
    pub workers: usize,
    /// In-memory cache capacity (entries).
    pub cache_capacity: usize,
    /// Optional on-disk store directory.
    pub disk_dir: Option<std::path::PathBuf>,
    /// When a deadline forces a degraded answer, keep solving in the
    /// background and upgrade the cache entry to the exact result.
    pub background_upgrade: bool,
    /// Fault-injection spec (see [`crate::fault`]). `None` consults the
    /// `TECCL_FAULT_PLAN` environment variable; `Some("")` is explicitly
    /// inert regardless of the environment.
    pub fault_plan: Option<String>,
    /// Solver threads the whole service may hand out to concurrently active
    /// solves (the intra-solve `threads` knob is clamped to what this budget
    /// has left). `None` uses the machine's available parallelism. A solve is
    /// never starved below one thread, so the budget bounds *extra*
    /// parallelism, not admission.
    pub core_budget: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cache_capacity: 256,
            disk_dir: None,
            background_upgrade: true,
            fault_plan: None,
            core_budget: None,
        }
    }
}

type Reply = Result<(Arc<CacheEntry>, CacheStatus, Quality), ServiceError>;

/// A pending response. Blocks on [`Ticket::wait`]; dropping it abandons the
/// request (the solve still completes and lands in the cache).
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the request is served or fails.
    pub fn wait(self) -> Result<ServedSchedule, ServiceError> {
        match self.rx.recv() {
            Ok(Ok((entry, cache, quality))) => Ok(ServedSchedule {
                entry,
                cache,
                quality,
            }),
            Ok(Err(e)) => Err(e),
            // The service dropped the sender without replying: shutdown.
            Err(_) => Err(ServiceError::ShuttingDown),
        }
    }
}

/// One queued unit of work.
struct Job {
    request: SolveRequest,
    key: RequestKey,
    /// When the request entered the queue — the deadline clock starts here,
    /// so queue wait counts against the budget.
    submitted: Instant,
    /// A background exact re-solve of a degraded entry (no waiters when
    /// enqueued; never re-degrades).
    upgrade: bool,
}

/// All mutable service state behind one mutex. Held only for queue/cache/map
/// bookkeeping — never across a solve.
struct State {
    queue: VecDeque<Job>,
    /// key hash → waiters for the in-flight solve of that key, each with the
    /// cache status its reply should report (`Miss` for the request that
    /// owns the solve, `Coalesced` for the ones that joined it).
    inflight: HashMap<u64, Vec<(Sender<Reply>, CacheStatus)>>,
    cache: ScheduleCache,
    /// `(family, size bucket)` → last published warm-start basis.
    basis_book: HashMap<(u64, i64), SimplexBasis>,
    stats: ServiceStats,
    shutdown: bool,
}

/// The intra-solve core ledger: how many solver threads the in-flight solves
/// have been granted, against a fixed service-wide budget. Guarded at
/// [`LockRank::Cores`] — the highest rank, so a worker can settle its grant
/// regardless of what else it holds.
struct CoreLedger {
    /// Service-wide solver-thread budget (constant after startup).
    total: usize,
    /// Threads currently granted to in-flight solves.
    in_use: usize,
    /// Worker-thread names currently inside a solve.
    active: Vec<String>,
}

struct Inner {
    state: Mutex<State>,
    work: Condvar,
    disk: Option<DiskStore>,
    fault: Arc<FaultPlan>,
    background_upgrade: bool,
    cores: Mutex<CoreLedger>,
}

impl Inner {
    /// Grants the named worker up to `requested` solver threads, clamped to
    /// what the core budget has left. Never blocks and never grants zero — a
    /// solve always proceeds, at worst single-threaded — so the ledger bounds
    /// *extra* parallelism without becoming an admission queue.
    fn acquire_cores(&self, worker: &str, requested: usize) -> usize {
        let mut ledger = lock_recover(&self.cores, LockRank::Cores);
        let spare = ledger.total.saturating_sub(ledger.in_use);
        let grant = requested.max(1).min(spare.max(1));
        ledger.in_use += grant;
        ledger.active.push(worker.to_string());
        grant
    }

    /// Returns a grant to the ledger once the solve is over (success, budget
    /// stop, or panic alike).
    fn release_cores(&self, worker: &str, grant: usize) {
        let mut ledger = lock_recover(&self.cores, LockRank::Cores);
        ledger.in_use = ledger.in_use.saturating_sub(grant);
        if let Some(i) = ledger.active.iter().position(|w| w == worker) {
            ledger.active.swap_remove(i);
        }
    }
}

/// The schedule service: submit [`SolveRequest`]s, receive validated,
/// cache-deduplicated schedules.
pub struct ScheduleService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ScheduleService {
    /// Starts a service (spawning its worker threads).
    pub fn start(config: ServiceConfig) -> std::io::Result<ScheduleService> {
        let fault = Arc::new(match &config.fault_plan {
            Some(spec) => FaultPlan::parse(spec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?,
            None => FaultPlan::from_env(),
        });
        let disk = match &config.disk_dir {
            Some(dir) => Some(DiskStore::open(dir)?.with_fault_plan(Arc::clone(&fault))),
            None => None,
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                cache: ScheduleCache::new(config.cache_capacity),
                basis_book: HashMap::new(),
                stats: ServiceStats::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            disk,
            fault,
            background_upgrade: config.background_upgrade,
            cores: Mutex::new(CoreLedger {
                total: config
                    .core_budget
                    .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
                    .max(1),
                in_use: 0,
                active: Vec::new(),
            }),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| spawn_worker(Arc::clone(&inner), format!("teccl-worker-{i}")))
            .collect();
        Ok(ScheduleService {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The fault-injection plan this service runs under (inert by default).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.inner.fault
    }

    /// Respawns any worker thread that has died (a panic that escaped the
    /// solve guard, e.g. in the publish path). Called on every submit so a
    /// dead worker costs at most one queued request's latency.
    fn ensure_workers(&self) {
        let mut workers = lock_recover(&self.workers, LockRank::Workers);
        if workers.iter().all(|w| !w.is_finished()) {
            return;
        }
        for slot in workers.iter_mut() {
            if !slot.is_finished() {
                continue;
            }
            let name = {
                let mut st = lock_recover(&self.inner.state, LockRank::State);
                if st.shutdown {
                    return;
                }
                st.stats.worker_respawns += 1;
                format!("teccl-worker-r{}", st.stats.worker_respawns)
            };
            let fresh = spawn_worker(Arc::clone(&self.inner), name);
            let dead = std::mem::replace(slot, fresh);
            let _ = dead.join();
        }
    }

    /// Submits a request; returns immediately with a [`Ticket`].
    pub fn submit(&self, request: SolveRequest) -> Ticket {
        self.ensure_workers();
        let key = request.key();
        let (tx, rx) = channel();
        let disk = {
            let mut st = lock_recover(&self.inner.state, LockRank::State);
            st.stats.requests += 1;
            if st.shutdown {
                let _ = tx.send(Err(ServiceError::ShuttingDown));
                return Ticket { rx };
            }
            // 1. In-memory hit: reply immediately, no solver, no queue.
            //    A degraded entry only satisfies deadline-bearing callers; a
            //    patient caller re-solves for the exact answer (coalescing
            //    onto the background upgrade if one is in flight).
            if let Some(entry) = st.cache.get(key.hash) {
                if entry.quality == Quality::Exact || request.deadline.is_some() {
                    st.stats.hits += 1;
                    if entry.quality != Quality::Exact {
                        st.stats.degraded += 1;
                    }
                    st.stats.cached_entries = st.cache.len() as u64;
                    let quality = entry.quality;
                    let _ = tx.send(Ok((entry, CacheStatus::Hit, quality)));
                    return Ticket { rx };
                }
            }
            // 2. Single-flight: an identical solve is already running or
            //    queued (checked before the disk probe so joiners never pay
            //    for IO).
            if let Some(waiters) = st.inflight.get_mut(&key.hash) {
                waiters.push((tx, CacheStatus::Coalesced));
                st.stats.coalesced += 1;
                return Ticket { rx };
            }
            // 3. No disk store: this request owns the solve.
            match self.inner.disk.as_ref() {
                Some(d) => d,
                None => return self.enqueue_miss(st, request, key, tx, rx),
            }
        };
        // 4. Disk probe *outside* the lock — the state mutex is for
        //    queue/cache/map bookkeeping only, and a file read + parse +
        //    validation under it would serialize every hit behind disk IO.
        //    Concurrent identical probes are possible and benign (same
        //    file, same validated content).
        let loaded = disk.load(key, &request);
        let mut st = lock_recover(&self.inner.state, LockRank::State);
        if st.shutdown {
            let _ = tx.send(Err(ServiceError::ShuttingDown));
            return Ticket { rx };
        }
        if let Some((entry, basis)) = loaded {
            // Promote to memory (idempotent if a racing probe got here
            // first) and serve. Disk entries are always exact.
            let entry = Arc::new(entry);
            st.cache.insert(Arc::clone(&entry));
            if let Some(b) = basis {
                st.basis_book.insert((key.family, key.size_bucket), b);
            }
            st.stats.disk_hits += 1;
            st.stats.cached_entries = st.cache.len() as u64;
            let quality = entry.quality;
            let _ = tx.send(Ok((entry, CacheStatus::DiskHit, quality)));
            return Ticket { rx };
        }
        // Nothing on disk. The world may have moved while we probed:
        // re-check memory and in-flight before owning the solve.
        if let Some(entry) = st.cache.get(key.hash) {
            if entry.quality == Quality::Exact || request.deadline.is_some() {
                st.stats.hits += 1;
                if entry.quality != Quality::Exact {
                    st.stats.degraded += 1;
                }
                st.stats.cached_entries = st.cache.len() as u64;
                let quality = entry.quality;
                let _ = tx.send(Ok((entry, CacheStatus::Hit, quality)));
                return Ticket { rx };
            }
        }
        if let Some(waiters) = st.inflight.get_mut(&key.hash) {
            waiters.push((tx, CacheStatus::Coalesced));
            st.stats.coalesced += 1;
            return Ticket { rx };
        }
        self.enqueue_miss(st, request, key, tx, rx)
    }

    /// Registers `tx` as the owner of a fresh solve and queues the job.
    fn enqueue_miss(
        &self,
        mut st: RankedGuard<'_, State>,
        request: SolveRequest,
        key: RequestKey,
        tx: Sender<Reply>,
        rx: Receiver<Reply>,
    ) -> Ticket {
        st.stats.misses += 1;
        st.inflight.insert(key.hash, vec![(tx, CacheStatus::Miss)]);
        st.queue.push_back(Job {
            request,
            key,
            submitted: Instant::now(),
            upgrade: false,
        });
        drop(st);
        self.inner.work.notify_one();
        Ticket { rx }
    }

    /// Submits a request and blocks for the result.
    pub fn request(&self, request: SolveRequest) -> Result<ServedSchedule, ServiceError> {
        self.submit(request).wait()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = {
            let st = lock_recover(&self.inner.state, LockRank::State);
            let mut s = st.stats.clone();
            s.cached_entries = st.cache.len() as u64;
            s
        };
        if let Some(store) = &self.inner.disk {
            s.disk_quarantined = store.quarantined();
        }
        let ledger = lock_recover(&self.inner.cores, LockRank::Cores);
        s.active_solves = ledger.active.len() as u64;
        s.cores_in_use = ledger.in_use as u64;
        s.cores_total = ledger.total as u64;
        s.workers_active = ledger.active.clone();
        drop(ledger);
        s.workers_active.sort();
        s
    }

    /// Clears the in-memory cache (and the on-disk store, if any); returns
    /// how many in-memory entries were dropped. Published warm-start bases
    /// are kept — they are hints, not results.
    pub fn evict(&self) -> usize {
        let n = lock_recover(&self.inner.state, LockRank::State)
            .cache
            .evict_all();
        if let Some(store) = &self.inner.disk {
            store.evict_all();
        }
        n
    }

    /// Removes a single key from the in-memory cache.
    pub fn evict_key(&self, hash: u64) -> bool {
        lock_recover(&self.inner.state, LockRank::State)
            .cache
            .evict(hash)
    }

    /// Stops accepting work, fails queued-but-unstarted requests, and joins
    /// the workers. Called automatically on drop.
    pub fn shutdown(&self) {
        let orphans: Vec<(Sender<Reply>, CacheStatus)> = {
            let mut st = lock_recover(&self.inner.state, LockRank::State);
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            // Fail whatever is still queued (in-flight solves on workers
            // finish and reply on their own).
            let mut orphans = Vec::new();
            while let Some(job) = st.queue.pop_front() {
                if let Some(ws) = st.inflight.remove(&job.key.hash) {
                    orphans.extend(ws);
                }
            }
            orphans
        };
        for (tx, _) in orphans {
            let _ = tx.send(Err(ServiceError::ShuttingDown));
        }
        self.inner.work.notify_all();
        let mut workers = lock_recover(&self.workers, LockRank::Workers);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ScheduleService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What a finished unit of work produced: the entry to serve, the basis to
/// publish, the simplex iterations spent, and the quality to report.
type JobResult = Result<(Arc<CacheEntry>, Option<SimplexBasis>, usize, Quality), ServiceError>;

/// Why a solve attempt produced nothing servable on its own.
enum SolveFail {
    /// The budget ran out with no validated incumbent — descend the ladder
    /// (stale entry, then baseline).
    Degrade(String),
    /// A real failure; no fallback would make it right.
    Fatal(ServiceError),
}

/// Worker: pop a job, solve it (outside the lock, panic-contained, under the
/// request's deadline budget), walk the degradation ladder if the budget ran
/// out, validate, cache, publish the basis, fan the result out to every
/// waiter, and enqueue a background exact upgrade for degraded answers.
fn worker_loop(inner: &Inner) {
    loop {
        let (job, hint) = {
            let mut st = lock_recover(&inner.state, LockRank::State);
            let job = loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = wait_recover(&inner.work, st);
            };
            let hint = warm_hint(&st.basis_book, job.key);
            if hint.is_some() {
                st.stats.hinted_solves += 1;
            }
            (job, hint)
        };

        let key = job.key;
        // The deadline clock started at submission; whatever queue wait ate
        // is gone from the budget.
        let budget = job
            .request
            .deadline
            .map(|d| SolveBudget::with_deadline(d.saturating_sub(job.submitted.elapsed())));
        // Intra-solve parallelism is arbitrated through the core ledger: the
        // request *asks* for `config.threads`, the ledger grants what the
        // service-wide budget has left (at least one). Released no matter how
        // the solve ends — the grant outlives even a panic.
        let worker = std::thread::current()
            .name()
            .unwrap_or("teccl-worker")
            .to_string();
        let grant = inner.acquire_cores(&worker, job.request.config.threads);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            solve_job(&job, hint.as_ref(), budget.as_ref(), grant, &inner.fault)
        }));
        inner.release_cores(&worker, grant);

        let panicked = attempt.is_err();
        let result: JobResult = match attempt {
            Ok(Ok(solved)) => Ok(solved),
            Ok(Err(SolveFail::Fatal(e))) => Err(e),
            Ok(Err(SolveFail::Degrade(reason))) => degrade(inner, &job, &reason),
            // `&*`: downcast the payload itself, not the box around it.
            Err(payload) => Err(ServiceError::WorkerPanicked(panic_message(&*payload))),
        };

        // Publish and fan out.
        let (waiters, to_disk, upgrade_queued) = {
            let mut st = lock_recover(&inner.state, LockRank::State);
            let waiters = st.inflight.remove(&key.hash).unwrap_or_default();
            let mut to_disk = None;
            let mut upgrade_queued = false;
            match &result {
                Ok((entry, basis, stats_delta, quality)) => {
                    // A stale answer is a neighbouring key's entry — it is
                    // already cached under its own hash, and caching it under
                    // ours would mislabel the cache.
                    if *quality != Quality::Stale {
                        st.cache.insert(Arc::clone(entry));
                    }
                    if let Some(b) = basis {
                        st.basis_book
                            .insert((key.family, key.size_bucket), b.clone());
                    }
                    if *quality <= Quality::Incumbent {
                        st.stats.solves += 1;
                        st.stats.solve_time_s += entry.stats.solve_time.as_secs_f64();
                    }
                    st.stats.solve_simplex_iterations += *stats_delta as u64;
                    if *quality != Quality::Exact {
                        st.stats.degraded += waiters.len() as u64;
                        // Keep working toward the exact answer: re-enqueue the
                        // request deadline-free with no waiters. A later
                        // identical request coalesces onto it instead of
                        // re-triggering a solve.
                        if inner.background_upgrade && !job.upgrade && !st.shutdown {
                            let mut request = job.request.clone();
                            request.deadline = None;
                            st.inflight.entry(key.hash).or_default();
                            st.queue.push_back(Job {
                                request,
                                key,
                                submitted: Instant::now(),
                                upgrade: true,
                            });
                            upgrade_queued = true;
                        }
                    } else if job.upgrade {
                        st.stats.background_upgrades += 1;
                    }
                    st.stats.cached_entries = st.cache.len() as u64;
                    if inner.disk.is_some() && *quality == Quality::Exact {
                        to_disk = Some((Arc::clone(entry), basis.clone()));
                    }
                }
                Err(e) => {
                    st.stats.solve_errors += 1;
                    if matches!(e, ServiceError::WorkerPanicked(_)) {
                        st.stats.worker_panics += 1;
                    }
                }
            }
            debug_assert!(
                !panicked || result.is_err(),
                "a panic must surface as an error"
            );
            (waiters, to_disk, upgrade_queued)
        };
        if upgrade_queued {
            inner.work.notify_one();
        }
        // Disk IO happens outside the lock; the in-memory entry is already
        // visible, so a racing identical request hits memory meanwhile.
        if let Some(store) = &inner.disk {
            if let Some((entry, basis)) = to_disk {
                let _ = store.save(&entry, basis.as_ref());
            }
        }
        for (tx, status) in waiters {
            let reply = match &result {
                Ok((entry, _, _, quality)) => Ok((Arc::clone(entry), status, *quality)),
                Err(e) => Err(e.clone()),
            };
            let _ = tx.send(reply);
        }
    }
}

/// Spawns one worker thread.
fn spawn_worker(inner: Arc<Inner>, name: String) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&inner))
        // lint:allow(panic-hygiene): OS thread-spawn failure at startup/respawn is unrecoverable
        .expect("spawn worker")
}

/// Renders a panic payload into something a waiter can read.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The lower rungs of the ladder, in order: a validated same-family cache
/// entry (identical demand, neighbouring chunk size), else an instant
/// baseline schedule. Neither touches the simplex.
fn degrade(inner: &Inner, job: &Job, reason: &str) -> JobResult {
    let stale = lock_recover(&inner.state, LockRank::State)
        .cache
        .find_family(job.key.family, job.key.hash);
    if let Some(entry) = stale {
        return Ok((entry, None, 0, Quality::Stale));
    }
    build_baseline(&job.request, job.key, reason).map(|e| (e, None, 0, Quality::Baseline))
}

/// Builds, validates and simulates a solver-free baseline schedule: the NCCL
/// ring for ALLGATHER when the GPUs form a usable ring, shortest-path unicast
/// (fully general) otherwise.
fn build_baseline(
    request: &SolveRequest,
    key: RequestKey,
    reason: &str,
) -> Result<Arc<CacheEntry>, ServiceError> {
    let started = Instant::now();
    let demand = request.demand();
    let chunk_bytes = request.chunk_bytes();
    let topo = &request.topology;
    let schedule = match request.collective {
        CollectiveKind::AllGather => {
            let gpus: Vec<NodeId> = topo.gpus().collect();
            ring_all_gather(topo, &gpus, request.chunks, chunk_bytes)
                .unwrap_or_else(|| shortest_path_schedule(topo, &demand, chunk_bytes))
        }
        _ => shortest_path_schedule(topo, &demand, chunk_bytes),
    };
    let report = validate(topo, &demand, &schedule, false);
    if !report.is_valid() {
        return Err(ServiceError::Solve(format!(
            "{reason}; baseline fallback is invalid too: {:?}",
            report.errors
        )));
    }
    let sim = simulate(topo, &demand, &schedule)
        .map_err(|e| ServiceError::Solve(format!("{reason}; baseline failed simulation: {e}")))?;
    let metrics = CollectiveMetrics {
        solver: schedule.name.clone(),
        epoch_duration: schedule.epoch_duration,
        transfer_time: sim.transfer_time,
        solver_time: started.elapsed().as_secs_f64(),
        output_buffer_bytes: request.output_buffer,
        bytes_on_wire: sim.bytes_on_wire,
    };
    Ok(Arc::new(CacheEntry {
        key,
        output: ScheduleOutput { schedule, metrics },
        topology_used: topo.clone(),
        chunk_bytes,
        stats: SolveStats::default(),
        quality: Quality::Baseline,
    }))
}

/// Picks a warm-start basis for a key: its own bucket first, then the
/// nearest neighbours (±1, ±2 half-octaves — beyond that the epoch count has
/// almost certainly changed and the basis would only buy a failed warm
/// attempt).
fn warm_hint(book: &HashMap<(u64, i64), SimplexBasis>, key: RequestKey) -> Option<SimplexBasis> {
    for delta in [0i64, -1, 1, -2, 2] {
        if let Some(b) = book.get(&(key.family, key.size_bucket + delta)) {
            return Some(b.clone());
        }
    }
    None
}

/// Runs one solve end to end: fault hooks, budget, dispatch, validate,
/// simulate, package. Returns the entry, the basis to publish, the simplex
/// iterations spent, and the achieved quality (exact, or incumbent when the
/// budget stopped the solver at its best feasible point).
fn solve_job(
    job: &Job,
    hint: Option<&SimplexBasis>,
    budget: Option<&SolveBudget>,
    threads: usize,
    fault: &FaultPlan,
) -> Result<(Arc<CacheEntry>, Option<SimplexBasis>, usize, Quality), SolveFail> {
    if let Some(delay) = fault.slow_solve_delay() {
        std::thread::sleep(delay);
    }
    if fault.should_panic_in_solve() {
        panic!("injected fault: panic-in-solve");
    }
    // A deadline that expired in the queue (or during an injected stall)
    // goes straight to the fallback ladder — zero simplex pivots.
    if let Some(cause) = budget.and_then(SolveBudget::exceeded) {
        return Err(SolveFail::Degrade(format!(
            "budget exhausted before the solve started: {cause}"
        )));
    }
    let req = &job.request;
    let demand = req.demand();
    let chunk_bytes = req.chunk_bytes();
    // The granted thread count replaces the requested one: the request says
    // how parallel it *wants* to be, the ledger says how parallel it gets.
    let mut config = req.config.clone();
    config.threads = threads.max(1);
    let mut solver = TeCcl::new(req.topology.clone(), config);
    if let Some(b) = budget {
        solver = solver.with_budget(b.clone());
    }
    let solve_started = Instant::now();
    let outcome = match req.method {
        RequestMethod::Auto => solver.solve_from(&demand, chunk_bytes, hint),
        RequestMethod::Milp => solver.solve_milp_from(&demand, chunk_bytes, hint),
        RequestMethod::Lp => solver.solve_lp_from(&demand, chunk_bytes, hint),
        RequestMethod::AStar => solver.solve_astar_from(&demand, chunk_bytes, hint),
    };
    let outcome = match outcome {
        Ok(o) => o,
        // Budget ran out with nothing feasible in hand: not a solver bug,
        // descend the ladder.
        Err(TeCclError::Budget(cause)) => {
            return Err(SolveFail::Degrade(format!(
                "solve budget exhausted: {cause}"
            )))
        }
        Err(e) => return Err(SolveFail::Fatal(ServiceError::Solve(e.to_string()))),
    };
    let solver_time = solve_started.elapsed().as_secs_f64();
    let quality = if outcome.stats.budget_stop.is_some() {
        Quality::Incumbent
    } else {
        Quality::Exact
    };

    let report = validate(&outcome.topology_used, &demand, &outcome.schedule, false);
    if !report.is_valid() {
        // An invalid *exact* schedule is a solver bug worth surfacing; an
        // invalid incumbent just means this rung of the ladder is empty.
        if quality == Quality::Incumbent {
            return Err(SolveFail::Degrade(format!(
                "deadline-stopped incumbent failed validation: {:?}",
                report.errors
            )));
        }
        return Err(SolveFail::Fatal(ServiceError::InvalidSchedule(format!(
            "{:?}",
            report.errors
        ))));
    }
    let sim = match simulate(&outcome.topology_used, &demand, &outcome.schedule) {
        Ok(sim) => sim,
        Err(e) if quality == Quality::Incumbent => {
            return Err(SolveFail::Degrade(format!(
                "deadline-stopped incumbent failed simulation: {e}"
            )))
        }
        Err(e) => {
            return Err(SolveFail::Fatal(ServiceError::InvalidSchedule(
                e.to_string(),
            )))
        }
    };

    let metrics = CollectiveMetrics {
        solver: outcome.schedule.name.clone(),
        epoch_duration: outcome.epoch_duration,
        transfer_time: sim.transfer_time,
        solver_time,
        output_buffer_bytes: req.output_buffer,
        bytes_on_wire: sim.bytes_on_wire,
    };
    let simplex_iterations = outcome.stats.simplex_iterations;
    let entry = Arc::new(CacheEntry {
        key: job.key,
        output: ScheduleOutput {
            schedule: outcome.schedule,
            metrics,
        },
        topology_used: outcome.topology_used,
        chunk_bytes,
        stats: outcome.stats,
        quality,
    });
    Ok((entry, outcome.basis, simplex_iterations, quality))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_collective::CollectiveKind;
    use teccl_topology::{line_topology, ring_topology};

    fn tiny_request() -> SolveRequest {
        SolveRequest::new(
            ring_topology(3, 1e9, 0.0),
            CollectiveKind::AllGather,
            1,
            64.0 * 1024.0,
        )
    }

    /// A config that ignores any ambient `TECCL_FAULT_PLAN` so unit tests
    /// stay deterministic under a chaos-enabled environment.
    fn quiet_config() -> ServiceConfig {
        ServiceConfig {
            fault_plan: Some(String::new()),
            ..Default::default()
        }
    }

    #[test]
    fn hit_returns_validated_schedule_without_solving() {
        let svc = ScheduleService::start(quiet_config()).unwrap();
        let first = svc.request(tiny_request()).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        assert_eq!(first.quality, Quality::Exact);
        let after_miss = svc.stats();
        assert_eq!(after_miss.solves, 1);
        assert!(after_miss.solve_simplex_iterations > 0);

        let second = svc.request(tiny_request()).unwrap();
        assert_eq!(second.cache, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&first.entry, &second.entry));
        // The acceptance gate: the hit performed no solver work at all.
        let after_hit = svc.stats();
        assert_eq!(after_hit.solves, 1);
        assert_eq!(
            after_hit.solve_simplex_iterations,
            after_miss.solve_simplex_iterations
        );
        // And the served schedule is valid for the request.
        let req = tiny_request();
        let report = validate(
            &second.entry.topology_used,
            &req.demand(),
            &second.entry.output.schedule,
            false,
        );
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn solve_error_propagates_to_all_waiters() {
        // max_epochs = 1 with no retry budget left... the MILP retries
        // internally, so use an A* request that cannot converge instead:
        // zero rounds allowed.
        let mut req = tiny_request().with_method(RequestMethod::AStar);
        req.config.astar_max_rounds = 0;
        let svc = ScheduleService::start(quiet_config()).unwrap();
        let t1 = svc.submit(req.clone());
        let t2 = svc.submit(req);
        let (r1, r2) = (t1.wait(), t2.wait());
        assert!(r1.is_err() && r2.is_err());
        assert_eq!(svc.stats().solve_errors, 1, "single-flight even on errors");
    }

    #[test]
    fn evict_key_forces_resolve_with_published_basis() {
        let svc = ScheduleService::start(quiet_config()).unwrap();
        let req = SolveRequest::new(
            line_topology(3, 1e9, 0.0),
            CollectiveKind::AllToAll,
            1,
            64.0 * 1024.0,
        );
        let first = svc.request(req.clone()).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        assert!(svc.evict_key(req.key().hash));
        let second = svc.request(req.clone()).unwrap();
        assert_eq!(second.cache, CacheStatus::Miss);
        let stats = svc.stats();
        assert_eq!(stats.solves, 2);
        // The re-solve was warm-hinted from the published basis of the first,
        // and the identical shape means the warm start actually engaged.
        assert_eq!(stats.hinted_solves, 1);
        assert!(
            second.entry.stats.warm_starts > 0,
            "identical-shape re-solve must warm-start (stats: {:?})",
            second.entry.stats
        );
    }

    #[test]
    fn disk_store_survives_service_restart() {
        let dir = std::env::temp_dir().join(format!("teccl-svc-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            disk_dir: Some(dir.clone()),
            ..Default::default()
        };
        let first = {
            let svc = ScheduleService::start(cfg()).unwrap();
            let served = svc.request(tiny_request()).unwrap();
            assert_eq!(served.cache, CacheStatus::Miss);
            served.entry.output.schedule.sorted_sends()
        }; // service dropped: memory cache gone, disk remains
        let svc = ScheduleService::start(cfg()).unwrap();
        let served = svc.request(tiny_request()).unwrap();
        assert_eq!(served.cache, CacheStatus::DiskHit);
        assert_eq!(served.entry.output.schedule.sorted_sends(), first);
        let stats = svc.stats();
        assert_eq!(stats.solves, 0, "disk hits must not invoke the solver");
        assert_eq!(stats.disk_hits, 1);
        // And the next ask is an ordinary memory hit.
        assert_eq!(svc.request(tiny_request()).unwrap().cache, CacheStatus::Hit);
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_fails_queued_requests() {
        let svc = ScheduleService::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        svc.shutdown();
        let t = svc.submit(tiny_request());
        assert!(matches!(t.wait(), Err(ServiceError::ShuttingDown)));
    }

    #[test]
    fn core_ledger_clamps_grants_and_settles() {
        let svc = ScheduleService::start(ServiceConfig {
            core_budget: Some(4),
            ..quiet_config()
        })
        .unwrap();
        // First solve asks for 3 of 4: granted in full.
        assert_eq!(svc.inner.acquire_cores("w0", 3), 3);
        // Second asks for 4 with only 1 spare: clamped.
        assert_eq!(svc.inner.acquire_cores("w1", 4), 1);
        // Third arrives with nothing spare: still granted one thread — the
        // ledger never starves a solve, it only bounds extra parallelism.
        assert_eq!(svc.inner.acquire_cores("w2", 8), 1);
        let stats = svc.stats();
        assert_eq!(stats.cores_total, 4);
        assert_eq!(stats.cores_in_use, 5);
        assert_eq!(stats.active_solves, 3);
        assert_eq!(stats.workers_active, vec!["w0", "w1", "w2"]);
        svc.inner.release_cores("w1", 1);
        svc.inner.release_cores("w0", 3);
        svc.inner.release_cores("w2", 1);
        let stats = svc.stats();
        assert_eq!(stats.cores_in_use, 0);
        assert_eq!(stats.active_solves, 0);
        assert!(stats.workers_active.is_empty());
    }

    #[test]
    fn threaded_request_solves_and_returns_its_grant() {
        let svc = ScheduleService::start(ServiceConfig {
            core_budget: Some(8),
            ..quiet_config()
        })
        .unwrap();
        let mut req = tiny_request();
        req.config.threads = 4;
        let served = svc.request(req).unwrap();
        assert_eq!(served.cache, CacheStatus::Miss);
        assert_eq!(served.quality, Quality::Exact);
        let stats = svc.stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cores_in_use, 0, "the grant must be returned");
        assert_eq!(stats.active_solves, 0);
        // A 1-thread ask for the same problem is the same cache key.
        let again = svc.request(tiny_request()).unwrap();
        assert_eq!(again.cache, CacheStatus::Hit);
    }

    #[test]
    fn stats_gauges_round_trip_through_json() {
        let stats = ServiceStats {
            requests: 7,
            active_solves: 2,
            cores_in_use: 5,
            cores_total: 8,
            workers_active: vec!["teccl-worker-0".into(), "teccl-worker-1".into()],
            ..Default::default()
        };
        let back = ServiceStats::from_json_value(&stats.to_json_value());
        assert_eq!(back, stats);
    }
}
