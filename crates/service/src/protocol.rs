//! The `teccld` wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response per line, no framing beyond `\n` (the
//! `teccl-util` JSON writer never emits raw newlines inside a compact
//! document). Three verbs:
//!
//! * `solve` — `{"verb":"solve", ...solve-request fields...}` → the cached
//!   or freshly solved schedule with metrics and cache status,
//! * `stats` — `{"verb":"stats"}` → the service counters,
//! * `evict` — `{"verb":"evict"}` → clears the cache (memory + disk).
//!
//! Responses always carry `"status": "ok" | "error"`.

use teccl_util::json::Value;

use crate::cache::Quality;
use crate::key::{RequestError, SolveRequest};
use crate::service::{CacheStatus, ServedSchedule, ServiceStats};

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Solve (or fetch) a schedule.
    Solve(Box<SolveRequest>),
    /// Report service counters.
    Stats,
    /// Clear the schedule cache.
    Evict,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = Value::parse(line.trim()).map_err(|e| RequestError::Json(e.to_string()))?;
    match v.get("verb").and_then(Value::as_str) {
        Some("solve") => Ok(Request::Solve(Box::new(SolveRequest::from_json_value(&v)?))),
        Some("stats") => Ok(Request::Stats),
        Some("evict") => Ok(Request::Evict),
        Some(other) => Err(RequestError::BadVerb(other.to_string())),
        None => Err(RequestError::BadVerb(String::new())),
    }
}

/// Builds a `solve` request line from a [`SolveRequest`].
pub fn solve_request_line(req: &SolveRequest) -> String {
    let mut v = req.to_json_value();
    if let Value::Obj(pairs) = &mut v {
        pairs.insert(0, ("verb".to_string(), Value::from("solve")));
    }
    v.to_json()
}

/// The response to a successful `solve`.
pub fn solve_response(served: &ServedSchedule) -> Value {
    let e = &served.entry;
    Value::obj(vec![
        ("status", Value::from("ok")),
        ("cache", Value::from(served.cache.name())),
        ("quality", Value::from(served.quality.name())),
        ("key", Value::from(format!("{:016x}", e.key.hash))),
        ("chunk_bytes", Value::from(e.chunk_bytes)),
        ("output", e.output.to_json_value()),
        (
            "solve",
            Value::obj(vec![
                (
                    "simplex_iterations",
                    Value::from(e.stats.simplex_iterations),
                ),
                ("warm_starts", Value::from(e.stats.warm_starts)),
                ("cold_starts", Value::from(e.stats.cold_starts)),
                ("nodes_explored", Value::from(e.stats.nodes_explored)),
                (
                    "iteration_limit_hit",
                    Value::from(e.stats.iteration_limit_hit),
                ),
            ]),
        ),
    ])
}

/// The response to `stats`.
pub fn stats_response(stats: &ServiceStats) -> Value {
    Value::obj(vec![
        ("status", Value::from("ok")),
        ("stats", stats.to_json_value()),
    ])
}

/// The response to `evict`.
pub fn evict_response(evicted: usize) -> Value {
    Value::obj(vec![
        ("status", Value::from("ok")),
        ("evicted", Value::from(evicted)),
    ])
}

/// An error response.
pub fn error_response(message: &str) -> Value {
    Value::obj(vec![
        ("status", Value::from("error")),
        ("message", Value::from(message)),
    ])
}

/// An error response for a request that failed validation: carries the
/// machine-readable [`RequestError::code`] alongside the human message.
pub fn request_error_response(err: &RequestError) -> Value {
    Value::obj(vec![
        ("status", Value::from("error")),
        ("code", Value::from(err.code())),
        ("message", Value::from(err.to_string())),
    ])
}

/// Client-side view of a parsed response line.
#[derive(Debug)]
pub struct SolveReply {
    /// How the server satisfied the request.
    pub cache: CacheStatus,
    /// How the answer ranks against the exact optimum (`exact` unless a
    /// deadline forced a degraded rung of the ladder).
    pub quality: Quality,
    /// The request key (hex) under which the schedule is cached.
    pub key: String,
    /// Chunk size of the served schedule.
    pub chunk_bytes: f64,
    /// The schedule and metrics.
    pub output: teccl_schedule::ScheduleOutput,
}

/// Parses a `solve` response line (client side).
pub fn parse_solve_reply(line: &str) -> Result<SolveReply, String> {
    let v = Value::parse(line.trim()).map_err(|e| e.to_string())?;
    match v.get("status").and_then(Value::as_str) {
        Some("ok") => {}
        Some("error") => {
            return Err(v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("unknown server error")
                .to_string())
        }
        _ => return Err("malformed response".into()),
    }
    let cache = match v.get("cache").and_then(Value::as_str) {
        Some("hit") => CacheStatus::Hit,
        Some("disk_hit") => CacheStatus::DiskHit,
        Some("coalesced") => CacheStatus::Coalesced,
        Some("miss") => CacheStatus::Miss,
        _ => return Err("missing cache status".into()),
    };
    // Older servers predate quality tags; everything they serve is exact.
    let quality = v
        .get("quality")
        .and_then(Value::as_str)
        .and_then(Quality::from_name)
        .unwrap_or(Quality::Exact);
    Ok(SolveReply {
        cache,
        quality,
        key: v
            .get("key")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        chunk_bytes: v
            .get("chunk_bytes")
            .and_then(Value::as_f64)
            .ok_or("missing chunk_bytes")?,
        output: teccl_schedule::ScheduleOutput::from_json_value(
            v.get("output").ok_or("missing output")?,
        )
        .map_err(|e| e.to_string())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_collective::CollectiveKind;
    use teccl_topology::ring_topology;

    #[test]
    fn request_lines_roundtrip() {
        let req = SolveRequest::new(
            ring_topology(3, 1e9, 0.0),
            CollectiveKind::AllGather,
            1,
            64.0 * 1024.0,
        );
        let line = solve_request_line(&req);
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            Request::Solve(back) => assert_eq!(back.key(), req.key()),
            other => panic!("wrong verb: {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"verb":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"verb":"evict"}"#).unwrap(),
            Request::Evict
        ));
        assert!(parse_request(r#"{"verb":"purge"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn error_replies_surface_message() {
        let line = error_response("boom").to_json();
        assert_eq!(parse_solve_reply(&line).unwrap_err(), "boom");
    }
}
