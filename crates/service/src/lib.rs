#![forbid(unsafe_code)]
//! # teccl-service
//!
//! The schedule *service*: the long-running, concurrent face of the TE-CCL
//! solver. The paper's pitch is that MCF-based synthesis is fast enough to
//! run on demand; in a real deployment the same `(topology, collective,
//! buffer size)` requests then recur constantly across jobs and tenants, so
//! the service never solves the same request twice:
//!
//! * [`key`] — canonical, content-addressed request keys: topology
//!   fingerprints (canonical edge order, quantized α/β, names ignored),
//!   collective/config fingerprints with quantized floats, and half-octave
//!   buffer-size bucketing.
//! * [`cache`] — a bounded in-memory LRU over those keys plus an optional
//!   on-disk store of `teccl-util`-JSON schedules, re-validated with
//!   [`teccl_schedule::validate`] on every load.
//! * [`service`] — the orchestrator: a `std::thread` worker pool with a
//!   request queue, **single-flight** coalescing of identical concurrent
//!   misses, and cross-request **warm starting** (completed solves publish
//!   their final LP basis; cache-adjacent requests re-optimize from it via
//!   `TeCcl::solve_from`).
//! * [`protocol`] / [`server`] — a line-delimited-JSON-over-TCP protocol
//!   (`solve` / `stats` / `evict`) served by the `teccld` binary and driven
//!   by the `teccl-cli` batch client.
//! * [`fault`] / [`sync`] — deterministic fault injection (panics, stalls,
//!   corrupt reads, dropped connections via `TECCL_FAULT_PLAN`) and
//!   poison-recovering lock helpers, so the robustness story — deadline
//!   degradation ladder, worker respawn, disk quarantine — is testable.
//!
//! Everything is `std`-only, like the rest of the workspace.

pub mod cache;
pub mod fault;
pub mod key;
pub mod protocol;
pub mod server;
pub mod service;
pub mod sync;

pub use cache::{CacheEntry, DiskStore, Quality, ScheduleCache};
pub use fault::FaultPlan;
pub use key::{builtin_topology, RequestError, RequestKey, RequestMethod, SolveRequest};
pub use server::{serve, ServerHandle};
pub use service::{
    CacheStatus, ScheduleService, ServedSchedule, ServiceConfig, ServiceError, ServiceStats, Ticket,
};
pub use teccl_core::Decompose;

#[cfg(test)]
mod thread_safety_tests {
    use super::*;

    /// The service moves requests, entries and errors across threads and
    /// shares itself behind an `Arc` — all of that must be `Send + Sync`.
    #[test]
    fn service_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SolveRequest>();
        assert_sync::<SolveRequest>();
        assert_send::<ScheduleService>();
        assert_sync::<ScheduleService>();
        assert_send::<CacheEntry>();
        assert_sync::<CacheEntry>();
        assert_send::<ServiceError>();
        assert_send::<Ticket>();
        assert_send::<teccl_core::SolveOutcome>();
        assert_sync::<teccl_core::SolveOutcome>();
        assert_send::<teccl_core::TeCcl>();
        assert_sync::<teccl_core::TeCcl>();
    }
}
