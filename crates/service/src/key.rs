//! Canonical request keys: the content-addressed identity of a solve.
//!
//! Two requests that would produce the same schedule must produce the same
//! key, across processes and machines. The fingerprint therefore hashes
//! *canonical* content, not incidental representation:
//!
//! * the topology via [`Topology::fingerprint`] (canonical edge ordering,
//!   names excluded, α/β quantized),
//! * the collective kind, chunk count, and requested formulation,
//! * the solver configuration with floats quantized,
//! * the output-buffer size **bucketed** onto a half-octave log₂ grid
//!   ([`teccl_util::hash::size_bucket`]) — requests within ~19% of each
//!   other share one cache entry, mirroring the observation (Cloud
//!   Collectives) that production workloads re-request collectives over a
//!   small set of effective sizes.
//!
//! The `family` half of the key deliberately excludes the size bucket: it
//! groups all size variants of one `(topology, collective, config)` request
//! so completed solves can publish their final LP basis to *neighbouring*
//! buckets for warm starting.

use teccl_collective::{CollectiveKind, CollectiveSizing, DemandMatrix};
use teccl_core::{BufferMode, Decompose, EpochStrategy, SolverConfig, SwitchModel};
use teccl_topology::{NodeId, Topology};
use teccl_util::hash::{size_bucket, StableHasher};
use teccl_util::json::{JsonError, Value};

/// A typed request-validation error.
///
/// The wire layer used to surface every parse failure as one opaque string;
/// semantically invalid requests now carry a machine-readable code so clients
/// can distinguish "fix your JSON" from "fix your request". The motivating
/// case is [`InvalidBufferSize`](RequestError::InvalidBufferSize):
/// [`teccl_util::hash::size_bucket`] maps every zero / negative / non-finite
/// size to the same degenerate `i64::MIN` bucket, so if such requests reached
/// the cache they would all collapse into one entry and cross-warm-start each
/// other. They are rejected here, before a key is ever formed.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The request line is not valid JSON.
    Json(String),
    /// The `verb` field is missing or names no known verb.
    BadVerb(String),
    /// A field is missing, has the wrong type, or an out-of-range value.
    BadField(String),
    /// `output_buffer` is zero, negative, NaN or infinite.
    InvalidBufferSize(f64),
}

impl RequestError {
    /// Stable machine-readable code carried on error responses.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::Json(_) => "bad_json",
            RequestError::BadVerb(_) => "bad_verb",
            RequestError::BadField(_) => "bad_field",
            RequestError::InvalidBufferSize(_) => "invalid_buffer_size",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Json(e) => write!(f, "invalid JSON: {e}"),
            RequestError::BadVerb(v) if v.is_empty() => write!(f, "missing verb"),
            RequestError::BadVerb(v) => write!(f, "unknown verb `{v}`"),
            RequestError::BadField(msg) => write!(f, "{msg}"),
            RequestError::InvalidBufferSize(v) => {
                write!(f, "output_buffer must be positive and finite (got {v})")
            }
        }
    }
}

impl std::error::Error for RequestError {}

impl From<JsonError> for RequestError {
    fn from(e: JsonError) -> Self {
        RequestError::BadField(e.to_string())
    }
}

/// Which formulation a request asks for (mirrors `teccl_bench::Method`; the
/// service cannot depend on the bench crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestMethod {
    /// Automatic dispatch ([`teccl_core::TeCcl::solve`]).
    #[default]
    Auto,
    /// The general MILP (§3.1).
    Milp,
    /// The copy-free LP (§4.1).
    Lp,
    /// The A* time-partitioned solver (§4.2).
    AStar,
}

impl RequestMethod {
    /// Stable wire / hash name.
    pub fn name(self) -> &'static str {
        match self {
            RequestMethod::Auto => "auto",
            RequestMethod::Milp => "milp",
            RequestMethod::Lp => "lp",
            RequestMethod::AStar => "astar",
        }
    }

    /// Parses the wire name.
    pub fn from_name(s: &str) -> Option<RequestMethod> {
        Some(match s {
            "auto" => RequestMethod::Auto,
            "milp" => RequestMethod::Milp,
            "lp" => RequestMethod::Lp,
            "astar" => RequestMethod::AStar,
            _ => return None,
        })
    }
}

/// Stable wire / hash name of a collective kind.
pub fn collective_name(kind: CollectiveKind) -> &'static str {
    match kind {
        CollectiveKind::AllGather => "all_gather",
        CollectiveKind::AllToAll => "all_to_all",
        CollectiveKind::Broadcast => "broadcast",
        CollectiveKind::Gather => "gather",
        CollectiveKind::Scatter => "scatter",
        CollectiveKind::ReduceScatter => "reduce_scatter",
        CollectiveKind::AllReduce => "all_reduce",
    }
}

/// Parses a collective kind from its wire name.
pub fn collective_from_name(s: &str) -> Option<CollectiveKind> {
    Some(match s {
        "all_gather" => CollectiveKind::AllGather,
        "all_to_all" => CollectiveKind::AllToAll,
        "broadcast" => CollectiveKind::Broadcast,
        "gather" => CollectiveKind::Gather,
        "scatter" => CollectiveKind::Scatter,
        "reduce_scatter" => CollectiveKind::ReduceScatter,
        "all_reduce" => CollectiveKind::AllReduce,
        _ => return None,
    })
}

/// The canonical identity of a request in the schedule cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Hash of everything *except* the size bucket: the warm-start
    /// neighbourhood (same topology / collective / chunks / method / config).
    pub family: u64,
    /// Half-octave log₂ bucket of the output-buffer size.
    pub size_bucket: i64,
    /// Content hash of the full request (`family` ⊕ bucket): the cache and
    /// on-disk key.
    pub hash: u64,
}

/// A solve request: everything the service needs to reproduce a
/// [`teccl_core::SolveOutcome`] from scratch.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The cluster topology.
    pub topology: Topology,
    /// Which collective to schedule.
    pub collective: CollectiveKind,
    /// Chunks per source/destination pair (finer pipelining for more chunks).
    pub chunks: usize,
    /// Output-buffer size in bytes (the paper's x-axis unit).
    pub output_buffer: f64,
    /// Requested formulation.
    pub method: RequestMethod,
    /// Solver configuration.
    pub config: SolverConfig,
    /// How long the caller is willing to wait (measured from submission).
    /// When it expires the service serves the best degraded answer it has
    /// (see `teccl_service::service::Quality`) instead of blocking.
    ///
    /// Deliberately **excluded** from [`SolveRequest::key`]: a deadline
    /// changes how long we wait, not which schedule is correct, so
    /// deadline-bearing requests must share cache entries with patient ones.
    pub deadline: Option<std::time::Duration>,
}

impl SolveRequest {
    /// A request with the default configuration and automatic dispatch.
    pub fn new(
        topology: Topology,
        collective: CollectiveKind,
        chunks: usize,
        output_buffer: f64,
    ) -> Self {
        Self {
            topology,
            collective,
            chunks,
            output_buffer,
            method: RequestMethod::Auto,
            config: SolverConfig::default(),
            deadline: None,
        }
    }

    /// Sets the formulation.
    pub fn with_method(mut self, method: RequestMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the serving deadline.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the solver configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// The chunk size implied by the output buffer (the paper's
    /// parameterization, as in `Scenario::collective`).
    pub fn chunk_bytes(&self) -> f64 {
        let sizing = CollectiveSizing::new(self.collective, self.topology.num_gpus());
        sizing.transfer_bytes_for_output_buffer(self.output_buffer) / self.chunks as f64
    }

    /// Builds the demand matrix for this request.
    pub fn demand(&self) -> DemandMatrix {
        let gpus: Vec<NodeId> = self.topology.gpus().collect();
        DemandMatrix::for_collective(
            self.collective,
            self.topology.num_nodes(),
            &gpus,
            self.chunks,
        )
    }

    /// The canonical content-addressed key of this request.
    pub fn key(&self) -> RequestKey {
        let mut h = StableHasher::new();
        h.write_u64(self.topology.fingerprint());
        h.write_str(collective_name(self.collective));
        h.write_usize(self.chunks);
        h.write_str(self.method.name());
        hash_config(&mut h, &self.config);
        let family = h.finish();
        let bucket = size_bucket(self.output_buffer);
        let mut full = StableHasher::new();
        full.write_u64(family).write_i64(bucket);
        RequestKey {
            family,
            size_bucket: bucket,
            hash: full.finish(),
        }
    }

    /// Serializes the request (used by the wire protocol and request files).
    pub fn to_json_value(&self) -> Value {
        let mut pairs = vec![
            ("topology", self.topology.to_json_value()),
            ("collective", Value::from(collective_name(self.collective))),
            ("chunks", Value::from(self.chunks)),
            ("output_buffer", Value::from(self.output_buffer)),
            ("method", Value::from(self.method.name())),
            ("config", config_to_json(&self.config)),
        ];
        if let Some(d) = self.deadline {
            pairs.push(("deadline_ms", Value::from(d.as_secs_f64() * 1e3)));
        }
        Value::obj(pairs)
    }

    /// Deserializes a request. `topology` may be a full topology document or
    /// the string name of a prebuilt one (see [`builtin_topology`]); every
    /// field except `topology`, `collective` and `output_buffer` is optional.
    pub fn from_json_value(v: &Value) -> Result<SolveRequest, RequestError> {
        let bad = |msg: &str| RequestError::BadField(msg.to_string());
        let topology = match v.get("topology") {
            Some(Value::Str(name)) => {
                builtin_topology(name).ok_or(bad("unknown builtin topology"))?
            }
            Some(t) => Topology::from_json_value(t)?,
            None => return Err(bad("missing topology")),
        };
        topology
            .validate()
            .map_err(|e| bad(&format!("invalid topology: {e}")))?;
        let collective = v
            .get("collective")
            .and_then(Value::as_str)
            .and_then(collective_from_name)
            .ok_or(bad("missing/unknown collective"))?;
        let output_buffer = v
            .get("output_buffer")
            .and_then(Value::as_f64)
            .ok_or(bad("missing output_buffer"))?;
        if output_buffer <= 0.0 || !output_buffer.is_finite() {
            return Err(RequestError::InvalidBufferSize(output_buffer));
        }
        let chunks = match v.get("chunks") {
            None => 1,
            Some(c) => c.as_usize().filter(|&c| c >= 1).ok_or(bad("bad chunks"))?,
        };
        let method = match v.get("method") {
            None => RequestMethod::Auto,
            Some(m) => m
                .as_str()
                .and_then(RequestMethod::from_name)
                .ok_or(bad("unknown method"))?,
        };
        let config = match v.get("config") {
            None => SolverConfig::default(),
            Some(c) => config_from_json(c)?,
        };
        let deadline = match v.get("deadline_ms") {
            None => None,
            Some(d) => {
                let ms = d
                    .as_f64()
                    .filter(|ms| *ms >= 0.0 && ms.is_finite())
                    .ok_or(bad("bad deadline_ms"))?;
                Some(std::time::Duration::from_secs_f64(ms / 1e3))
            }
        };
        Ok(SolveRequest {
            topology,
            collective,
            chunks,
            output_buffer,
            method,
            config,
            deadline,
        })
    }
}

/// Absorbs a solver configuration into a fingerprint, floats quantized so
/// noise-level differences don't split the cache. `chunk_priorities` is part
/// of the identity (a differently-weighted multi-tenant solve is a different
/// schedule); the time limit is too — a tighter budget can legitimately
/// change the (early-stopped) result.
fn hash_config(h: &mut StableHasher, c: &SolverConfig) {
    h.write_u64(match c.epoch_strategy {
        EpochStrategy::SlowestLink => 0,
        EpochStrategy::FastestLink => 1,
    });
    h.write_f64_quantized(c.epoch_multiplier, 1e6);
    h.write_u64(match c.switch_model {
        SwitchModel::CopyCapable => 0,
        SwitchModel::NonCopy => 1,
        SwitchModel::HyperEdge => 2,
    });
    match c.buffer_mode {
        BufferMode::Unlimited => h.write_u64(0),
        BufferMode::LimitedChunks(n) => h.write_u64(1).write_usize(n),
        BufferMode::NoStoreAndForward => h.write_u64(2),
    };
    h.write_i64(c.max_epochs.map(|k| k as i64).unwrap_or(-1));
    match c.early_stop_gap {
        None => h.write_i64(-1),
        Some(g) => h.write_f64_quantized(g, 1e9),
    };
    match c.time_limit {
        None => h.write_i64(-1),
        Some(d) => h.write_i64(d.as_millis() as i64),
    };
    h.write_i64(c.astar_epochs_per_round.map(|e| e as i64).unwrap_or(-1));
    h.write_f64_quantized(c.astar_gamma, 1e9);
    h.write_usize(c.astar_max_rounds);
    h.write_u64(c.warm_start as u64);
    h.write_u64(c.astar_warm_rounds as u64);
    match &c.chunk_priorities {
        None => {
            h.write_i64(-1);
        }
        Some(p) => {
            h.write_usize(p.len());
            for &w in p {
                h.write_f64_quantized(w, 1e9);
            }
        }
    }
    // `c.threads` and `c.decompose` are deliberately NOT hashed: like the
    // per-request deadline, they change how fast the answer arrives, never
    // what the answer is (solves are thread-count invariant, and the
    // Dantzig-Wolfe path certifies the same optimum as the monolithic
    // simplex), so a 1-thread and an 8-thread-decomposed request for the
    // same problem must share one cache entry.
}

/// Serializes a solver configuration for the wire protocol.
pub fn config_to_json(c: &SolverConfig) -> Value {
    let mut pairs = vec![
        (
            "epoch_strategy",
            Value::from(match c.epoch_strategy {
                EpochStrategy::SlowestLink => "slowest_link",
                EpochStrategy::FastestLink => "fastest_link",
            }),
        ),
        ("epoch_multiplier", Value::from(c.epoch_multiplier)),
        (
            "switch_model",
            Value::from(match c.switch_model {
                SwitchModel::CopyCapable => "copy_capable",
                SwitchModel::NonCopy => "non_copy",
                SwitchModel::HyperEdge => "hyper_edge",
            }),
        ),
        (
            "buffer_mode",
            match c.buffer_mode {
                BufferMode::Unlimited => Value::from("unlimited"),
                BufferMode::LimitedChunks(n) => {
                    Value::obj(vec![("limited_chunks", Value::from(n))])
                }
                BufferMode::NoStoreAndForward => Value::from("no_store_and_forward"),
            },
        ),
        ("astar_gamma", Value::from(c.astar_gamma)),
        ("astar_max_rounds", Value::from(c.astar_max_rounds)),
        ("warm_start", Value::from(c.warm_start)),
        ("astar_warm_rounds", Value::from(c.astar_warm_rounds)),
    ];
    if let Some(k) = c.max_epochs {
        pairs.push(("max_epochs", Value::from(k)));
    }
    if let Some(g) = c.early_stop_gap {
        pairs.push(("early_stop_gap", Value::from(g)));
    }
    if let Some(d) = c.time_limit {
        pairs.push(("time_limit_s", Value::from(d.as_secs_f64())));
    }
    if let Some(e) = c.astar_epochs_per_round {
        pairs.push(("astar_epochs_per_round", Value::from(e)));
    }
    if let Some(p) = &c.chunk_priorities {
        pairs.push((
            "chunk_priorities",
            Value::Arr(p.iter().map(|&w| Value::from(w)).collect()),
        ));
    }
    // Only serialized when non-default so pre-threads golden documents stay
    // byte-identical.
    if c.threads != 1 {
        pairs.push(("threads", Value::from(c.threads)));
    }
    if c.decompose != Decompose::Auto {
        pairs.push(("decompose", Value::from(c.decompose.name())));
    }
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Deserializes a solver configuration; absent fields keep their defaults.
pub fn config_from_json(v: &Value) -> Result<SolverConfig, JsonError> {
    let bad = |msg: &str| JsonError {
        pos: 0,
        msg: msg.to_string(),
    };
    let mut c = SolverConfig::default();
    if let Some(s) = v.get("epoch_strategy").and_then(Value::as_str) {
        c.epoch_strategy = match s {
            "slowest_link" => EpochStrategy::SlowestLink,
            "fastest_link" => EpochStrategy::FastestLink,
            _ => return Err(bad("unknown epoch_strategy")),
        };
    }
    if let Some(m) = v.get("epoch_multiplier").and_then(Value::as_f64) {
        if m < 1.0 || m.is_nan() {
            return Err(bad("epoch_multiplier must be >= 1"));
        }
        c.epoch_multiplier = m;
    }
    if let Some(s) = v.get("switch_model").and_then(Value::as_str) {
        c.switch_model = match s {
            "copy_capable" => SwitchModel::CopyCapable,
            "non_copy" => SwitchModel::NonCopy,
            "hyper_edge" => SwitchModel::HyperEdge,
            _ => return Err(bad("unknown switch_model")),
        };
    }
    if let Some(b) = v.get("buffer_mode") {
        c.buffer_mode = match b {
            Value::Str(s) if s == "unlimited" => BufferMode::Unlimited,
            Value::Str(s) if s == "no_store_and_forward" => BufferMode::NoStoreAndForward,
            other => match other.get("limited_chunks").and_then(Value::as_usize) {
                Some(n) => BufferMode::LimitedChunks(n),
                None => return Err(bad("unknown buffer_mode")),
            },
        };
    }
    if let Some(k) = v.get("max_epochs") {
        c.max_epochs = Some(k.as_usize().ok_or(bad("bad max_epochs"))?);
    }
    if let Some(g) = v.get("early_stop_gap") {
        c.early_stop_gap = Some(g.as_f64().ok_or(bad("bad early_stop_gap"))?);
    }
    if let Some(d) = v.get("time_limit_s") {
        let secs = d
            .as_f64()
            .filter(|s| *s > 0.0)
            .ok_or(bad("bad time_limit_s"))?;
        c.time_limit = Some(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(e) = v.get("astar_epochs_per_round") {
        c.astar_epochs_per_round = Some(e.as_usize().ok_or(bad("bad astar_epochs_per_round"))?);
    }
    if let Some(g) = v.get("astar_gamma").and_then(Value::as_f64) {
        c.astar_gamma = g;
    }
    if let Some(r) = v.get("astar_max_rounds").and_then(Value::as_usize) {
        c.astar_max_rounds = r;
    }
    if let Some(w) = v.get("warm_start").and_then(Value::as_bool) {
        c.warm_start = w;
    }
    if let Some(w) = v.get("astar_warm_rounds").and_then(Value::as_bool) {
        c.astar_warm_rounds = w;
    }
    if let Some(p) = v.get("chunk_priorities").and_then(Value::as_arr) {
        c.chunk_priorities = Some(
            p.iter()
                .map(|w| w.as_f64().ok_or(bad("bad chunk_priorities entry")))
                .collect::<Result<Vec<f64>, _>>()?,
        );
    }
    if let Some(t) = v.get("threads") {
        let t = t.as_usize().filter(|&t| t >= 1).ok_or(bad("bad threads"))?;
        c.threads = t;
    }
    if let Some(d) = v.get("decompose") {
        let d = d
            .as_str()
            .and_then(Decompose::from_name)
            .ok_or(bad("bad decompose"))?;
        c.decompose = d;
    }
    Ok(c)
}

/// Resolves the name of a prebuilt topology, e.g. `"dgx1"`, `"ndv2x2"`,
/// `"internal1x2"`, `"internal2x4"` (the chassis count after the `x` is
/// optional and defaults to 1). Handy for handwritten request files — a full
/// topology JSON document is accepted everywhere a name is.
pub fn builtin_topology(spec: &str) -> Option<Topology> {
    // Exact names first — "dgx1" must not parse as base "dg" × 1 chassis.
    match spec {
        "dgx1" => return Some(teccl_topology::dgx1()),
        "ndv2" => return Some(teccl_topology::ndv2(1)),
        "dgx2" => return Some(teccl_topology::dgx2(1)),
        "internal1" => return Some(teccl_topology::internal1(1)),
        "internal2" => return Some(teccl_topology::internal2(1)),
        _ => {}
    }
    let (base, n) = spec.rsplit_once('x')?;
    if n.is_empty() || !n.bytes().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let chassis = n.parse::<usize>().ok()?;
    if chassis == 0 {
        return None;
    }
    Some(match base {
        "ndv2" => teccl_topology::ndv2(chassis),
        "dgx2" => teccl_topology::dgx2(chassis),
        "internal1" => teccl_topology::internal1(chassis),
        "internal2" => teccl_topology::internal2(chassis),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_topology::{internal1, internal2, ring_topology};

    fn base_request() -> SolveRequest {
        SolveRequest::new(internal2(2), CollectiveKind::AllToAll, 1, 1024.0 * 1024.0)
    }

    #[test]
    fn key_is_deterministic_and_canonical() {
        let a = base_request().key();
        let b = base_request().key();
        assert_eq!(a, b);
        // Renaming the topology does not change the key.
        let mut renamed = base_request();
        renamed.topology.name = "prod-cluster-17".into();
        assert_eq!(renamed.key(), a);
    }

    #[test]
    fn key_separates_real_differences() {
        let a = base_request().key();
        let mut other = base_request();
        other.collective = CollectiveKind::AllGather;
        assert_ne!(other.key().family, a.family);
        let mut topo = base_request();
        topo.topology = internal1(2);
        assert_ne!(topo.key().family, a.family);
        let mut cfg = base_request();
        cfg.config.epoch_multiplier = 2.0;
        assert_ne!(cfg.key().family, a.family);
        let mut method = base_request();
        method.method = RequestMethod::Lp;
        assert_ne!(method.key().family, a.family);
    }

    #[test]
    fn size_bucketing_coalesces_and_separates() {
        let a = base_request().key();
        let mut near = base_request();
        near.output_buffer = 1024.0 * 1024.0 * 1.05; // within the half-octave
        assert_eq!(near.key(), a);
        let mut far = base_request();
        far.output_buffer = 4.0 * 1024.0 * 1024.0;
        let fk = far.key();
        assert_eq!(fk.family, a.family, "size lives outside the family");
        assert_ne!(fk.size_bucket, a.size_bucket);
        assert_ne!(fk.hash, a.hash);
    }

    #[test]
    fn request_json_roundtrip_preserves_key() {
        let mut req = base_request().with_method(RequestMethod::Lp);
        req.config.max_epochs = Some(9);
        req.config.early_stop_gap = Some(0.3);
        req.config.buffer_mode = teccl_core::BufferMode::LimitedChunks(4);
        let v = req.to_json_value();
        let back = SolveRequest::from_json_value(&v).unwrap();
        assert_eq!(back.key(), req.key());
        assert_eq!(back.chunks, req.chunks);
        assert_eq!(back.method, req.method);
        assert_eq!(back.config.max_epochs, Some(9));
    }

    #[test]
    fn builtin_topology_names() {
        assert_eq!(
            builtin_topology("internal1x2").unwrap().fingerprint(),
            internal1(2).fingerprint()
        );
        assert_eq!(
            builtin_topology("dgx1").unwrap().fingerprint(),
            teccl_topology::dgx1().fingerprint()
        );
        assert!(builtin_topology("internal1x0").is_none());
        assert!(builtin_topology("nope").is_none());
        // A request file can name the topology instead of embedding it.
        let req = SolveRequest::from_json_value(
            &Value::parse(
                r#"{"topology":"internal2x2","collective":"all_to_all","output_buffer":1048576}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(req.key(), base_request().key());
    }

    #[test]
    fn deadline_rides_the_wire_but_not_the_key() {
        let patient = base_request();
        let hurried = base_request().with_deadline(std::time::Duration::from_millis(100));
        assert_eq!(
            hurried.key(),
            patient.key(),
            "deadline must not split the cache"
        );
        let back = SolveRequest::from_json_value(&hurried.to_json_value()).unwrap();
        assert_eq!(back.deadline, Some(std::time::Duration::from_millis(100)));
        let back = SolveRequest::from_json_value(&patient.to_json_value()).unwrap();
        assert_eq!(back.deadline, None);
        let neg = r#"{"topology":"dgx1","collective":"all_gather","output_buffer":1024,"deadline_ms":-3}"#;
        assert!(SolveRequest::from_json_value(&Value::parse(neg).unwrap()).is_err());
    }

    #[test]
    fn decompose_rides_the_wire_but_not_the_key() {
        let auto = base_request();
        let mut forced = base_request();
        forced.config.decompose = Decompose::On;
        assert_eq!(
            forced.key(),
            auto.key(),
            "decompose mode must not split the cache (answers are invariant)"
        );
        let back = SolveRequest::from_json_value(&forced.to_json_value()).unwrap();
        assert_eq!(
            back.config.decompose,
            Decompose::On,
            "decompose must survive the wire"
        );
        let back = SolveRequest::from_json_value(&auto.to_json_value()).unwrap();
        assert_eq!(back.config.decompose, Decompose::Auto);
        assert!(
            !auto.to_json_value().to_json().contains("decompose"),
            "default decompose mode stays off the wire for golden stability"
        );
        let junk = r#"{"topology":"dgx1","collective":"all_gather","output_buffer":1024,"config":{"decompose":"sideways"}}"#;
        assert!(
            SolveRequest::from_json_value(&Value::parse(junk).unwrap()).is_err(),
            "unknown decompose mode must be rejected"
        );
    }

    #[test]
    fn threads_ride_the_wire_but_not_the_key() {
        let solo = base_request();
        let mut wide = base_request();
        wide.config.threads = 8;
        assert_eq!(
            wide.key(),
            solo.key(),
            "thread count must not split the cache (answers are invariant)"
        );
        let back = SolveRequest::from_json_value(&wide.to_json_value()).unwrap();
        assert_eq!(back.config.threads, 8, "threads must survive the wire");
        let back = SolveRequest::from_json_value(&solo.to_json_value()).unwrap();
        assert_eq!(back.config.threads, 1);
        assert!(
            !solo.to_json_value().to_json().contains("threads"),
            "default thread count stays off the wire for golden stability"
        );
        let zero = r#"{"topology":"dgx1","collective":"all_gather","output_buffer":1024,"config":{"threads":0}}"#;
        assert!(
            SolveRequest::from_json_value(&Value::parse(zero).unwrap()).is_err(),
            "threads: 0 must be rejected"
        );
    }

    #[test]
    fn degenerate_buffer_sizes_are_typed_errors() {
        // All of these map to `size_bucket == i64::MIN`; accepting them would
        // pool every degenerate request into one cache bucket.
        for bad in ["0", "-1", "-16777216.0"] {
            let line =
                format!(r#"{{"topology":"dgx1","collective":"all_gather","output_buffer":{bad}}}"#);
            let err = SolveRequest::from_json_value(&Value::parse(&line).unwrap()).unwrap_err();
            assert!(
                matches!(err, RequestError::InvalidBufferSize(_)),
                "{bad}: {err:?}"
            );
            assert_eq!(err.code(), "invalid_buffer_size");
        }
        // A missing field is a different kind of error.
        let missing = r#"{"topology":"dgx1","collective":"all_gather"}"#;
        let err = SolveRequest::from_json_value(&Value::parse(missing).unwrap()).unwrap_err();
        assert!(matches!(err, RequestError::BadField(_)));
    }

    #[test]
    fn chunk_bytes_matches_scenario_parameterization() {
        let req = SolveRequest::new(
            ring_topology(5, 1e9, 0.0),
            CollectiveKind::AllGather,
            2,
            8e6,
        );
        // 5 GPUs: transfer = 8e6 / 4 = 2e6, split into 2 chunks of 1e6.
        assert!((req.chunk_bytes() - 1e6).abs() < 1e-6);
        assert_eq!(req.demand().num_chunks, 2);
    }

    #[test]
    fn bad_requests_rejected() {
        assert!(SolveRequest::from_json_value(&Value::parse("{}").unwrap()).is_err());
        let no_buffer = r#"{"topology":"dgx1","collective":"all_gather"}"#;
        assert!(SolveRequest::from_json_value(&Value::parse(no_buffer).unwrap()).is_err());
        let bad_size = r#"{"topology":"dgx1","collective":"all_gather","output_buffer":-5}"#;
        assert!(SolveRequest::from_json_value(&Value::parse(bad_size).unwrap()).is_err());
        let bad_coll = r#"{"topology":"dgx1","collective":"all2all","output_buffer":1024}"#;
        assert!(SolveRequest::from_json_value(&Value::parse(bad_coll).unwrap()).is_err());
    }
}
