//! The TCP front end: a thread-per-connection line server over
//! [`crate::protocol`], backed by a shared [`ScheduleService`].
//!
//! Connection threads block inside [`ScheduleService::request`] while a solve
//! is in flight, so N clients asking for the same schedule cost one solve and
//! N (cheap) parked threads — the single-flight logic lives in the service,
//! not here.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::protocol::{
    error_response, evict_response, parse_request, request_error_response, solve_response,
    stats_response, Request,
};
use crate::service::ScheduleService;

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`] (the daemon).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<ScheduleService>,
}

impl ServerHandle {
    /// The address the server actually bound (relevant with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backing service (e.g. to read stats in-process).
    pub fn service(&self) -> &Arc<ScheduleService> {
        &self.service
    }

    /// Blocks until the accept loop exits (i.e. forever, short of
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections and shuts the service down. Connections
    /// that are already established finish their current request and then
    /// fail on the next one.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.service.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves the
/// protocol on it with the given service.
pub fn serve(
    addr: impl ToSocketAddrs,
    service: Arc<ScheduleService>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_service = Arc::clone(&service);
    let accept_thread = std::thread::Builder::new()
        .name("teccld-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&accept_service);
                let _ = std::thread::Builder::new()
                    .name("teccld-conn".into())
                    .spawn(move || handle_connection(stream, &service));
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        service,
    })
}

/// Serves one connection until EOF or a write error.
fn handle_connection(stream: TcpStream, service: &ScheduleService) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(e) => request_error_response(&e),
            Ok(Request::Stats) => stats_response(&service.stats()),
            Ok(Request::Evict) => evict_response(service.evict()),
            Ok(Request::Solve(req)) => match service.request(*req) {
                Ok(served) => solve_response(&served),
                Err(e) => error_response(&e.to_string()),
            },
        };
        // Fault injection: hang up instead of answering (the request itself
        // was fully processed — clients must treat a dropped connection as
        // retriable, and a retry is served from cache).
        if service.fault_plan().should_drop_connection() {
            return;
        }
        if writer
            .write_all(format!("{}\n", response.to_json()).as_bytes())
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}
