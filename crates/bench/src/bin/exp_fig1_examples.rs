//! Figure 1 (a, b, c): the three motivating examples — α-delay accounting,
//! store-and-forward, and copy — reproduced end to end with the solver and the
//! α–β simulator.
use teccl_bench::{print_table, quick_config, run_shortest_path, run_teccl, Method, Row, Scenario};
use teccl_collective::DemandMatrix;
use teccl_topology::NodeId;

fn main() {
    let mut rows = Vec::new();

    // (a) alpha-delay: two sources feeding d; the correct finish time is
    // alpha2 + 3*beta, not alpha2 + 4*beta (the path-max estimate).
    let chunk = 1.0e6;
    let alpha1 = 0.05e-3;
    let topo = teccl_topology::fig1a(chunk, alpha1);
    let mut demand = DemandMatrix::new(topo.num_nodes(), 1);
    demand.set(NodeId(0), 0, NodeId(4)); // s1 -> d
    demand.set(NodeId(5), 0, NodeId(4)); // s2 -> d
    let scenario = Scenario {
        name: "fig1a".into(),
        topo: topo.clone(),
        demand,
        chunk_bytes: chunk,
        output_buffer: 2.0 * chunk,
    };
    if let Some(run) = run_teccl(&scenario, &quick_config(), Method::Milp) {
        let beta = chunk / 1.0e9;
        let alpha2 = 2.0 * beta + 3.0 * alpha1;
        rows.push(Row {
            labels: vec!["fig1a".into()],
            values: vec![
                run.transfer_time * 1e3,
                (alpha2 + 3.0 * beta) * 1e3,
                (alpha2 + 4.0 * beta) * 1e3,
            ],
        });
    }

    // (b) store-and-forward: 3 sources -> h -> d; demand finishes in 3 "units"
    // with or without buffering, buffers only change the solution space.
    let topo = teccl_topology::fig1b(1.0e9);
    let mut demand = DemandMatrix::new(topo.num_nodes(), 1);
    for s in 0..3 {
        demand.set(NodeId(s), 0, NodeId(4));
    }
    let scenario = Scenario {
        name: "fig1b".into(),
        topo,
        demand,
        chunk_bytes: chunk,
        output_buffer: 3.0 * chunk,
    };
    if let Some(run) = run_teccl(&scenario, &quick_config(), Method::Milp) {
        rows.push(Row {
            labels: vec!["fig1b".into()],
            values: vec![run.transfer_time * 1e3, 3.0, 3.0],
        });
    }

    // (c) copy: s -> h -> {d1,d2,d3}; with copy 2 units, without copy 4 units.
    let topo = teccl_topology::fig1c(1.0e9);
    let mut demand = DemandMatrix::new(topo.num_nodes(), 1);
    for d in 2..5 {
        demand.set(NodeId(0), 0, NodeId(d));
    }
    let scenario = Scenario {
        name: "fig1c".into(),
        topo,
        demand,
        chunk_bytes: chunk,
        output_buffer: chunk,
    };
    let with_copy = run_teccl(&scenario, &quick_config(), Method::Milp);
    let without_copy = run_shortest_path(&scenario);
    if let (Some(w), Some(wo)) = (with_copy, without_copy) {
        rows.push(Row {
            labels: vec!["fig1c".into()],
            values: vec![
                w.transfer_time * 1e3,
                wo.bytes_on_wire / 1e6,
                w.bytes_on_wire / 1e6,
            ],
        });
    }

    print_table(
        "Figure 1: motivating examples",
        &["example"],
        &[
            "teccl_finish_ms_or_units",
            "expected/correct",
            "naive_estimate_or_bytes",
        ],
        &rows,
    );
}
