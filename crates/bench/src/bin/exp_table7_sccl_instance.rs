//! Table 7 (Appendix G): SCCL `instance` mode vs TE-CCL on a DGX-1 with
//! alpha = 0 and 25 KB chunks.
use teccl_bench::{print_table, table7_rows};

fn main() {
    let rows = table7_rows(3);
    print_table(
        "Table 7: SCCL instance vs TE-CCL (alpha = 0)",
        &["collective (#chunks)"],
        &["sccl_solver_s", "teccl_solver_s", "transfer_diff_%"],
        &rows,
    );
}
