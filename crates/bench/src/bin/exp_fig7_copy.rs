//! Figure 7: the benefit of in-network copy — collective finish time with copy
//! (MILP/A*) vs without copy (LP, per-destination unicast) across sizes.
use teccl_bench::{fig7_rows, print_table};

fn main() {
    let sizes: Vec<f64> = [256e3, 1e6, 4e6, 16e6].to_vec();
    let rows = fig7_rows(&sizes);
    print_table(
        "Figure 7: copy vs no-copy collective finish time (ms)",
        &["topology", "output_buffer"],
        &["size_MB", "with_copy_ms", "no_copy_ms"],
        &rows,
    );
}
