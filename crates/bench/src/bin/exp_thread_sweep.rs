//! Thread sweep: solver wall-clock for the 8-GPU Table-4 scenarios and the
//! wide-tree knapsack B&B at 1/2/4/8 intra-solve threads (EXPERIMENTS.md's
//! "Intra-request thread sweep" table). The header prints the machine's
//! available parallelism — on a single-core container the sweep records the
//! knob's *safety* (identical answers, bounded overhead), not a speedup.

use teccl_bench::{print_table, thread_sweep_rows};

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available parallelism: {cores} core(s)");
    let threads = [1usize, 2, 4, 8];
    let rows = thread_sweep_rows(&threads);
    print_table(
        "Intra-request thread sweep (solver seconds)",
        &["case"],
        &["t=1", "t=2", "t=4", "t=8"],
        &rows,
    );
}
