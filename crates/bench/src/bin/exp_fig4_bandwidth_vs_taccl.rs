//! Figure 4: algorithmic-bandwidth improvement of TE-CCL over the TACCL-like
//! baseline across output-buffer sizes, per topology and collective.
use teccl_bench::{fig4_fig5_rows, print_table};

fn main() {
    let sizes: Vec<f64> = ["16M", "4M", "1M", "256K", "64K"]
        .iter()
        .map(|s| teccl_collective::chunk::parse_size(s).unwrap())
        .collect();
    let rows = fig4_fig5_rows(&sizes);
    print_table(
        "Figure 4: algo-bandwidth improvement over TACCL (%)",
        &["topology", "collective", "output_buffer"],
        &[
            "bw_improvement_%",
            "solver_speedup_%",
            "teccl_GBps",
            "taccl_GBps",
            "teccl_solver_s",
            "taccl_solver_s",
        ],
        &rows,
    );
}
