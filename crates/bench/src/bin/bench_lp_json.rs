//! Quick LP/MILP micro-bench harness emitting machine-readable results.
//!
//! Runs the solver-critical benchmarks (a reduced-time version of
//! `benches/solver_benches.rs`) and writes `BENCH_lp.json` — a `{name:
//! median_ns}` object — so the perf trajectory of the LP hot path is tracked
//! across PRs with `cargo run -p teccl-bench --release --bin bench_lp_json`.

use std::time::Duration;

use teccl_bench::microbench::{BenchConfig, Harness};
use teccl_bench::{
    degenerate_alltoall_fixture, dual_resolve_fixture, print_table, quick_config, run_teccl,
    solver_stats_rows, warm_vs_cold_fixture, Method, Scenario, SOLVER_STATS_HEADERS,
};
use teccl_collective::CollectiveKind;

fn main() {
    let mut h = Harness::new(BenchConfig {
        measurement_time: Duration::from_secs(2),
        sample_count: 7,
        ..Default::default()
    });

    let lp_scenario = Scenario::collective(
        "lp-internal2x2-atoa",
        teccl_topology::internal2(2),
        CollectiveKind::AllToAll,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("lp_form/internal2x2_alltoall", || {
        run_teccl(&lp_scenario, &quick_config(), Method::Lp).unwrap();
    });

    let milp_scenario = Scenario::collective(
        "milp-internal1x1-ag",
        teccl_topology::internal1(1),
        CollectiveKind::AllGather,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("milp_form/internal1_allgather", || {
        run_teccl(&milp_scenario, &quick_config(), Method::Milp).unwrap();
    });

    let (sf, nv, basis, overrides) = warm_vs_cold_fixture();
    h.bench_function("lp/simplex_warm_vs_cold", || {
        teccl_lp::solve_standard_form_from(&sf, nv, &overrides, Some(&basis)).unwrap();
    });
    h.bench_function("lp/simplex_cold_resolve", || {
        teccl_lp::solve_standard_form_from(&sf, nv, &overrides, None).unwrap();
    });

    // Dual re-solve: a tightened *active* bound, so the warm basis is primal
    // infeasible and the dual simplex takes real pivots (the B&B pattern).
    let (dsf, dnv, dbasis, doverrides) = dual_resolve_fixture();
    h.bench_function("lp/dual_resolve", || {
        let sol =
            teccl_lp::solve_standard_form_from(&dsf, dnv, &doverrides, Some(&dbasis)).unwrap();
        assert!(sol.has_solution());
        assert_eq!(sol.stats.warm_starts, 1, "dual path must not fall cold");
    });

    // Degenerate ALLTOALL cold solve — the CI gate for the anti-degeneracy
    // machinery (EXPAND ratio test): the process aborts (failing the bench
    // smoke) if the instance stalls past its iteration budget or trips the
    // simplex iteration limit.
    let (gsf, gnv, budget) = degenerate_alltoall_fixture();
    h.bench_function("lp/degenerate_alltoall", || {
        let sol = teccl_lp::solve_standard_form(&gsf, gnv).unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        assert!(
            !sol.stats.iteration_limit_hit,
            "degenerate ALLTOALL hit the simplex iteration limit"
        );
        assert!(
            sol.stats.simplex_iterations <= budget,
            "degenerate ALLTOALL regressed: {} iterations (budget {budget})",
            sol.stats.simplex_iterations
        );
    });

    // Solver counters alongside the timings: the warm/cold split is the perf
    // claim, so regressions must be visible here too.
    print_table(
        "Solver stats",
        &["scenario"],
        &SOLVER_STATS_HEADERS,
        &solver_stats_rows(),
    );

    let json = h.to_json().to_json_pretty();
    let path = "BENCH_lp.json";
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_lp.json");
    println!("\nwrote {path}");
}
