//! Quick LP/MILP micro-bench harness emitting machine-readable results.
//!
//! Runs the solver-critical benchmarks (a reduced-time version of
//! `benches/solver_benches.rs`) and writes `BENCH_lp.json` — a `{name:
//! median_ns}` object — so the perf trajectory of the LP hot path is tracked
//! across PRs with `cargo run -p teccl-bench --release --bin bench_lp_json`.

use std::time::Duration;

use teccl_bench::microbench::{BenchConfig, Harness};
use teccl_bench::{
    degenerate_alltoall_fixture, dual_resolve_fixture, print_table, quick_config, run_teccl,
    solver_stats_rows, warm_rounds_fixture, warm_vs_cold_fixture, Method, Scenario,
    SOLVER_STATS_HEADERS,
};
use teccl_collective::CollectiveKind;

fn main() {
    let mut h = Harness::new(BenchConfig {
        measurement_time: Duration::from_secs(2),
        sample_count: 7,
        ..Default::default()
    });

    let lp_scenario = Scenario::collective(
        "lp-internal2x2-atoa",
        teccl_topology::internal2(2),
        CollectiveKind::AllToAll,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("lp_form/internal2x2_alltoall", || {
        run_teccl(&lp_scenario, &quick_config(), Method::Lp).unwrap();
    });

    let milp_scenario = Scenario::collective(
        "milp-internal1x1-ag",
        teccl_topology::internal1(1),
        CollectiveKind::AllGather,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("milp_form/internal1_allgather", || {
        run_teccl(&milp_scenario, &quick_config(), Method::Milp).unwrap();
    });

    let (sf, nv, basis, overrides) = warm_vs_cold_fixture();
    h.bench_function("lp/simplex_warm_vs_cold", || {
        teccl_lp::solve_standard_form_from(&sf, nv, &overrides, Some(&basis)).unwrap();
    });
    h.bench_function("lp/simplex_cold_resolve", || {
        teccl_lp::solve_standard_form_from(&sf, nv, &overrides, None).unwrap();
    });

    // Dual re-solve: a tightened *active* bound, so the warm basis is primal
    // infeasible and the dual simplex takes real pivots (the B&B pattern).
    let (dsf, dnv, dbasis, doverrides) = dual_resolve_fixture();
    h.bench_function("lp/dual_resolve", || {
        let sol =
            teccl_lp::solve_standard_form_from(&dsf, dnv, &doverrides, Some(&dbasis)).unwrap();
        assert!(sol.has_solution());
        assert_eq!(sol.stats.warm_starts, 1, "dual path must not fall cold");
    });

    // Degenerate ALLTOALL cold solve — the CI gate for the anti-degeneracy
    // machinery (EXPAND ratio test): the process aborts (failing the bench
    // smoke) if the instance stalls past its iteration budget or trips the
    // simplex iteration limit.
    let (gsf, gnv, budget) = degenerate_alltoall_fixture();
    // The same instance with the perturbed pre-pass disabled: a pure
    // projected-steepest-edge phase-2 walk, tracking the pricing core on its
    // own (the perturbation otherwise absorbs most of the pivots).
    let se_opts = teccl_lp::SimplexOptions {
        pricing: teccl_lp::PricingRule::SteepestEdge,
        perturb_min_rows: usize::MAX,
        perturb_seed: 0,
    };
    h.bench_function("lp/steepest_edge_phase2", || {
        let sol = teccl_lp::solve_standard_form_with_options(&gsf, gnv, &[], None, None, &se_opts)
            .unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
    });
    h.bench_function("lp/degenerate_alltoall", || {
        let sol = teccl_lp::solve_standard_form(&gsf, gnv).unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        assert!(
            !sol.stats.iteration_limit_hit,
            "degenerate ALLTOALL hit the simplex iteration limit"
        );
        assert!(
            sol.stats.simplex_iterations <= budget,
            "degenerate ALLTOALL regressed: {} iterations (budget {budget})",
            sol.stats.simplex_iterations
        );
    });

    // Parallel branch-and-bound: the same wide-tree knapsack at 1 and 4
    // threads. The speedup ratio is pushed into BENCH_lp.json as
    // `lp/parallel_bnb_speedup`; the >=1.5x gate only arms on machines that
    // can physically parallelize (4+ cores) — elsewhere the skip is printed,
    // never silently swallowed.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bnb = teccl_bench::parallel_bnb_fixture();
    let solve_bnb = |threads: usize| {
        let sol = bnb
            .solve_with(&teccl_lp::MilpConfig {
                threads,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        sol.objective
    };
    let obj_1t = solve_bnb(1);
    let obj_4t = solve_bnb(4);
    assert!(
        (obj_1t - obj_4t).abs() < 1e-6,
        "thread-count invariance broken on the bench instance: {obj_1t} vs {obj_4t}"
    );
    h.bench_function("lp/parallel_bnb_1thread", || {
        solve_bnb(1);
    });
    h.bench_function("lp/parallel_bnb_4threads", || {
        solve_bnb(4);
    });

    // Portfolio race on the degenerate ALLTOALL: 2 racers (steepest-edge vs
    // devex) against the solo default solve measured above. The
    // never-slower-than-solo gate likewise needs 2+ cores to be meaningful.
    h.bench_function("lp/portfolio_race", || {
        let sol = teccl_lp::race_lp(&gsf, gnv, &[], None, None, 2).unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
    });

    // Dantzig-Wolfe rows on the 8-GPU internal1(2) ALLTOALL: one warm
    // pricing round (the per-round unit of work), the full decomposed solve
    // at 1 and 4 pricing threads, and the monolithic solve of the same model
    // for the `lp/dw_vs_monolithic` ratio. Correctness is asserted inline:
    // the decomposed objective must certify against the monolithic one.
    let dw_form = teccl_bench::dw_alltoall_fixture();
    let dw_structure = dw_form
        .block_structure()
        .expect("fixture splits into blocks");
    let dw_mono = dw_form
        .model
        .solve_lp_relaxation()
        .expect("monolithic baseline solves");
    let solve_dw = |threads: usize| {
        let sol = teccl_lp::solve_decomposed(
            &dw_form.model,
            &dw_structure,
            None,
            &teccl_lp::DecompOptions {
                threads,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        assert!(
            sol.stats.dw_rounds > 0,
            "bench row must genuinely decompose"
        );
        assert!(
            (sol.objective - dw_mono.objective).abs() <= 1e-6 * dw_mono.objective.abs().max(1.0),
            "decomposed bench row drifted from monolithic: {} vs {}",
            sol.objective,
            dw_mono.objective
        );
    };
    solve_dw(1);
    solve_dw(4);
    {
        // One *warm* pricing round: per-block re-solves under alternating
        // coupling duals, each restarting from the previous round's basis —
        // the steady-state cost every column-generation round pays.
        let nblocks = dw_structure.num_blocks;
        let mut probs: Vec<teccl_lp::decomp::pricing::PricingProblem> = (0..nblocks)
            .map(|s| {
                teccl_lp::decomp::pricing::PricingProblem::build(&dw_form.model, &dw_structure, s)
            })
            .collect();
        let zeros = vec![0.0; dw_structure.coupling_rows.len()];
        let ones = vec![1.0; dw_structure.coupling_rows.len()];
        teccl_lp::decomp::pricing::price_round(&mut probs, &zeros, 4, None);
        let mut flip = false;
        h.bench_function("lp/dw_pricing_round", || {
            flip = !flip;
            let y = if flip { &ones } else { &zeros };
            let out = teccl_lp::decomp::pricing::price_round(&mut probs, y, 4, None);
            assert_eq!(out.len(), nblocks);
            assert!(out.iter().all(|r| r.is_ok()));
        });
    }
    h.bench_function("lp/dw_1thread", || solve_dw(1));
    h.bench_function("lp/dw_4threads", || solve_dw(4));
    h.bench_function("lp/dw_monolithic", || {
        let sol = dw_form.model.solve_lp_relaxation().unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
    });

    // A* cross-round warm starts with presolve ON (the layout-preserving
    // presolve keeps the carried root basis valid round to round). The warm
    // run must stay on the warm path — at most the first round may start
    // cold — and must not spend more simplex iterations than the all-cold
    // run; either regression aborts the process and fails CI's bench smoke.
    let (wr_scenario, wr_warm_cfg, wr_cold_cfg) = warm_rounds_fixture();
    let cold_rounds = run_teccl(&wr_scenario, &wr_cold_cfg, Method::AStar)
        .expect("warm-rounds fixture solves cold");
    h.bench_function("lp/presolve_cold_rounds", || {
        run_teccl(&wr_scenario, &wr_cold_cfg, Method::AStar).unwrap();
    });
    h.bench_function("lp/presolve_warm_rounds", || {
        let warm = run_teccl(&wr_scenario, &wr_warm_cfg, Method::AStar).unwrap();
        assert!(
            warm.warm_starts > 0,
            "A* rounds fell off the warm path entirely"
        );
        assert!(
            warm.cold_starts <= 1,
            "warm rounds went cold {} times (only the first round may)",
            warm.cold_starts
        );
        assert!(
            warm.simplex_iterations <= cold_rounds.simplex_iterations,
            "warm rounds spent more iterations than cold ({} vs {})",
            warm.simplex_iterations,
            cold_rounds.simplex_iterations
        );
    });

    // Schedule service: steady-state cache-hit latency and batch throughput
    // at a fixed hit ratio (one evicted key per 64-request batch → exactly
    // one solve per batch). The hit bench is a CI gate: a hit that falls off
    // the no-solve path (any cache status but Hit, or a moved solve counter)
    // aborts the process and fails the bench smoke.
    {
        use teccl_service::CacheStatus;
        let (svc, pool) = teccl_bench::service_bench_fixture();
        for req in &pool {
            svc.request(req.clone()).expect("fixture request solves");
        }
        let hot = pool[1].clone();
        let solves_before = svc.stats().solves;
        h.bench_function("service/cache_hit_latency", || {
            let served = svc.request(hot.clone()).expect("hit");
            assert_eq!(
                served.cache,
                CacheStatus::Hit,
                "cache hit fell off the no-solve path"
            );
        });
        let stats = svc.stats();
        assert_eq!(
            stats.solves, solves_before,
            "cache hits must not invoke the solver (solves {} -> {})",
            solves_before, stats.solves
        );
        assert_eq!(stats.solve_errors, 0);

        let cold_key = pool[0].key().hash;
        h.bench_function("service/throughput", || {
            svc.evict_key(cold_key);
            let tickets: Vec<_> = (0..64)
                .map(|i| svc.submit(pool[i % pool.len()].clone()))
                .collect();
            for t in tickets {
                t.wait().expect("batch request solves");
            }
        });

        // Degraded fallback: an already-expired deadline on a request whose
        // exact solve takes tens of seconds must descend the ladder to the
        // instant baseline — without a single simplex pivot. CI gate: any
        // pivot on this path aborts the process and fails the bench smoke.
        let (fb_svc, fb_req) = teccl_bench::degraded_fallback_fixture();
        let fb_hash = fb_req.key().hash;
        h.bench_function("service/degraded_fallback_latency", || {
            fb_svc.evict_key(fb_hash);
            let served = fb_svc.request(fb_req.clone()).expect("fallback serves");
            assert_eq!(served.quality, teccl_service::Quality::Baseline);
        });
        assert_eq!(
            fb_svc.stats().solve_simplex_iterations,
            0,
            "the baseline fallback must never touch the simplex"
        );
        fb_svc.shutdown();
    }

    // Solver counters alongside the timings: the warm/cold split is the perf
    // claim, so regressions must be visible here too.
    print_table(
        "Solver stats",
        &["scenario"],
        &SOLVER_STATS_HEADERS,
        &solver_stats_rows(),
    );

    // LU fill-in of the degenerate instance's optimal basis: the metric the
    // Markowitz tie-breaking in `LuFactors::factorize` optimizes. Tracked in
    // BENCH_lp.json (`lu_fill_nnz` vs the basis matrix's own `lu_basis_nnz`)
    // so fill regressions show up across PRs.
    let (lu_m, basis_cols) = teccl_bench::lu_refactor_fixture();
    let mut lu =
        teccl_lp::LuFactors::factorize(lu_m, &basis_cols).expect("optimal basis factorizes");
    let basis_nnz: usize = basis_cols.iter().map(|c| c.indices.len()).sum();
    let fill_nnz = lu.fill_nnz();
    // Exercise a solve so the factors are demonstrably usable.
    let mut probe = vec![1.0; lu_m];
    lu.ftran(&mut probe);
    println!(
        "\nlp/lu_fill: basis nnz {basis_nnz} -> L+U nnz {fill_nnz} ({:.2}x)",
        fill_nnz as f64 / basis_nnz as f64
    );

    // The eta-accumulation → fill-triggered-refactorization cycle: identity
    // column replacements build up the eta file until the fill-aware trigger
    // fires, then the basis is refactorized from scratch (the Gilbert–Peierls
    // path). This is the steady-state cost the refactorization policy pays.
    h.bench_function("lp/lu_refactor_fill", || {
        let mut lu = teccl_lp::LuFactors::factorize(lu_m, &basis_cols).unwrap();
        let mut r = 0usize;
        while !lu.needs_refactor() {
            let mut w = vec![0.0; lu_m];
            for (pos, &i) in basis_cols[r].indices.iter().enumerate() {
                w[i] = basis_cols[r].values[pos];
            }
            // Replacing column r with itself: w = B⁻¹ B e_r = e_r, so the
            // update is always well-pivoted and the basis never degrades.
            lu.ftran(&mut w);
            lu.update(&w, r).unwrap();
            r = (r + 1) % lu_m;
        }
        let fresh = teccl_lp::LuFactors::factorize(lu_m, &basis_cols).unwrap();
        assert!(fresh.fill_nnz() > 0);
    });

    let mut json = h.to_json();
    if let teccl_util::json::Value::Obj(pairs) = &mut json {
        pairs.push((
            "lp/lu_basis_nnz".to_string(),
            teccl_util::json::Value::from(basis_nnz),
        ));
        pairs.push((
            "lp/lu_fill_nnz".to_string(),
            teccl_util::json::Value::from(fill_nnz),
        ));
    }

    // Thread metadata + the derived speedup ratios, so a reader of
    // BENCH_lp.json can tell whether the parallel rows were measured on a
    // machine where parallelism was physically possible.
    let median = |v: &teccl_util::json::Value, name: &str| -> Option<f64> {
        v.get(name).and_then(teccl_util::json::Value::as_f64)
    };
    let bnb_1t = median(&json, "lp/parallel_bnb_1thread").expect("1-thread row measured");
    let bnb_4t = median(&json, "lp/parallel_bnb_4threads").expect("4-thread row measured");
    let speedup = bnb_1t / bnb_4t;
    let dw_1t = median(&json, "lp/dw_1thread").expect("dw 1-thread row measured");
    let dw_4t = median(&json, "lp/dw_4threads").expect("dw 4-thread row measured");
    let mono_ns = median(&json, "lp/dw_monolithic").expect("dw monolithic row measured");
    let dw_speedup = dw_1t / dw_4t;
    let dw_vs_mono = mono_ns / dw_4t;
    if let teccl_util::json::Value::Obj(pairs) = &mut json {
        pairs.push((
            "meta/threads_available".to_string(),
            teccl_util::json::Value::from(cores),
        ));
        pairs.push((
            "lp/parallel_bnb_speedup".to_string(),
            teccl_util::json::Value::Num(speedup),
        ));
        pairs.push((
            "lp/dw_speedup".to_string(),
            teccl_util::json::Value::Num(dw_speedup),
        ));
        pairs.push((
            "lp/dw_vs_monolithic".to_string(),
            teccl_util::json::Value::Num(dw_vs_mono),
        ));
    }

    // The machine-aware gates. Each gate's armed/skipped disposition is
    // recorded *in the json* as a `meta/gate_*` row — a skip that only goes
    // to stdout vanishes the moment the terminal scrolls, and a reader of a
    // committed BENCH_lp.json could not tell a passed gate from one that
    // never armed. The assert still fires on machines where the gate arms.
    let gate = |json: &mut teccl_util::json::Value,
                name: &str,
                need_cores: usize,
                detail: String,
                check: &dyn Fn()| {
        let armed = cores >= need_cores;
        let status = if armed {
            "armed".to_string()
        } else {
            format!("skipped: {cores} core(s) available, need {need_cores}")
        };
        if let teccl_util::json::Value::Obj(pairs) = json {
            pairs.push((
                format!("meta/gate_{name}"),
                teccl_util::json::Value::Str(status.clone()),
            ));
        }
        if armed {
            check();
            println!("lp/{name}: {detail} ({cores} cores) — gate passed");
        } else {
            println!("lp/{name}: {detail} — gate SKIPPED ({status})");
        }
    };

    // Gate: parallel B&B must actually pay for its coordination — >=1.5x at
    // 4 threads — wherever 4 cores exist. On smaller machines no speedup is
    // physically possible, so the gate is skipped loudly and visibly.
    gate(
        &mut json,
        "parallel_bnb_speedup",
        4,
        format!("{speedup:.2}x at 4 threads"),
        &|| {
            assert!(
                speedup >= 1.5,
                "parallel B&B speedup gate: {speedup:.2}x at 4 threads on {cores} cores (need >=1.5x)"
            );
        },
    );

    // Gate: the portfolio race must never lose to the solo default solve on
    // the degenerate ALLTOALL (25% scheduler-noise allowance). Racing on one
    // core just timeshares the racers, so this too needs real parallelism.
    let race_ns = median(&json, "lp/portfolio_race").expect("race row measured");
    let solo_ns = median(&json, "lp/degenerate_alltoall").expect("solo row measured");
    gate(
        &mut json,
        "portfolio_race",
        2,
        format!("{:.2} ms vs solo {:.2} ms", race_ns / 1e6, solo_ns / 1e6),
        &|| {
            assert!(
                race_ns <= solo_ns * 1.25,
                "portfolio race slower than solo steepest-edge: {:.2} ms vs {:.2} ms",
                race_ns / 1e6,
                solo_ns / 1e6
            );
        },
    );

    // Gate: parallel pricing must earn its keep — the decomposed 8-GPU
    // ALLTOALL solve >=1.5x faster at 4 pricing threads than at 1 — wherever
    // 4 cores exist.
    gate(
        &mut json,
        "dw_speedup",
        4,
        format!("{dw_speedup:.2}x at 4 threads, {dw_vs_mono:.2}x vs monolithic"),
        &|| {
            assert!(
                dw_speedup >= 1.5,
                "DW pricing speedup gate: {dw_speedup:.2}x at 4 threads on {cores} cores (need >=1.5x)"
            );
        },
    );

    // Gate 1: the warm-rounds win must hold. `lp/presolve_warm_rounds` once
    // regressed to slower-than-cold without anything failing; now the smoke
    // aborts if the warm median ever exceeds the cold median again.
    let warm_ns = median(&json, "lp/presolve_warm_rounds").expect("warm row measured");
    let cold_ns = median(&json, "lp/presolve_cold_rounds").expect("cold row measured");
    assert!(
        warm_ns <= cold_ns,
        "presolve_warm_rounds regressed past cold again: warm {:.1} ms vs cold {:.1} ms",
        warm_ns / 1e6,
        cold_ns / 1e6
    );

    // Gate 2: >25% regression against the committed medians for the gated LP
    // rows. Sub-millisecond rows get a 2x allowance instead — at that scale
    // scheduler noise alone crosses 25% on shared CI runners.
    let path = "BENCH_lp.json";
    let gated = [
        "lp_form/internal2x2_alltoall",
        "lp/degenerate_alltoall",
        "lp/steepest_edge_phase2",
        "lp/lu_refactor_fill",
        "lp/presolve_warm_rounds",
        "lp/presolve_cold_rounds",
        "lp/parallel_bnb_1thread",
        "lp/portfolio_race",
        "lp/dw_pricing_round",
        "lp/dw_1thread",
        "lp/dw_monolithic",
    ];
    if let Some(committed) = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| teccl_util::json::Value::parse(&t).ok())
    {
        for name in gated {
            let (Some(old), Some(new)) = (median(&committed, name), median(&json, name)) else {
                continue; // row added after the committed baseline
            };
            let allowance = if old < 1e6 { 2.0 } else { 1.25 };
            assert!(
                new <= old * allowance,
                "{name} regressed >{:.0}% vs committed BENCH_lp.json: {:.2} ms -> {:.2} ms",
                (allowance - 1.0) * 100.0,
                old / 1e6,
                new / 1e6
            );
        }
    }

    let json = json.to_json_pretty();
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_lp.json");
    println!("\nwrote {path}");
}
