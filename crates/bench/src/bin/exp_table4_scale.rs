//! Table 4: TE-CCL solver times on the larger topologies (reduced scale —
//! the paper runs 64-256 GPUs with Gurobi; this reproduction's built-in solver
//! runs the same formulations on 8-16 GPUs).
use teccl_bench::{print_table, table4_rows};

fn main() {
    let rows = table4_rows();
    print_table(
        "Table 4: scale runs (TACCL-free)",
        &["topology / collective"],
        &[
            "gpus",
            "epoch_multiplier",
            "solver_s",
            "transfer_us",
            "simplex_iters",
            "warm_starts",
            "cold_starts",
            "cols_fixed",
            "rows_freed",
            "node_tight",
            "iter_limit",
        ],
        &rows,
    );
    // Rows that exhausted a simplex iteration budget rest on an uncertified
    // incumbent; they are labelled "(ITER-LIMIT)" above and flagged in the
    // `iter_limit` column rather than silently printed as converged.
    if rows.iter().any(|r| *r.values.last().unwrap() > 0.0) {
        println!("\nWARNING: rows marked (ITER-LIMIT) are uncertified (simplex budget hit).");
    }
}
