//! Figure 9: store-and-forward buffers on vs off — effect on solver time and
//! schedule quality.
use teccl_bench::{fig9_rows, print_table};

fn main() {
    let rows = fig9_rows();
    print_table(
        "Figure 9: buffers vs no buffers (100*(without-with)/without)",
        &["topology"],
        &[
            "solver_time_speedup_%",
            "transfer_time_delta_%",
            "with_buffers_us",
            "without_buffers_us",
        ],
        &rows,
    );
}
