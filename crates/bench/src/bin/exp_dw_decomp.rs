//! Monolithic vs Dantzig-Wolfe decomposed solves of the Table-4 ALLTOALL
//! rows (EXPERIMENTS.md's "Dantzig-Wolfe decomposition" table), through the
//! real `SolverConfig::decompose` wiring. The header prints the machine's
//! available parallelism — on a single-core container the decomposed columns
//! record the knob's *safety* (identical objectives, bounded overhead), not
//! a speedup; the ≥1.5× pricing gate in `bench_lp_json` arms only at ≥4
//! cores. The 16-GPU row is deliberately absent for the same reason as in
//! the thread sweep: at ~375 s per monolithic solve the sweep is CI-hostile.

use teccl_bench::{print_table, quick_config, run_teccl, Method, Row, Scenario};
use teccl_collective::CollectiveKind;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available parallelism: {cores} core(s)");
    let cases = [
        ("Internal1 x2 AtoA", teccl_topology::internal1(2)),
        ("Internal2 x4 AtoA", teccl_topology::internal2(4)),
    ];
    // (decompose, threads) per column; mono first so each row's baseline is
    // measured on the same warm caches as its decomposed columns.
    let columns = [
        (teccl_core::Decompose::Off, 1usize),
        (teccl_core::Decompose::On, 1),
        (teccl_core::Decompose::On, 2),
        (teccl_core::Decompose::On, 4),
    ];
    let mut rows = Vec::new();
    for (name, topo) in cases {
        let scenario = Scenario::collective(
            name,
            topo,
            CollectiveKind::AllToAll,
            1,
            16.0 * 1024.0 * 1024.0,
        );
        let mut values = Vec::new();
        let mut rounds = Vec::new();
        for (decompose, threads) in columns {
            let mut config = quick_config();
            config.decompose = decompose;
            config.threads = threads;
            match run_teccl(&scenario, &config, Method::Lp) {
                Some(o) => {
                    values.push(o.solver_time);
                    rounds.push(o.dw_rounds as f64);
                }
                None => {
                    values.push(f64::NAN);
                    rounds.push(f64::NAN);
                }
            }
        }
        // `dw_rounds == 0` on a decomposed column means `solve_decomposed`
        // fell back to the monolithic path — the time then measures the
        // failed generation attempt plus the fallback, and must say so.
        values.extend(rounds.into_iter().skip(1));
        rows.push(Row {
            labels: vec![name.to_string()],
            values,
        });
    }
    print_table(
        "Monolithic vs decomposed ALLTOALL (solver seconds; rounds = CG rounds, 0 = monolithic fallback)",
        &["case"],
        &[
            "mono t=1", "dw t=1", "dw t=2", "dw t=4", "rounds t=1", "rounds t=2", "rounds t=4",
        ],
        &rows,
    );
}
