//! Figure 2: relative error in the algorithmic-bandwidth estimate when the
//! α-delay is ignored, as a function of transfer size (2-chassis, 8-GPU,
//! 40-edge internal topology; α = 0.6/0.75 µs).
use teccl_bench::{fig2_rows, print_table};

fn main() {
    let sizes: Vec<f64> = [10e3, 100e3, 1e6, 10e6].to_vec();
    let rows = fig2_rows(&sizes);
    print_table(
        "Figure 2: relative error of the alpha-free bandwidth estimate",
        &["transfer"],
        &["transfer_MB", "relative_error_%"],
        &rows,
    );
}
