//! Figure 8: small (fastest-link) vs large (slowest-link) epoch durations —
//! effect on solver time and on schedule quality.
use teccl_bench::{fig8_rows, print_table};

fn main() {
    let rows = fig8_rows();
    print_table(
        "Figure 8: small vs large epochs (100*(small-large)/large)",
        &["topology, collective"],
        &[
            "solver_time_delta_%",
            "transfer_time_delta_%",
            "small_transfer_us",
            "large_transfer_us",
        ],
        &rows,
    );
}
