//! Figure 5: solver-time speedup of TE-CCL over the TACCL-like baseline for
//! the same scenarios as Figure 4.
use teccl_bench::{fig4_fig5_rows, print_table, solver_stats_rows, SOLVER_STATS_HEADERS};

fn main() {
    let sizes: Vec<f64> = ["16M", "1M", "64K"]
        .iter()
        .map(|s| teccl_collective::chunk::parse_size(s).unwrap())
        .collect();
    let rows = fig4_fig5_rows(&sizes);
    print_table(
        "Figure 5: solver-time comparison vs TACCL",
        &["topology", "collective", "output_buffer"],
        &[
            "bw_improvement_%",
            "solver_speedup_%",
            "teccl_GBps",
            "taccl_GBps",
            "teccl_solver_s",
            "taccl_solver_s",
        ],
        &rows,
    );
    print_table(
        "Solver stats",
        &["scenario"],
        &SOLVER_STATS_HEADERS,
        &solver_stats_rows(),
    );
}
