//! Table 8 (Appendix H): the full NDv2 sweep — epoch duration (ED), collective
//! time (CT), solver time (ST) and algorithmic bandwidth (AB) for TE-CCL and
//! the TACCL-like baseline across output-buffer sizes.
use teccl_bench::{print_table, table8_rows};

fn main() {
    let sizes: Vec<f64> = ["64M", "16M", "4M", "1M", "256K", "64K", "16K"]
        .iter()
        .map(|s| teccl_collective::chunk::parse_size(s).unwrap())
        .collect();
    let rows = table8_rows(&sizes);
    print_table(
        "Table 8: NDv2 sweep (TE-CCL vs TACCL-like)",
        &["collective", "output_buffer"],
        &[
            "ED_us",
            "CT_us",
            "ST_s",
            "AB_GBps",
            "taccl_CT_us",
            "taccl_ST_s",
            "taccl_AB_GBps",
            "improvement_%",
        ],
        &rows,
    );
}
