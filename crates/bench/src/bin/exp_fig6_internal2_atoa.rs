//! Figure 6: Internal-2 ALLTOALL across chassis counts — solver time and
//! algorithmic bandwidth vs the TACCL-like baseline.
use teccl_bench::{fig6_rows, print_table};

fn main() {
    let rows = fig6_rows(&[2, 3, 4], 4.0 * 1024.0 * 1024.0);
    print_table(
        "Figure 6: Internal2 ALLTOALL vs TACCL",
        &["chassis"],
        &[
            "solver_speedup_%",
            "bw_improvement_%",
            "teccl_solver_s",
            "taccl_solver_s",
        ],
        &rows,
    );
}
