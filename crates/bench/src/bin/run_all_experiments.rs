//! Runs the fast subset of every experiment in sequence (the full per-figure
//! binaries allow larger sweeps). Useful for regenerating EXPERIMENTS.md.
use teccl_bench::*;

fn main() {
    print_table(
        "Figure 2",
        &["transfer"],
        &["transfer_MB", "relative_error_%"],
        &fig2_rows(&[10e3, 1e6, 10e6]),
    );
    print_table(
        "Table 3",
        &["collective, #chunks"],
        &["sccl_us", "teccl_us"],
        &table3_rows(2),
    );
    let sizes = [4.0 * 1024.0 * 1024.0, 64.0 * 1024.0];
    print_table(
        "Figures 4 & 5",
        &["topology", "collective", "output_buffer"],
        &[
            "bw_improvement_%",
            "solver_speedup_%",
            "teccl_GBps",
            "taccl_GBps",
            "teccl_solver_s",
            "taccl_solver_s",
        ],
        &fig4_fig5_rows(&sizes),
    );
    print_table(
        "Figure 6",
        &["chassis"],
        &[
            "solver_speedup_%",
            "bw_improvement_%",
            "teccl_solver_s",
            "taccl_solver_s",
        ],
        &fig6_rows(&[2, 3], 1024.0 * 1024.0),
    );
    print_table(
        "Table 4",
        &["case"],
        &[
            "gpus",
            "EM",
            "solver_s",
            "transfer_us",
            "simplex_iters",
            "warm_starts",
            "cold_starts",
            "cols_fixed",
            "rows_freed",
            "node_tight",
            "iter_limit",
        ],
        &table4_rows(),
    );
    print_table(
        "Figure 7",
        &["topology", "size"],
        &["size_MB", "with_copy_ms", "no_copy_ms"],
        &fig7_rows(&[1e6, 16e6]),
    );
    print_table(
        "Figure 8",
        &["case"],
        &["solver_delta_%", "transfer_delta_%", "small_us", "large_us"],
        &fig8_rows(),
    );
    print_table(
        "Figure 9",
        &["case"],
        &[
            "solver_speedup_%",
            "transfer_delta_%",
            "with_us",
            "without_us",
        ],
        &fig9_rows(),
    );
    print_table(
        "A* vs OPT",
        &["alpha", "chunks"],
        &["astar_s", "opt_s", "astar_us", "opt_us"],
        &astar_vs_opt_rows(2, 1),
    );
    print_table(
        "Table 7",
        &["collective"],
        &["sccl_s", "teccl_s", "transfer_diff_%"],
        &table7_rows(2),
    );
    print_table(
        "Solver stats",
        &["scenario"],
        &SOLVER_STATS_HEADERS,
        &solver_stats_rows(),
    );
    print_table(
        "Table 8",
        &["collective", "size"],
        &[
            "ED_us",
            "CT_us",
            "ST_s",
            "AB_GBps",
            "taccl_CT_us",
            "taccl_ST_s",
            "taccl_AB_GBps",
            "improvement_%",
        ],
        &table8_rows(&[4.0 * 1024.0 * 1024.0, 64.0 * 1024.0]),
    );
}
