//! §6.3 "A* vs OPT": quality and solver time of the A* technique vs the
//! optimal MILP on an Internal-2 topology, with alpha = 0 and alpha > 0.
use teccl_bench::{astar_vs_opt_rows, print_table};

fn main() {
    let mut rows = astar_vs_opt_rows(2, 1);
    rows.extend(astar_vs_opt_rows(2, 2));
    print_table(
        "A* vs OPT (Internal2)",
        &["alpha", "chunks"],
        &[
            "astar_solver_s",
            "opt_solver_s",
            "astar_transfer_us",
            "opt_transfer_us",
        ],
        &rows,
    );
}
