//! Table 3: SCCL least-steps vs TE-CCL transfer time on a DGX-1 (25 KB chunks,
//! alpha = 0.7 us). The barrier-per-round baseline cannot pipeline chunks.
use teccl_bench::{print_table, table3_rows};

fn main() {
    let rows = table3_rows(3);
    print_table(
        "Table 3: SCCL vs TE-CCL transfer time (us)",
        &["collective, #chunks"],
        &["sccl_us", "teccl_us"],
        &rows,
    );
}
