#![forbid(unsafe_code)]
//! # teccl-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (§6, Appendices G/H), each returning printable rows, plus thin
//! binaries (`src/bin/exp_*.rs`) that print them. Criterion micro-benchmarks
//! for the solver live in `benches/`.
//!
//! Scale note: the paper solves its largest instances with Gurobi on an
//! 80-core, 512 GB machine; this reproduction ships its own simplex/B&B
//! substrate, so every experiment defaults to a reduced scale (single / dual
//! chassis, 1–2 chunks) that preserves the *shape* of the paper's results —
//! who wins, in which direction, and where the crossovers are. See
//! EXPERIMENTS.md for the recorded numbers.

pub mod microbench;

use std::time::Duration;

use teccl_baselines::{
    sccl_like_schedule, shortest_path_schedule, taccl_like_schedule, TacclConfig,
};
use teccl_collective::chunk::format_size;
use teccl_collective::{CollectiveKind, DemandMatrix};
use teccl_core::{BufferMode, EpochStrategy, SolverConfig, TeCcl};
use teccl_schedule::{percent_improvement, simulate};
use teccl_topology::{NodeId, Topology};

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Free-form labels (scenario, size, …), printed in order.
    pub labels: Vec<String>,
    /// Numeric columns, printed in order after the labels.
    pub values: Vec<f64>,
}

/// Prints rows as an aligned table with a header.
pub fn print_table(title: &str, label_headers: &[&str], value_headers: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    let header: Vec<String> = label_headers
        .iter()
        .map(|s| s.to_string())
        .chain(value_headers.iter().map(|s| s.to_string()))
        .collect();
    println!("{}", header.join("\t"));
    for row in rows {
        let cells: Vec<String> = row
            .labels
            .iter()
            .cloned()
            .chain(row.values.iter().map(|v| {
                if v.is_finite() {
                    format!("{v:.4}")
                } else {
                    "NA".to_string()
                }
            }))
            .collect();
        println!("{}", cells.join("\t"));
    }
}

/// Which solver to use for a TE-CCL run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Automatic dispatch ([`TeCcl::solve`]).
    Auto,
    /// The general MILP.
    Milp,
    /// The LP form.
    Lp,
    /// The A* technique.
    AStar,
}

/// The result of running one scheduler on one scenario.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheduler name.
    pub solver: String,
    /// Wall-clock solver time (seconds).
    pub solver_time: f64,
    /// Collective finish time from the α–β simulator (seconds).
    pub transfer_time: f64,
    /// Algorithmic bandwidth (bytes/second) for the scenario's output buffer.
    pub algo_bw: f64,
    /// Bytes placed on the wire.
    pub bytes_on_wire: f64,
    /// Epoch duration used (0 when not epoch based).
    pub epoch_duration: f64,
    /// Total simplex iterations across every LP solve of the run.
    pub simplex_iterations: usize,
    /// Dual-simplex iterations (warm re-solve pivots; subset of the total).
    pub dual_iterations: usize,
    /// Branch-and-bound nodes explored (0 for pure LPs).
    pub bb_nodes: usize,
    /// LU basis (re)factorizations performed.
    pub factorizations: usize,
    /// LP solves warm-started from a parent basis.
    pub warm_starts: usize,
    /// LP solves cold-started from the all-artificial phase-1 basis.
    pub cold_starts: usize,
    /// Columns the layout-preserving presolve fixed (`lb == ub` pins),
    /// summed across rounds for A*.
    pub cols_fixed: usize,
    /// Rows the layout-preserving presolve freed (slack relaxed), summed
    /// across rounds for A*.
    pub rows_freed: usize,
    /// Bound tightenings derived by the per-node presolve inside the
    /// branch-and-bound tree.
    pub node_tightenings: usize,
    /// Dantzig-Wolfe column-generation rounds (0 on the monolithic path —
    /// including when `solve_decomposed` fell back to it).
    pub dw_rounds: usize,
    /// Whether any simplex pass exhausted its iteration budget: the reported
    /// numbers then rest on an uncertified incumbent and the row must be
    /// labelled as such, never printed as converged.
    pub iteration_limit_hit: bool,
}

/// A benchmark scenario: a topology, a collective demand, and chunk sizing.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (for reporting).
    pub name: String,
    /// Topology.
    pub topo: Topology,
    /// Demand.
    pub demand: DemandMatrix,
    /// Chunk size in bytes.
    pub chunk_bytes: f64,
    /// Output buffer size in bytes (for algorithmic bandwidth).
    pub output_buffer: f64,
}

impl Scenario {
    /// Builds a scenario for a collective on a topology, using the paper's
    /// output-buffer-size parameterization (Figures 4–6, Table 8).
    pub fn collective(
        name: impl Into<String>,
        topo: Topology,
        kind: CollectiveKind,
        chunks: usize,
        output_buffer: f64,
    ) -> Self {
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let n = gpus.len();
        let demand = DemandMatrix::for_collective(kind, topo.num_nodes(), &gpus, chunks);
        // Per-destination transfer = output_buffer / (n-1); each chunk is that
        // transfer split into `chunks` pieces.
        let transfer = output_buffer / (n as f64 - 1.0);
        let chunk_bytes = transfer / chunks as f64;
        Self {
            name: name.into(),
            topo,
            demand,
            chunk_bytes,
            output_buffer,
        }
    }
}

/// A quick default solver configuration for experiments: early stop at 30%
/// (the paper's ALLGATHER setting) and a per-solve time limit so runs stay
/// bounded on the built-in solver.
pub fn quick_config() -> SolverConfig {
    let mut c = SolverConfig::early_stop();
    c.time_limit = Some(Duration::from_secs(60));
    c
}

/// Runs TE-CCL on a scenario and measures the resulting schedule.
pub fn run_teccl(scenario: &Scenario, config: &SolverConfig, method: Method) -> Option<RunResult> {
    let solver = TeCcl::new(scenario.topo.clone(), config.clone());
    let outcome = match method {
        Method::Auto => solver.solve(&scenario.demand, scenario.chunk_bytes),
        Method::Milp => solver.solve_milp(&scenario.demand, scenario.chunk_bytes),
        Method::Lp => solver.solve_lp(&scenario.demand, scenario.chunk_bytes),
        Method::AStar => solver.solve_astar(&scenario.demand, scenario.chunk_bytes),
    }
    .ok()?;
    let sim = simulate(&outcome.topology_used, &scenario.demand, &outcome.schedule).ok()?;
    Some(RunResult {
        solver: format!("te-ccl-{method:?}").to_lowercase(),
        solver_time: outcome.solver_time.as_secs_f64(),
        transfer_time: sim.transfer_time,
        algo_bw: scenario.output_buffer / sim.transfer_time,
        bytes_on_wire: sim.bytes_on_wire,
        epoch_duration: outcome.epoch_duration,
        simplex_iterations: outcome.stats.simplex_iterations,
        dual_iterations: outcome.stats.dual_iterations,
        bb_nodes: outcome.stats.nodes_explored,
        factorizations: outcome.stats.factorizations,
        warm_starts: outcome.stats.warm_starts,
        cold_starts: outcome.stats.cold_starts,
        cols_fixed: outcome.stats.cols_fixed,
        rows_freed: outcome.stats.rows_freed,
        node_tightenings: outcome.stats.node_tightenings,
        dw_rounds: outcome.stats.dw_rounds,
        iteration_limit_hit: outcome.stats.iteration_limit_hit,
    })
}

/// Per-run solver counters for the headline solver scenarios, printed by the
/// experiment runners so perf regressions (iteration blow-ups, lost warm
/// starts, lost presolve reductions) are visible in experiment output, not
/// just in wall-clock noise. Row values: `[solver_s, simplex_iters,
/// dual_iters, bb_nodes, factorizations, warm_starts, cold_starts,
/// cols_fixed, rows_freed, node_tight]`; scenarios that tripped the simplex
/// iteration budget are labelled `(ITER-LIMIT)`.
pub fn solver_stats_rows() -> Vec<Row> {
    let cases: Vec<(String, Scenario, Method)> = vec![
        (
            "milp_form/internal1_allgather".into(),
            Scenario::collective(
                "milp-internal1x1-ag",
                teccl_topology::internal1(1),
                CollectiveKind::AllGather,
                1,
                1024.0 * 1024.0,
            ),
            Method::Milp,
        ),
        (
            "lp_form/internal2x2_alltoall".into(),
            Scenario::collective(
                "lp-internal2x2-atoa",
                teccl_topology::internal2(2),
                CollectiveKind::AllToAll,
                1,
                1024.0 * 1024.0,
            ),
            Method::Lp,
        ),
        (
            "astar/internal2x2_allgather".into(),
            Scenario::collective(
                "astar-internal2x2-ag",
                teccl_topology::internal2(2),
                CollectiveKind::AllGather,
                1,
                1024.0 * 1024.0,
            ),
            Method::AStar,
        ),
    ];
    let mut rows = Vec::new();
    for (name, scenario, method) in cases {
        if let Some(r) = run_teccl(&scenario, &quick_config(), method) {
            rows.push(Row {
                labels: vec![mark_iteration_limit(name, r.iteration_limit_hit)],
                values: vec![
                    r.solver_time,
                    r.simplex_iterations as f64,
                    r.dual_iterations as f64,
                    r.bb_nodes as f64,
                    r.factorizations as f64,
                    r.warm_starts as f64,
                    r.cold_starts as f64,
                    r.cols_fixed as f64,
                    r.rows_freed as f64,
                    r.node_tightenings as f64,
                ],
            });
        }
    }
    rows
}

/// Header set matching [`solver_stats_rows`].
pub const SOLVER_STATS_HEADERS: [&str; 10] = [
    "solver_s",
    "simplex_iters",
    "dual_iters",
    "bb_nodes",
    "factorizations",
    "warm_starts",
    "cold_starts",
    "cols_fixed",
    "rows_freed",
    "node_tight",
];

/// Appends an explicit `(ITER-LIMIT)` marker to a row label when the run
/// exhausted a simplex iteration budget — such rows rest on an uncertified
/// incumbent and must never be printed as if the solver converged.
pub fn mark_iteration_limit(label: impl Into<String>, hit: bool) -> String {
    let label = label.into();
    if hit {
        format!("{label} (ITER-LIMIT)")
    } else {
        label
    }
}

/// Shared fixture for the warm-vs-cold simplex benches: a 12x12
/// transportation LP, its optimal basis, and a one-bound-tightened override
/// list (the branch-and-bound child pattern). Returns
/// `(standard_form, num_vars, basis, overrides)`.
pub fn warm_vs_cold_fixture() -> (
    teccl_lp::StandardForm,
    usize,
    teccl_lp::SimplexBasis,
    Vec<(usize, f64, f64)>,
) {
    let (sf, nv, cold) = transport_fixture();
    let basis = cold.basis.clone().expect("optimal LP returns a basis");
    let idle = (0..nv).find(|&j| cold.values[j] < 1e-9).unwrap_or(0);
    (sf, nv, basis, vec![(idle, 0.0, 10.0)])
}

/// The shared 12x12 transportation LP plus its cold solution (solved once;
/// both re-solve fixtures derive their basis and overrides from it).
fn transport_fixture() -> (teccl_lp::StandardForm, usize, teccl_lp::Solution) {
    use teccl_lp::{ConstraintOp, Model, Sense};
    let n = 12;
    let mut m = Model::new(Sense::Minimize);
    let mut xs = Vec::new();
    for s in 0..n {
        for d in 0..n {
            let cost = ((s * 7 + d * 13) % 17 + 1) as f64;
            xs.push(m.add_var(format!("x{s}_{d}"), 0.0, 50.0, cost, false));
        }
    }
    for s in 0..n {
        let terms: Vec<_> = (0..n).map(|d| (xs[s * n + d], 1.0)).collect();
        m.add_cons(format!("s{s}"), &terms, ConstraintOp::Le, 30.0);
    }
    for d in 0..n {
        let terms: Vec<_> = (0..n).map(|s| (xs[s * n + d], 1.0)).collect();
        m.add_cons(format!("d{d}"), &terms, ConstraintOp::Ge, 20.0);
    }
    let sf = teccl_lp::StandardForm::from_model(&m);
    let cold = teccl_lp::solve_standard_form(&sf, n * n).expect("fixture LP must solve");
    (sf, n * n, cold)
}

/// Fixture for the **dual re-solve** bench (`lp/dual_resolve`): the
/// transportation LP of [`warm_vs_cold_fixture`], its optimal basis, and an
/// override that tightens the bound of a variable *active* in the optimum —
/// the warm basis is then primal infeasible and the re-solve must take real
/// dual pivots (the B&B child pattern), unlike the idle-variable override of
/// `warm_vs_cold_fixture` which re-certifies without pivoting.
pub fn dual_resolve_fixture() -> (
    teccl_lp::StandardForm,
    usize,
    teccl_lp::SimplexBasis,
    Vec<(usize, f64, f64)>,
) {
    let (sf, nv, cold) = transport_fixture();
    let basis = cold.basis.clone().expect("optimal LP returns a basis");
    let active = (0..nv)
        .max_by(|&a, &b| {
            cold.values[a]
                .partial_cmp(&cold.values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("fixture has variables");
    assert!(cold.values[active] > 1.0, "fixture optimum must be active");
    (
        sf,
        nv,
        basis,
        vec![(active, 0.0, cold.values[active] / 2.0)],
    )
}

/// Fixture for the **degenerate ALLTOALL** bench (`lp/degenerate_alltoall`):
/// the presolved standard form of the internal2(2) ALLTOALL LP at a 16 MB
/// output buffer — a reduced-scale proxy for the internal1(2)/internal2(3+)
/// 16 MB instances whose primal-degenerate plateaus used to trip the
/// iteration limit (ROADMAP item). Returns `(standard_form, num_vars,
/// iteration_budget)`; the bench harness asserts the cold solve stays under
/// the budget and never reports `iteration_limit_hit`.
pub fn degenerate_alltoall_fixture() -> (teccl_lp::StandardForm, usize, usize) {
    let topo = teccl_topology::internal2(2);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let n = gpus.len();
    let output_buffer = 16.0 * 1024.0 * 1024.0;
    let transfer = output_buffer / (n as f64 - 1.0);
    let demand = DemandMatrix::all_to_all(topo.num_nodes(), &gpus, 1);
    let config = SolverConfig::early_stop();
    let tau = teccl_core::epochs::epoch_duration(&topo, transfer, &config);
    let k = teccl_core::epochs::estimate_num_epochs(&topo, &demand, transfer, tau);
    let form =
        teccl_core::lp_form::LpFormulation::build(&topo, &demand, transfer, &config, k.max(2), tau)
            .expect("degenerate fixture builds");
    let (red, post) = teccl_lp::presolve::presolve(&form.model).expect("presolve");
    let mut sf = teccl_lp::StandardForm::from_model(&red);
    post.relax_free_rows(&mut sf);
    // Measured ~1.1k iterations with the layout-preserving presolve + crash
    // slack basis; the budget leaves ~20x headroom while still tripping on
    // any Bland-style pricing regression (20-700x blow-ups).
    (sf, red.num_vars(), 25_000)
}

/// Fixture for the **Dantzig-Wolfe** benches (`lp/dw_pricing_round`,
/// `lp/dw_1thread`, `lp/dw_4threads`, `lp/dw_monolithic`): the copy-free LP
/// of the 8-GPU internal1(2) ALLTOALL — the two-chassis ring-plus-switch
/// row whose per-source blocks the decomposer prices in parallel — at a
/// 4 MB output buffer so one solve stays in bench territory (the 16 MB
/// acceptance row lives in `crates/core/tests/decompose.rs`). Returns the
/// formulation; callers take `form.model` and `form.block_structure()`.
pub fn dw_alltoall_fixture() -> teccl_core::lp_form::LpFormulation {
    let topo = teccl_topology::internal1(2);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let n = gpus.len();
    let output_buffer = 4.0 * 1024.0 * 1024.0;
    let transfer = output_buffer / (n as f64 - 1.0);
    let demand = DemandMatrix::all_to_all(topo.num_nodes(), &gpus, 1);
    let config = SolverConfig::early_stop();
    let tau = teccl_core::epochs::epoch_duration(&topo, transfer, &config);
    let k = teccl_core::epochs::estimate_num_epochs(&topo, &demand, transfer, tau);
    teccl_core::lp_form::LpFormulation::build(&topo, &demand, transfer, &config, k.max(2), tau)
        .expect("DW fixture builds")
}

/// Fixture for the **parallel branch-and-bound** benches
/// (`lp/parallel_bnb_1thread` / `lp/parallel_bnb_4threads`): a strongly
/// correlated 0/1 knapsack with a cardinality side-constraint — the classic
/// wide-tree shape where the LP bound is weak everywhere, so the open-node
/// pool stays deep enough for extra workers to matter. Deterministic
/// (seeded LCG); solves to `Optimal` with the same objective at every
/// thread count (the invariance the `thread_invariance` suite checks on a
/// random corpus, pinned here on the bench instance).
pub fn parallel_bnb_fixture() -> teccl_lp::model::Model {
    use teccl_lp::model::{ConstraintOp, Model, Sense};
    let mut m = Model::new(Sense::Maximize);
    let mut state = 0x5eed_c0de_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let n = 30usize;
    let mut weights = Vec::with_capacity(n);
    let mut vars = Vec::with_capacity(n);
    for j in 0..n {
        // Strongly correlated with a narrow weight band (subset-sum-like):
        // the LP relaxation ranks every item almost identically, its bound
        // is weak everywhere, and proving optimality needs deep branching.
        let w = 100.0 + (next() % 900) as f64;
        let p = w + 50.0;
        vars.push(m.add_binary_var(format!("x{j}"), p));
        weights.push(w);
    }
    let total: f64 = weights.iter().sum();
    let cap_terms: Vec<_> = vars.iter().copied().zip(weights.iter().copied()).collect();
    m.add_cons("cap", &cap_terms, ConstraintOp::Le, (total / 2.0).floor());
    m
}

/// Fixture for the **LU refactorization** bench (`lp/lu_refactor_fill`):
/// the optimal basis of the degenerate ALLTOALL instance as sparse columns,
/// ready for [`teccl_lp::LuFactors::factorize`]. Returns `(num_rows,
/// basis_columns)`. A zero-valued phase-1 artificial surviving in the
/// degenerate optimal basis is materialized as the unit column of its row.
pub fn lu_refactor_fixture() -> (usize, Vec<teccl_lp::SparseVec>) {
    let (sf, nv, _budget) = degenerate_alltoall_fixture();
    let sol = teccl_lp::solve_standard_form(&sf, nv).expect("degenerate fixture solves");
    let basis = sol.basis.expect("optimal LP returns a basis");
    let n_cols = sf.num_cols();
    let cols: Vec<teccl_lp::SparseVec> = basis
        .basic
        .iter()
        .map(|&j| {
            if j < n_cols {
                sf.a.col(j).clone()
            } else {
                teccl_lp::SparseVec::from_pairs(&[(j - n_cols, 1.0)])
            }
        })
        .collect();
    (sf.num_rows(), cols)
}

/// Fixture for the **A\* cross-round warm-start** benches
/// (`lp/presolve_warm_rounds` vs `lp/presolve_cold_rounds`): a Table-4 A\*
/// scenario forced through several rounds, one config carrying the root basis
/// across rounds (`astar_warm_rounds`) and one solving every round cold.
/// Presolve runs in *both* — the layout-preserving presolve is exactly what
/// lets the carried basis survive it. Returns
/// `(scenario, warm_config, cold_config)`.
pub fn warm_rounds_fixture() -> (Scenario, SolverConfig, SolverConfig) {
    let scenario = Scenario::collective(
        "astar-internal1x2-ag-16M",
        teccl_topology::internal1(2),
        CollectiveKind::AllGather,
        1,
        16.0 * 1024.0 * 1024.0,
    );
    let mut warm = quick_config();
    warm.astar_warm_rounds = true;
    let mut cold = quick_config();
    cold.astar_warm_rounds = false;
    (scenario, warm, cold)
}

/// Fixture for the schedule-service benches (`service/throughput`,
/// `service/cache_hit_latency`): a started service plus a pool of 8 small,
/// distinct requests. The throughput bench evicts one key per batch so every
/// 64-request batch performs exactly one solve (63/64 ≈ 98% hit ratio —
/// fixed by construction); the hit-latency bench must never leave the
/// no-solve path.
pub fn service_bench_fixture() -> (
    teccl_service::ScheduleService,
    Vec<teccl_service::SolveRequest>,
) {
    use teccl_collective::CollectiveKind::*;
    let svc = teccl_service::ScheduleService::start(teccl_service::ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        disk_dir: None,
        // Benches must be immune to an ambient TECCL_FAULT_PLAN.
        fault_plan: Some(String::new()),
        ..Default::default()
    })
    .expect("service starts");
    let mut pool = Vec::new();
    for (i, kind) in [AllGather, AllToAll, Broadcast, Gather].iter().enumerate() {
        for n in [3usize, 4] {
            pool.push(teccl_service::SolveRequest::new(
                teccl_topology::ring_topology(n, 1e9, 0.0),
                *kind,
                1,
                (32 + 16 * i) as f64 * 1024.0,
            ));
        }
    }
    assert_eq!(pool.len(), 8);
    (svc, pool)
}

/// Fixture for the `service/degraded_fallback_latency` bench: a service plus
/// a large ALLTOALL request whose deadline is already expired at submission,
/// so every request descends the degradation ladder straight to the instant
/// baseline. Background upgrades are off — the bench measures the fallback,
/// not a shadow exact solve.
pub fn degraded_fallback_fixture() -> (teccl_service::ScheduleService, teccl_service::SolveRequest)
{
    let svc = teccl_service::ScheduleService::start(teccl_service::ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        disk_dir: None,
        background_upgrade: false,
        fault_plan: Some(String::new()),
        core_budget: None,
    })
    .expect("service starts");
    let req = teccl_service::SolveRequest::new(
        teccl_topology::internal1(2),
        CollectiveKind::AllToAll,
        1,
        16.0 * 1024.0 * 1024.0,
    )
    .with_deadline(std::time::Duration::ZERO);
    (svc, req)
}

/// Runs the TACCL-like baseline on a scenario.
pub fn run_taccl(scenario: &Scenario, seed: u64) -> Option<RunResult> {
    let cfg = TacclConfig {
        seed,
        ..Default::default()
    };
    let res = taccl_like_schedule(&scenario.topo, &scenario.demand, scenario.chunk_bytes, &cfg)?;
    Some(RunResult {
        solver: "taccl-like".into(),
        solver_time: res.solver_time,
        transfer_time: res.transfer_time,
        algo_bw: scenario.output_buffer / res.transfer_time,
        bytes_on_wire: res.schedule.total_bytes_on_wire(),
        epoch_duration: 0.0,
        simplex_iterations: 0,
        dual_iterations: 0,
        bb_nodes: 0,
        factorizations: 0,
        warm_starts: 0,
        cold_starts: 0,
        cols_fixed: 0,
        rows_freed: 0,
        node_tightenings: 0,
        dw_rounds: 0,
        iteration_limit_hit: false,
    })
}

/// Runs the SCCL-like synchronous-round baseline on a scenario.
pub fn run_sccl(scenario: &Scenario) -> Option<RunResult> {
    let res = sccl_like_schedule(&scenario.topo, &scenario.demand, scenario.chunk_bytes)?;
    Some(RunResult {
        solver: "sccl-like".into(),
        solver_time: res.solver_time,
        transfer_time: res.transfer_time,
        algo_bw: scenario.output_buffer / res.transfer_time,
        bytes_on_wire: res.schedule.total_bytes_on_wire(),
        epoch_duration: 0.0,
        simplex_iterations: 0,
        dual_iterations: 0,
        bb_nodes: 0,
        factorizations: 0,
        warm_starts: 0,
        cold_starts: 0,
        cols_fixed: 0,
        rows_freed: 0,
        node_tightenings: 0,
        dw_rounds: 0,
        iteration_limit_hit: false,
    })
}

/// Runs the shortest-path unicast baseline on a scenario.
pub fn run_shortest_path(scenario: &Scenario) -> Option<RunResult> {
    let start = std::time::Instant::now();
    let schedule = shortest_path_schedule(&scenario.topo, &scenario.demand, scenario.chunk_bytes);
    let sim = simulate(&scenario.topo, &scenario.demand, &schedule).ok()?;
    Some(RunResult {
        solver: "shortest-path".into(),
        solver_time: start.elapsed().as_secs_f64(),
        transfer_time: sim.transfer_time,
        algo_bw: scenario.output_buffer / sim.transfer_time,
        bytes_on_wire: sim.bytes_on_wire,
        epoch_duration: 0.0,
        simplex_iterations: 0,
        dual_iterations: 0,
        bb_nodes: 0,
        factorizations: 0,
        warm_starts: 0,
        cold_starts: 0,
        cols_fixed: 0,
        rows_freed: 0,
        node_tightenings: 0,
        dw_rounds: 0,
        iteration_limit_hit: false,
    })
}

/// The output-buffer-size sweep the paper uses on its x-axes (reduced: the
/// multi-GB points only change the chunk size, not the problem structure).
pub fn output_buffer_sweep() -> Vec<f64> {
    ["256M", "64M", "16M", "4M", "1M", "256K", "64K", "16K"]
        .iter()
        .map(|s| teccl_collective::chunk::parse_size(s).unwrap())
        .collect()
}

// ---------------------------------------------------------------------------
// Per-experiment row generators (one per table / figure).
// ---------------------------------------------------------------------------

/// Figure 2: relative error in the algorithmic-bandwidth estimate when α is
/// ignored, versus the transfer size, on the 2-chassis / 8-GPU / 40-edge
/// internal topology.
pub fn fig2_rows(sizes: &[f64]) -> Vec<Row> {
    let topo = teccl_topology::fig2_topology();
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let mut rows = Vec::new();
    for &transfer in sizes {
        let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
        let scenario = Scenario {
            name: format!("fig2-{}", format_size(transfer)),
            topo: topo.clone(),
            demand,
            chunk_bytes: transfer,
            output_buffer: (gpus.len() - 1) as f64 * transfer,
        };
        let solver = TeCcl::new(scenario.topo.clone(), quick_config());
        let Ok(outcome) = solver.solve_astar(&scenario.demand, scenario.chunk_bytes) else {
            continue;
        };
        let with_alpha =
            simulate(&topo, &scenario.demand, &outcome.schedule).map(|s| s.transfer_time);
        let no_alpha_topo = topo.with_alpha_scaled(0.0);
        let without_alpha =
            simulate(&no_alpha_topo, &scenario.demand, &outcome.schedule).map(|s| s.transfer_time);
        if let (Ok(t_with), Ok(t_without)) = (with_alpha, without_alpha) {
            let bw_with = scenario.output_buffer / t_with;
            let bw_without = scenario.output_buffer / t_without;
            let rel_error = (bw_without - bw_with) / bw_with * 100.0;
            rows.push(Row {
                labels: vec![format_size(transfer)],
                values: vec![transfer / 1e6, rel_error],
            });
        }
    }
    rows
}

/// Table 3: SCCL least-steps vs TE-CCL transfer time on a DGX-1 with 25 KB
/// chunks (α = 0.7 µs).
pub fn table3_rows(max_ag_chunks: usize) -> Vec<Row> {
    let topo = teccl_topology::dgx1();
    let chunk = 25e3;
    let mut rows = Vec::new();
    for chunks in 1..=max_ag_chunks {
        let scenario = Scenario::collective(
            format!("AG-{chunks}"),
            topo.clone(),
            CollectiveKind::AllGather,
            chunks,
            7.0 * chunk * chunks as f64,
        );
        let sccl = run_sccl(&scenario);
        let ours = run_teccl(&scenario, &quick_config(), Method::AStar);
        if let (Some(s), Some(o)) = (sccl, ours) {
            rows.push(Row {
                labels: vec![format!("ALLGATHER, {chunks}")],
                values: vec![s.transfer_time * 1e6, o.transfer_time * 1e6],
            });
        }
    }
    // ALLTOALL, 1 chunk per destination.
    let scenario = Scenario::collective("AtoA-1", topo, CollectiveKind::AllToAll, 1, 7.0 * chunk);
    if let (Some(s), Some(o)) = (
        run_sccl(&scenario),
        run_teccl(&scenario, &quick_config(), Method::Lp),
    ) {
        rows.push(Row {
            labels: vec!["ALLTOALL, 1".into()],
            values: vec![s.transfer_time * 1e6, o.transfer_time * 1e6],
        });
    }
    rows
}

/// The topology set used for the TACCL comparisons (Figures 4 and 5), at the
/// reduced scale this reproduction runs at.
pub fn taccl_comparison_topologies() -> Vec<(String, Topology)> {
    vec![
        ("NDv2 x1".into(), teccl_topology::ndv2(1)),
        ("Internal1 x2".into(), teccl_topology::internal1(2)),
        ("Internal2 x2".into(), teccl_topology::internal2(2)),
    ]
}

/// Figures 4 & 5: TE-CCL vs TACCL — algorithmic-bandwidth improvement (%) and
/// solver-time speedup (%) per topology / collective / output-buffer size.
/// Row values: `[bw_improve%, solver_speedup%, teccl_bw GB/s, taccl_bw GB/s,
/// teccl_solver_s, taccl_solver_s]`.
pub fn fig4_fig5_rows(sizes: &[f64]) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, topo) in taccl_comparison_topologies() {
        for kind in [CollectiveKind::AllGather, CollectiveKind::AllToAll] {
            for &size in sizes {
                let scenario = Scenario::collective(
                    format!("{name}-{kind:?}-{}", format_size(size)),
                    topo.clone(),
                    kind,
                    1,
                    size,
                );
                let method = if kind == CollectiveKind::AllGather {
                    Method::AStar
                } else {
                    Method::Lp
                };
                let ours = run_teccl(&scenario, &quick_config(), method);
                let taccl = run_taccl(&scenario, 1);
                match (ours, taccl) {
                    (Some(o), Some(t)) => rows.push(Row {
                        labels: vec![name.clone(), format!("{kind:?}"), format_size(size)],
                        values: vec![
                            percent_improvement(o.algo_bw, t.algo_bw),
                            percent_improvement(t.solver_time, o.solver_time),
                            o.algo_bw / 1e9,
                            t.algo_bw / 1e9,
                            o.solver_time,
                            t.solver_time,
                        ],
                    }),
                    (Some(o), None) => rows.push(Row {
                        // TACCL infeasible (the "X" marks in the paper's plots).
                        labels: vec![
                            name.clone(),
                            format!("{kind:?}"),
                            format!("{} (TACCL X)", format_size(size)),
                        ],
                        values: vec![
                            f64::NAN,
                            f64::NAN,
                            o.algo_bw / 1e9,
                            f64::NAN,
                            o.solver_time,
                            f64::NAN,
                        ],
                    }),
                    _ => {}
                }
            }
        }
    }
    rows
}

/// Figure 6: Internal-2 ALLTOALL across chassis counts — solver-time speedup
/// and bandwidth improvement vs TACCL.
pub fn fig6_rows(chassis_counts: &[usize], size: f64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &ch in chassis_counts {
        let topo = teccl_topology::internal2(ch);
        let scenario = Scenario::collective(
            format!("Internal2 x{ch}"),
            topo,
            CollectiveKind::AllToAll,
            1,
            size,
        );
        let ours = run_teccl(&scenario, &quick_config(), Method::Lp);
        let taccl = run_taccl(&scenario, 1);
        if let (Some(o), Some(t)) = (ours, taccl) {
            rows.push(Row {
                labels: vec![format!("{ch} ch")],
                values: vec![
                    percent_improvement(t.solver_time, o.solver_time),
                    percent_improvement(o.algo_bw, t.algo_bw),
                    o.solver_time,
                    t.solver_time,
                ],
            });
        }
    }
    rows
}

/// Table 4: TE-CCL solver time on the larger (reduced-scale) topologies.
/// Row values: `[gpus, epoch_multiplier, solver_s, transfer_us,
/// simplex_iters, warm_starts, cold_starts, cols_fixed, rows_freed,
/// node_tight, iter_limit]`; rows that exhausted a simplex iteration budget
/// carry an `(ITER-LIMIT)` label and a `1` in the `iter_limit` column
/// instead of being reported as converged.
pub fn table4_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    let cases: Vec<(String, Topology, CollectiveKind, Method)> = vec![
        (
            "Internal1 AG (A*)".into(),
            teccl_topology::internal1(2),
            CollectiveKind::AllGather,
            Method::AStar,
        ),
        (
            "Internal1 AtoA (LP)".into(),
            teccl_topology::internal1(2),
            CollectiveKind::AllToAll,
            Method::Lp,
        ),
        (
            "Internal2 AG (A*)".into(),
            teccl_topology::internal2(4),
            CollectiveKind::AllGather,
            Method::AStar,
        ),
        (
            "Internal2 AtoA (LP)".into(),
            teccl_topology::internal2(4),
            CollectiveKind::AllToAll,
            Method::Lp,
        ),
        // The 16-GPU pricing wall (ISSUE 8): the largest monolithic ALLTOALL
        // LP, must certify inside the 400 s budget with steepest-edge pricing.
        (
            "Internal1 x4 AtoA (LP)".into(),
            teccl_topology::internal1(4),
            CollectiveKind::AllToAll,
            Method::Lp,
        ),
    ];
    for (name, topo, kind, method) in cases {
        let gpus = topo.num_gpus();
        let scenario = Scenario::collective(name.clone(), topo, kind, 1, 16.0 * 1024.0 * 1024.0);
        if let Some(o) = run_teccl(&scenario, &quick_config(), method) {
            rows.push(Row {
                labels: vec![mark_iteration_limit(name, o.iteration_limit_hit)],
                values: vec![
                    gpus as f64,
                    1.0,
                    o.solver_time,
                    o.transfer_time * 1e6,
                    o.simplex_iterations as f64,
                    o.warm_starts as f64,
                    o.cold_starts as f64,
                    o.cols_fixed as f64,
                    o.rows_freed as f64,
                    o.node_tightenings as f64,
                    if o.iteration_limit_hit { 1.0 } else { 0.0 },
                ],
            });
        }
    }
    rows
}

/// Thread sweep (EXPERIMENTS.md): solver wall-clock for the 8-GPU Table-4
/// scenarios plus the wide-tree knapsack B&B fixture, at each thread count
/// in `threads`. One row per case; one `solver_s` column per thread count.
/// The 16-GPU ALLTOALL row is deliberately absent: at ~375 s per solve a
/// 4-config sweep is a CI-hostile 25 minutes, and its parallel behaviour
/// (the LP portfolio race) is already covered by the 8-GPU ALLTOALL rows.
pub fn thread_sweep_rows(threads: &[usize]) -> Vec<Row> {
    let cases: Vec<(String, Topology, CollectiveKind, Method)> = vec![
        (
            "Internal1 AG (A*)".into(),
            teccl_topology::internal1(2),
            CollectiveKind::AllGather,
            Method::AStar,
        ),
        (
            "Internal1 AtoA (LP)".into(),
            teccl_topology::internal1(2),
            CollectiveKind::AllToAll,
            Method::Lp,
        ),
        (
            "Internal2 AG (A*)".into(),
            teccl_topology::internal2(4),
            CollectiveKind::AllGather,
            Method::AStar,
        ),
        (
            "Internal2 AtoA (LP)".into(),
            teccl_topology::internal2(4),
            CollectiveKind::AllToAll,
            Method::Lp,
        ),
    ];
    let mut rows = Vec::new();
    for (name, topo, kind, method) in cases {
        let scenario = Scenario::collective(name.clone(), topo, kind, 1, 16.0 * 1024.0 * 1024.0);
        let mut values = Vec::new();
        for &t in threads {
            let mut config = quick_config();
            config.threads = t;
            let secs = run_teccl(&scenario, &config, method).map_or(f64::NAN, |o| o.solver_time);
            values.push(secs);
        }
        rows.push(Row {
            labels: vec![name],
            values,
        });
    }
    // The knapsack B&B fixture: the one case whose tree is wide enough for
    // the shared open-node pool to matter.
    let bnb = parallel_bnb_fixture();
    let mut values = Vec::new();
    for &t in threads {
        let t0 = std::time::Instant::now();
        let sol = bnb
            .solve_with(&teccl_lp::MilpConfig {
                threads: t,
                ..Default::default()
            })
            .expect("knapsack fixture solves");
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        values.push(t0.elapsed().as_secs_f64());
    }
    rows.push(Row {
        labels: vec!["Knapsack B&B (MILP)".into()],
        values,
    });
    rows
}

/// Figure 7: the benefit of in-network copy — collective finish time with the
/// copy-capable solver vs the copy-free LP, across transfer sizes.
pub fn fig7_rows(sizes: &[f64]) -> Vec<Row> {
    let mut rows = Vec::new();
    let topologies: Vec<(String, Topology)> = vec![
        (
            "Internal1 (a=0)".into(),
            teccl_topology::internal1(1).with_alpha_scaled(0.0),
        ),
        ("Internal1".into(), teccl_topology::internal1(1)),
        ("Internal2 x2".into(), teccl_topology::internal2(2)),
    ];
    for (name, topo) in topologies {
        for &size in sizes {
            let scenario = Scenario::collective(
                format!("{name}-{}", format_size(size)),
                topo.clone(),
                CollectiveKind::AllGather,
                2,
                size,
            );
            let copy = run_teccl(&scenario, &quick_config(), Method::AStar);
            // "No copy": the LP treats every (chunk, destination) as distinct
            // traffic from the source.
            let no_copy = run_teccl(&scenario, &quick_config(), Method::Lp);
            if let (Some(c), Some(n)) = (copy, no_copy) {
                rows.push(Row {
                    labels: vec![name.clone(), format_size(size)],
                    values: vec![size / 1e6, c.transfer_time * 1e3, n.transfer_time * 1e3],
                });
            }
        }
    }
    rows
}

/// Figure 8: small (fastest-link) vs large (slowest-link) epochs — solver-time
/// and transfer-time deltas.
pub fn fig8_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    let cases: Vec<(String, Topology, CollectiveKind)> = vec![
        (
            "Internal1 AG".into(),
            teccl_topology::internal1(2),
            CollectiveKind::AllGather,
        ),
        (
            "Internal1 AtoA".into(),
            teccl_topology::internal1(2),
            CollectiveKind::AllToAll,
        ),
        (
            "NDv2x1 AG".into(),
            teccl_topology::ndv2(1),
            CollectiveKind::AllGather,
        ),
        (
            "NDv2x1 AtoA".into(),
            teccl_topology::ndv2(1),
            CollectiveKind::AllToAll,
        ),
    ];
    for (name, topo, kind) in cases {
        let scenario = Scenario::collective(name.clone(), topo, kind, 1, 4.0 * 1024.0 * 1024.0);
        let method = if kind == CollectiveKind::AllGather {
            Method::AStar
        } else {
            Method::Lp
        };
        let mut small_cfg = quick_config();
        small_cfg.epoch_strategy = EpochStrategy::FastestLink;
        let mut large_cfg = quick_config();
        large_cfg.epoch_strategy = EpochStrategy::SlowestLink;
        let small = run_teccl(&scenario, &small_cfg, method);
        let large = run_teccl(&scenario, &large_cfg, method);
        if let (Some(s), Some(l)) = (small, large) {
            rows.push(Row {
                labels: vec![name],
                values: vec![
                    percent_improvement(s.solver_time, l.solver_time),
                    percent_improvement(s.transfer_time, l.transfer_time),
                    s.transfer_time * 1e6,
                    l.transfer_time * 1e6,
                ],
            });
        }
    }
    rows
}

/// Figure 9: store-and-forward buffers on vs off — solver-time and
/// transfer-time deltas.
pub fn fig9_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    let cases: Vec<(String, Topology)> = vec![
        (
            "Internal1 a=0".into(),
            teccl_topology::internal1(1).with_alpha_scaled(0.0),
        ),
        ("Internal1".into(), teccl_topology::internal1(1)),
        ("Internal2 x2".into(), teccl_topology::internal2(2)),
        ("DGX1".into(), teccl_topology::dgx1()),
    ];
    for (name, topo) in cases {
        let scenario = Scenario::collective(
            name.clone(),
            topo,
            CollectiveKind::AllGather,
            1,
            4.0 * 1024.0 * 1024.0,
        );
        let with_cfg = quick_config();
        let mut without_cfg = quick_config();
        without_cfg.buffer_mode = BufferMode::NoStoreAndForward;
        let with_buf = run_teccl(&scenario, &with_cfg, Method::AStar);
        let without_buf = run_teccl(&scenario, &without_cfg, Method::AStar);
        if let (Some(w), Some(wo)) = (with_buf, without_buf) {
            rows.push(Row {
                labels: vec![name],
                values: vec![
                    percent_improvement(wo.solver_time, w.solver_time),
                    percent_improvement(wo.transfer_time, w.transfer_time),
                    w.transfer_time * 1e6,
                    wo.transfer_time * 1e6,
                ],
            });
        }
    }
    rows
}

/// §6.3 "A* vs OPT": the A* technique versus the optimal MILP on an
/// Internal-2 topology, with α = 0 and α > 0.
/// Row values: `[astar_solver_s, opt_solver_s, astar_transfer_us, opt_transfer_us]`.
pub fn astar_vs_opt_rows(chassis: usize, chunks: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, topo) in [
        (
            "a=0",
            teccl_topology::internal2(chassis).with_alpha_scaled(0.0),
        ),
        ("a>0", teccl_topology::internal2(chassis)),
    ] {
        let scenario = Scenario::collective(
            format!("Internal2 x{chassis} {label}"),
            topo,
            CollectiveKind::AllGather,
            chunks,
            4.0 * 1024.0 * 1024.0,
        );
        let astar = run_teccl(&scenario, &quick_config(), Method::AStar);
        let opt = run_teccl(&scenario, &quick_config(), Method::Milp);
        if let (Some(a), Some(o)) = (astar, opt) {
            rows.push(Row {
                labels: vec![label.into(), format!("{chunks} chunk(s)")],
                values: vec![
                    a.solver_time,
                    o.solver_time,
                    a.transfer_time * 1e6,
                    o.transfer_time * 1e6,
                ],
            });
        }
    }
    rows
}

/// Table 7 (Appendix G): SCCL `instance` mode vs TE-CCL on a DGX-1 with α = 0
/// and 25 KB chunks — solver times and transfer-time difference.
pub fn table7_rows(max_chunks: usize) -> Vec<Row> {
    let topo = teccl_topology::dgx1().with_alpha_scaled(0.0);
    let chunk = 25e3;
    let mut rows = Vec::new();
    for chunks in 1..=max_chunks {
        let scenario = Scenario::collective(
            format!("AG-{chunks}"),
            topo.clone(),
            CollectiveKind::AllGather,
            chunks,
            7.0 * chunk * chunks as f64,
        );
        let sccl = run_sccl(&scenario);
        let ours = run_teccl(&scenario, &quick_config(), Method::AStar);
        if let (Some(s), Some(o)) = (sccl, ours) {
            rows.push(Row {
                labels: vec![format!("ALLGATHER ({chunks})")],
                values: vec![
                    s.solver_time,
                    o.solver_time,
                    100.0 * (s.transfer_time - o.transfer_time) / s.transfer_time,
                ],
            });
        }
    }
    let scenario = Scenario::collective("AtoA-1", topo, CollectiveKind::AllToAll, 1, 7.0 * chunk);
    if let (Some(s), Some(o)) = (
        run_sccl(&scenario),
        run_teccl(&scenario, &quick_config(), Method::Lp),
    ) {
        rows.push(Row {
            labels: vec!["ALLTOALL (1)".into()],
            values: vec![
                s.solver_time,
                o.solver_time,
                100.0 * (s.transfer_time - o.transfer_time) / s.transfer_time,
            ],
        });
    }
    rows
}

/// Table 8 (Appendix H): the full NDv2 sweep — epoch duration, collective
/// time, solver time and algorithmic bandwidth for TE-CCL and the TACCL-like
/// baseline, ALLGATHER and ALLTOALL, across output buffer sizes.
/// Row values: `[ED_us, CT_us, ST_s, AB_GBps, taccl_CT_us, taccl_ST_s,
/// taccl_AB_GBps, improvement_%]`.
pub fn table8_rows(sizes: &[f64]) -> Vec<Row> {
    let topo = teccl_topology::ndv2(1);
    let mut rows = Vec::new();
    for kind in [CollectiveKind::AllToAll, CollectiveKind::AllGather] {
        for &size in sizes {
            let scenario = Scenario::collective(
                format!("NDv2-{kind:?}-{}", format_size(size)),
                topo.clone(),
                kind,
                1,
                size,
            );
            let method = if kind == CollectiveKind::AllGather {
                Method::AStar
            } else {
                Method::Lp
            };
            let ours = run_teccl(&scenario, &quick_config(), method);
            let taccl = run_taccl(&scenario, 1);
            if let Some(o) = ours {
                let (t_ct, t_st, t_bw) = taccl
                    .map(|t| (t.transfer_time * 1e6, t.solver_time, t.algo_bw / 1e9))
                    .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
                rows.push(Row {
                    labels: vec![format!("{kind:?}"), format_size(size)],
                    values: vec![
                        o.epoch_duration * 1e6,
                        o.transfer_time * 1e6,
                        o.solver_time,
                        o.algo_bw / 1e9,
                        t_ct,
                        t_st,
                        t_bw,
                        percent_improvement(o.algo_bw / 1e9, t_bw),
                    ],
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builder_sizes_chunks_correctly() {
        let topo = teccl_topology::internal1(1);
        let s = Scenario::collective("t", topo, CollectiveKind::AllGather, 2, 6.0e6);
        // 4 GPUs → transfer per destination = 2 MB, 2 chunks of 1 MB.
        assert!((s.chunk_bytes - 1.0e6).abs() < 1.0);
        assert_eq!(s.demand.num_chunks, 2);
    }

    #[test]
    fn run_helpers_produce_consistent_metrics() {
        let topo = teccl_topology::internal2(2);
        let scenario = Scenario::collective("t", topo, CollectiveKind::AllGather, 1, 1.0e6);
        let ours = run_teccl(&scenario, &quick_config(), Method::AStar).unwrap();
        assert!(ours.transfer_time > 0.0);
        assert!((ours.algo_bw - scenario.output_buffer / ours.transfer_time).abs() < 1.0);
        let sp = run_shortest_path(&scenario).unwrap();
        assert!(sp.transfer_time > 0.0);
        let sccl = run_sccl(&scenario).unwrap();
        assert!(sccl.transfer_time > 0.0);
        let taccl = run_taccl(&scenario, 1).unwrap();
        assert!(taccl.transfer_time > 0.0);
    }

    #[test]
    fn dw_fixture_certifies_against_monolithic() {
        let form = dw_alltoall_fixture();
        let structure = form.block_structure().unwrap();
        let mono = form.model.solve_lp_relaxation().unwrap();
        let dw = teccl_lp::solve_decomposed(
            &form.model,
            &structure,
            None,
            &teccl_lp::DecompOptions::default(),
        )
        .unwrap();
        assert_eq!(dw.status, mono.status);
        assert!(
            dw.stats.dw_rounds > 0,
            "bench fixture must genuinely decompose"
        );
        let scale = mono.objective.abs().max(1.0);
        assert!((dw.objective - mono.objective).abs() <= 1e-6 * scale);
    }

    #[test]
    fn sweep_is_descending_and_parsable() {
        let sweep = output_buffer_sweep();
        assert!(sweep.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(sweep[0], 256.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn fig6_rows_have_expected_shape() {
        let rows = fig6_rows(&[2], 1024.0 * 1024.0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values.len(), 4);
    }
}
