//! A minimal micro-benchmark harness (the offline build has no `criterion`).
//!
//! Mirrors the parts of criterion's API the benches use — named
//! `bench_function`s timing a closure — and reports the **median** wall-clock
//! time per iteration, which is robust to scheduler noise. Results can be
//! dumped as machine-readable JSON (`BENCH_lp.json`) so the perf trajectory is
//! tracked across PRs.

use std::time::{Duration, Instant};

use teccl_util::json::Value;

/// Result of one named benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (e.g. `lp_form/internal2x2_alltoall`).
    pub name: String,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Minimum observed iteration time in nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Target measurement time per benchmark (split over samples).
    pub measurement_time: Duration,
    /// Number of timed samples (each sample may run several iterations).
    pub sample_count: usize,
    /// Warm-up iterations before timing starts.
    pub warmup_iters: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(3),
            sample_count: 11,
            warmup_iters: 2,
        }
    }
}

/// A named collection of benchmark results.
#[derive(Debug, Default)]
pub struct Harness {
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness with the given configuration.
    pub fn new(config: BenchConfig) -> Self {
        Self {
            config,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing the result criterion-style, and records it.
    pub fn bench_function<F: FnMut()>(&mut self, name: &str, mut f: F) -> &BenchResult {
        // Warm-up and calibration: how many iterations fit in one sample?
        for _ in 0..self.config.warmup_iters {
            f();
        }
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            self.config.measurement_time.as_secs_f64() / self.config.sample_count as f64;
        let iters_per_sample =
            ((per_sample / once.as_secs_f64()).floor() as usize).clamp(1, 1_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_count);
        for _ in 0..self.config.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_ns = samples_ns[samples_ns.len() / 2];
        let min_ns = samples_ns[0];
        println!(
            "{name:<44} median {:>12}  min {:>12}  ({} samples x {} iters)",
            format_ns(median_ns),
            format_ns(min_ns),
            samples_ns.len(),
            iters_per_sample
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns,
            min_ns,
            samples: samples_ns.len(),
        });
        self.results.last().unwrap()
    }

    /// All recorded results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the results as a `{name: median_ns}` JSON object (plus a
    /// `_detail` block with minima and sample counts).
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .results
            .iter()
            .map(|r| (r.name.clone(), Value::Num(r.median_ns)))
            .collect();
        let detail: Vec<(String, Value)> = self
            .results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    Value::obj(vec![
                        ("median_ns", Value::Num(r.median_ns)),
                        ("min_ns", Value::Num(r.min_ns)),
                        ("samples", Value::from(r.samples)),
                    ]),
                )
            })
            .collect();
        pairs.push(("_detail".to_string(), Value::Obj(detail)));
        Value::Obj(pairs)
    }
}

/// Human-friendly nanosecond formatting (`1.234 ms` style).
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes_results() {
        let mut h = Harness::new(BenchConfig {
            measurement_time: Duration::from_millis(20),
            sample_count: 3,
            warmup_iters: 1,
        });
        let mut acc = 0u64;
        h.bench_function("noop/add", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].median_ns >= 0.0);
        let json = h.to_json();
        assert!(json.get("noop/add").is_some());
        assert!(json
            .get("_detail")
            .and_then(|d| d.get("noop/add"))
            .is_some());
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.0e9).ends_with(" s"));
    }
}
