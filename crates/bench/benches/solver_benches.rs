//! Criterion micro-benchmarks for the quantities behind the paper's
//! solver-time results (Figures 5, 6, 8, 9, Table 4): the LP form, the general
//! MILP, the A* rounds, the baselines, and the alpha-beta simulator.
use criterion::{criterion_group, criterion_main, Criterion};
use teccl_baselines::{sccl_like_schedule, taccl_like_schedule, TacclConfig};
use teccl_bench::{quick_config, run_teccl, Method, Scenario};
use teccl_collective::{CollectiveKind, DemandMatrix};
use teccl_schedule::simulate;
use teccl_topology::NodeId;

fn bench_lp_alltoall(c: &mut Criterion) {
    let scenario = Scenario::collective(
        "lp-internal2x2-atoa",
        teccl_topology::internal2(2),
        CollectiveKind::AllToAll,
        1,
        1024.0 * 1024.0,
    );
    c.bench_function("lp_form/internal2x2_alltoall", |b| {
        b.iter(|| run_teccl(&scenario, &quick_config(), Method::Lp).unwrap())
    });
}

fn bench_milp_allgather(c: &mut Criterion) {
    let scenario = Scenario::collective(
        "milp-internal1x1-ag",
        teccl_topology::internal1(1),
        CollectiveKind::AllGather,
        1,
        1024.0 * 1024.0,
    );
    c.bench_function("milp_form/internal1_allgather", |b| {
        b.iter(|| run_teccl(&scenario, &quick_config(), Method::Milp).unwrap())
    });
}

fn bench_astar_allgather(c: &mut Criterion) {
    let scenario = Scenario::collective(
        "astar-internal2x2-ag",
        teccl_topology::internal2(2),
        CollectiveKind::AllGather,
        1,
        1024.0 * 1024.0,
    );
    c.bench_function("astar/internal2x2_allgather", |b| {
        b.iter(|| run_teccl(&scenario, &quick_config(), Method::AStar).unwrap())
    });
}

fn bench_baselines(c: &mut Criterion) {
    let topo = teccl_topology::dgx1();
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    c.bench_function("baselines/sccl_like_dgx1_allgather", |b| {
        b.iter(|| sccl_like_schedule(&topo, &demand, 25e3).unwrap())
    });
    c.bench_function("baselines/taccl_like_dgx1_allgather", |b| {
        b.iter(|| taccl_like_schedule(&topo, &demand, 25e3, &TacclConfig { attempts: 2, ..Default::default() }).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let topo = teccl_topology::dgx1();
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let ring_order: Vec<NodeId> = [0usize, 1, 2, 3, 7, 6, 5, 4].iter().map(|&i| gpus[i]).collect();
    let schedule = teccl_baselines::ring_all_gather(&topo, &ring_order, 1, 1e6).unwrap();
    c.bench_function("simulator/dgx1_ring_allgather", |b| {
        b.iter(|| simulate(&topo, &demand, &schedule).unwrap())
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lp_alltoall, bench_milp_allgather, bench_astar_allgather, bench_baselines, bench_simulator
}
criterion_main!(benches);
