//! Micro-benchmarks for the quantities behind the paper's solver-time results
//! (Figures 5, 6, 8, 9, Table 4): the LP form, the general MILP, the A*
//! rounds, the baselines, the alpha-beta simulator, and the warm- vs
//! cold-started simplex. Runs on the in-tree harness
//! ([`teccl_bench::microbench`]; the offline toolchain has no criterion) via
//! `cargo bench -p teccl-bench`.

use std::time::Duration;

use teccl_baselines::{sccl_like_schedule, taccl_like_schedule, TacclConfig};
use teccl_bench::microbench::{BenchConfig, Harness};
use teccl_bench::{quick_config, run_teccl, Method, Scenario};
use teccl_collective::{CollectiveKind, DemandMatrix};
use teccl_schedule::simulate;
use teccl_topology::NodeId;

fn bench_lp_alltoall(h: &mut Harness) {
    let scenario = Scenario::collective(
        "lp-internal2x2-atoa",
        teccl_topology::internal2(2),
        CollectiveKind::AllToAll,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("lp_form/internal2x2_alltoall", || {
        run_teccl(&scenario, &quick_config(), Method::Lp).unwrap();
    });
}

fn bench_milp_allgather(h: &mut Harness) {
    let scenario = Scenario::collective(
        "milp-internal1x1-ag",
        teccl_topology::internal1(1),
        CollectiveKind::AllGather,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("milp_form/internal1_allgather", || {
        run_teccl(&scenario, &quick_config(), Method::Milp).unwrap();
    });
}

fn bench_astar_allgather(h: &mut Harness) {
    let scenario = Scenario::collective(
        "astar-internal2x2-ag",
        teccl_topology::internal2(2),
        CollectiveKind::AllGather,
        1,
        1024.0 * 1024.0,
    );
    h.bench_function("astar/internal2x2_allgather", || {
        run_teccl(&scenario, &quick_config(), Method::AStar).unwrap();
    });
}

/// Warm- vs cold-started simplex re-solves on a transportation LP after one
/// bound tightening — the branch-and-bound node pattern in isolation.
fn bench_simplex_warm_vs_cold(h: &mut Harness) {
    let (sf, nv, basis, overrides) = teccl_bench::warm_vs_cold_fixture();
    h.bench_function("lp/simplex_warm_vs_cold", || {
        let sol = teccl_lp::solve_standard_form_from(&sf, nv, &overrides, Some(&basis)).unwrap();
        assert!(sol.has_solution());
    });
    h.bench_function("lp/simplex_cold_resolve", || {
        let sol = teccl_lp::solve_standard_form_from(&sf, nv, &overrides, None).unwrap();
        assert!(sol.has_solution());
    });
}

/// Dual-simplex re-solve after tightening an *active* bound (real pivots),
/// and the degenerate ALLTOALL cold solve guarded by its iteration budget.
fn bench_dual_and_degenerate(h: &mut Harness) {
    let (sf, nv, basis, overrides) = teccl_bench::dual_resolve_fixture();
    h.bench_function("lp/dual_resolve", || {
        let sol = teccl_lp::solve_standard_form_from(&sf, nv, &overrides, Some(&basis)).unwrap();
        assert!(sol.has_solution());
        assert_eq!(sol.stats.warm_starts, 1);
    });
    let (gsf, gnv, budget) = teccl_bench::degenerate_alltoall_fixture();
    h.bench_function("lp/degenerate_alltoall", || {
        let sol = teccl_lp::solve_standard_form(&gsf, gnv).unwrap();
        assert!(!sol.stats.iteration_limit_hit);
        assert!(sol.stats.simplex_iterations <= budget);
    });
    // The same instance with the perturbed pre-pass disabled: the pure
    // projected-steepest-edge phase-2 walk, isolating the pricing core.
    let se_opts = teccl_lp::SimplexOptions {
        pricing: teccl_lp::PricingRule::SteepestEdge,
        perturb_min_rows: usize::MAX,
        perturb_seed: 0,
    };
    h.bench_function("lp/steepest_edge_phase2", || {
        let sol = teccl_lp::solve_standard_form_with_options(&gsf, gnv, &[], None, None, &se_opts)
            .unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
    });
}

/// Intra-request multi-core rows: the wide-tree knapsack B&B at 1 vs 4
/// threads (with the >=1.5x speedup gate armed only where 4 cores exist —
/// elsewhere the skip is printed, never silent), and the 2-racer LP
/// portfolio on the degenerate ALLTOALL against the solo solve it replaces.
fn bench_parallel_solving(h: &mut Harness) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bnb = teccl_bench::parallel_bnb_fixture();
    let solve_bnb = |threads: usize| {
        let sol = bnb
            .solve_with(&teccl_lp::MilpConfig {
                threads,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        sol.objective
    };
    assert!(
        (solve_bnb(1) - solve_bnb(4)).abs() < 1e-6,
        "thread-count invariance broken on the bench instance"
    );
    let seq = h
        .bench_function("lp/parallel_bnb_1thread", || {
            solve_bnb(1);
        })
        .median_ns;
    let par = h
        .bench_function("lp/parallel_bnb_4threads", || {
            solve_bnb(4);
        })
        .median_ns;
    let speedup = seq / par;
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "parallel B&B speedup gate: {speedup:.2}x at 4 threads on {cores} cores (need >=1.5x)"
        );
        println!(
            "lp/parallel_bnb_speedup: {speedup:.2}x at 4 threads ({cores} cores) — gate passed"
        );
    } else {
        println!(
            "lp/parallel_bnb_speedup: {speedup:.2}x at 4 threads — gate SKIPPED ({cores} core(s) available, need 4)"
        );
    }

    let (gsf, gnv, _budget) = teccl_bench::degenerate_alltoall_fixture();
    let solo = h
        .bench_function("lp/portfolio_race_solo_baseline", || {
            let sol = teccl_lp::solve_standard_form(&gsf, gnv).unwrap();
            assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        })
        .median_ns;
    let race = h
        .bench_function("lp/portfolio_race", || {
            let sol = teccl_lp::race_lp(&gsf, gnv, &[], None, None, 2).unwrap();
            assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        })
        .median_ns;
    if cores >= 2 {
        assert!(
            race <= solo * 1.25,
            "portfolio race slower than solo: {:.2} ms vs {:.2} ms",
            race / 1e6,
            solo / 1e6
        );
    } else {
        println!(
            "lp/portfolio_race: {:.2} ms vs solo {:.2} ms — gate SKIPPED ({cores} core(s) available, need 2)",
            race / 1e6,
            solo / 1e6
        );
    }
}

/// Dantzig-Wolfe rows on the 8-GPU internal1(2) ALLTOALL: one warm pricing
/// round (the per-round unit of work the parallel pricing pool amortizes),
/// the full decomposed solve at 1 and 4 pricing threads, and the monolithic
/// solve of the same model. The >=1.5x pricing-speedup gate arms only where
/// 4 cores exist; elsewhere the skip is printed, never silent.
fn bench_dantzig_wolfe(h: &mut Harness) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let form = teccl_bench::dw_alltoall_fixture();
    let structure = form.block_structure().expect("fixture splits into blocks");
    let mono = form
        .model
        .solve_lp_relaxation()
        .expect("monolithic baseline solves");
    let solve_dw = |threads: usize| {
        let sol = teccl_lp::solve_decomposed(
            &form.model,
            &structure,
            None,
            &teccl_lp::DecompOptions {
                threads,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        assert!(
            sol.stats.dw_rounds > 0,
            "bench row must genuinely decompose"
        );
        assert!(
            (sol.objective - mono.objective).abs() <= 1e-6 * mono.objective.abs().max(1.0),
            "decomposed bench row drifted from monolithic"
        );
    };
    solve_dw(1);
    solve_dw(4);

    // One *warm* pricing round: per-block re-solves under alternating
    // coupling duals, each restarting from the previous round's basis.
    let nblocks = structure.num_blocks;
    let mut probs: Vec<teccl_lp::decomp::pricing::PricingProblem> = (0..nblocks)
        .map(|s| teccl_lp::decomp::pricing::PricingProblem::build(&form.model, &structure, s))
        .collect();
    let zeros = vec![0.0; structure.coupling_rows.len()];
    let ones = vec![1.0; structure.coupling_rows.len()];
    teccl_lp::decomp::pricing::price_round(&mut probs, &zeros, 4, None);
    let mut flip = false;
    h.bench_function("lp/dw_pricing_round", || {
        flip = !flip;
        let y = if flip { &ones } else { &zeros };
        let out = teccl_lp::decomp::pricing::price_round(&mut probs, y, 4, None);
        assert!(out.iter().all(|r| r.is_ok()));
    });

    let dw_1t = h.bench_function("lp/dw_1thread", || solve_dw(1)).median_ns;
    let dw_4t = h.bench_function("lp/dw_4threads", || solve_dw(4)).median_ns;
    let mono_ns = h
        .bench_function("lp/dw_monolithic", || {
            let sol = form.model.solve_lp_relaxation().unwrap();
            assert_eq!(sol.status, teccl_lp::SolveStatus::Optimal);
        })
        .median_ns;
    let speedup = dw_1t / dw_4t;
    println!(
        "lp/dw_vs_monolithic: monolithic {:.2} ms vs decomposed@4 {:.2} ms ({:.2}x)",
        mono_ns / 1e6,
        dw_4t / 1e6,
        mono_ns / dw_4t
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "DW pricing speedup gate: {speedup:.2}x at 4 threads on {cores} cores (need >=1.5x)"
        );
        println!("lp/dw_speedup: {speedup:.2}x at 4 threads ({cores} cores) — gate passed");
    } else {
        println!(
            "lp/dw_speedup: {speedup:.2}x at 4 threads — gate SKIPPED ({cores} core(s) available, need 4)"
        );
    }
}

/// The eta-accumulation → fill-triggered-refactorization cycle on the
/// degenerate instance's optimal basis: identity column replacements grow the
/// eta file until [`teccl_lp::LuFactors::needs_refactor`] fires, then the
/// basis is refactorized from scratch (the Gilbert–Peierls path).
fn bench_lu_refactor(h: &mut Harness) {
    let (m, basis_cols) = teccl_bench::lu_refactor_fixture();
    h.bench_function("lp/lu_refactor_fill", || {
        let mut lu = teccl_lp::LuFactors::factorize(m, &basis_cols).unwrap();
        let mut r = 0usize;
        while !lu.needs_refactor() {
            let mut w = vec![0.0; m];
            for (pos, &i) in basis_cols[r].indices.iter().enumerate() {
                w[i] = basis_cols[r].values[pos];
            }
            lu.ftran(&mut w);
            lu.update(&w, r).unwrap();
            r = (r + 1) % m;
        }
        let fresh = teccl_lp::LuFactors::factorize(m, &basis_cols).unwrap();
        assert!(fresh.fill_nnz() > 0);
    });
}

/// A* cross-round warm starts with presolve on (the layout-preserving
/// presolve keeps the carried root basis valid): warm rounds must stay on the
/// warm path and cost no more simplex iterations than all-cold rounds.
fn bench_presolve_warm_rounds(h: &mut Harness) {
    let (scenario, warm_cfg, cold_cfg) = teccl_bench::warm_rounds_fixture();
    let cold = run_teccl(&scenario, &cold_cfg, Method::AStar).expect("fixture solves cold");
    h.bench_function("lp/presolve_cold_rounds", || {
        run_teccl(&scenario, &cold_cfg, Method::AStar).unwrap();
    });
    h.bench_function("lp/presolve_warm_rounds", || {
        let warm = run_teccl(&scenario, &warm_cfg, Method::AStar).unwrap();
        assert!(warm.warm_starts > 0, "A* rounds fell off the warm path");
        assert!(warm.cold_starts <= 1, "only the first round may start cold");
        assert!(warm.simplex_iterations <= cold.simplex_iterations);
    });
}

/// Schedule-service benches: steady-state hit latency (which must never
/// fall off the no-solve path) and request throughput at a fixed hit ratio
/// (one evicted key per 64-request batch → exactly one solve per batch).
fn bench_service(h: &mut Harness) {
    use teccl_service::CacheStatus;
    let (svc, pool) = teccl_bench::service_bench_fixture();
    // Pre-solve every key once so hits are hits.
    for req in &pool {
        svc.request(req.clone()).expect("fixture request solves");
    }

    let hot = pool[1].clone();
    let solves_before = svc.stats().solves;
    h.bench_function("service/cache_hit_latency", || {
        let served = svc.request(hot.clone()).expect("hit");
        assert_eq!(
            served.cache,
            CacheStatus::Hit,
            "cache hit fell off the no-solve path"
        );
    });
    let stats = svc.stats();
    assert_eq!(
        stats.solves, solves_before,
        "cache hits must not invoke the solver"
    );

    let cold_key = pool[0].key().hash;
    h.bench_function("service/throughput", || {
        // 64 requests over 8 keys, one of which was just evicted: exactly
        // one solve, the rest in-memory hits (or coalesced with that solve).
        svc.evict_key(cold_key);
        let tickets: Vec<_> = (0..64)
            .map(|i| svc.submit(pool[i % pool.len()].clone()))
            .collect();
        for t in tickets {
            t.wait().expect("batch request solves");
        }
    });

    // Degraded fallback: an already-expired deadline on a request whose
    // exact solve takes tens of seconds must descend the ladder to the
    // instant baseline — without a single simplex pivot.
    let (fb_svc, fb_req) = teccl_bench::degraded_fallback_fixture();
    let fb_hash = fb_req.key().hash;
    h.bench_function("service/degraded_fallback_latency", || {
        fb_svc.evict_key(fb_hash);
        let served = fb_svc.request(fb_req.clone()).expect("fallback serves");
        assert_eq!(served.quality, teccl_service::Quality::Baseline);
    });
    assert_eq!(
        fb_svc.stats().solve_simplex_iterations,
        0,
        "the baseline fallback must never touch the simplex"
    );
    fb_svc.shutdown();
}

fn bench_baselines(h: &mut Harness) {
    let topo = teccl_topology::dgx1();
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    h.bench_function("baselines/sccl_like_dgx1_allgather", || {
        sccl_like_schedule(&topo, &demand, 25e3).unwrap();
    });
    h.bench_function("baselines/taccl_like_dgx1_allgather", || {
        taccl_like_schedule(
            &topo,
            &demand,
            25e3,
            &TacclConfig {
                attempts: 2,
                ..Default::default()
            },
        )
        .unwrap();
    });
}

fn bench_simulator(h: &mut Harness) {
    let topo = teccl_topology::dgx1();
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let ring_order: Vec<NodeId> = [0usize, 1, 2, 3, 7, 6, 5, 4]
        .iter()
        .map(|&i| gpus[i])
        .collect();
    let schedule = teccl_baselines::ring_all_gather(&topo, &ring_order, 1, 1e6).unwrap();
    h.bench_function("simulator/dgx1_ring_allgather", || {
        simulate(&topo, &demand, &schedule).unwrap();
    });
}

fn main() {
    let mut h = Harness::new(BenchConfig {
        measurement_time: Duration::from_secs(8),
        sample_count: 10,
        ..Default::default()
    });
    bench_lp_alltoall(&mut h);
    bench_milp_allgather(&mut h);
    bench_astar_allgather(&mut h);
    bench_simplex_warm_vs_cold(&mut h);
    bench_dual_and_degenerate(&mut h);
    bench_parallel_solving(&mut h);
    bench_dantzig_wolfe(&mut h);
    bench_lu_refactor(&mut h);
    bench_presolve_warm_rounds(&mut h);
    bench_service(&mut h);
    bench_baselines(&mut h);
    bench_simulator(&mut h);
}
