//! Event-driven α–β simulator.
//!
//! Plays a schedule out on a topology under the α–β cost model (§2.1): every
//! link transmits one chunk at a time, a chunk occupies the link for
//! `chunk_bytes / capacity` seconds (the β term) and becomes available at the
//! receiver an additional `α` seconds later. A send cannot start before its
//! chunk is available at the sender and before the link has finished its
//! previous send (per-link FIFO in schedule order). When the schedule is
//! epoch-paced (`epoch_duration > 0`), a send also cannot start before its
//! epoch begins.
//!
//! The resulting collective finish time is the paper's **transfer time**
//! metric; dividing the output buffer size by it gives the **algorithmic
//! bandwidth** (§6).

use std::collections::BTreeMap;
use std::fmt;

use teccl_collective::DemandMatrix;
use teccl_topology::{NodeId, Topology};

use crate::schedule::{ChunkId, Schedule};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A send references a link not present in the topology.
    NoSuchLink { from: NodeId, to: NodeId },
    /// The schedule deadlocked: some sends could never start because their
    /// chunk never became available at the sender.
    Stuck { unstarted_sends: usize },
    /// The schedule finished but some demands were never delivered.
    DemandUnsatisfied { missing: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchLink { from, to } => write!(f, "no link {from}->{to} in topology"),
            SimError::Stuck { unstarted_sends } => {
                write!(
                    f,
                    "schedule deadlocked with {unstarted_sends} sends never able to start"
                )
            }
            SimError::DemandUnsatisfied { missing } => {
                write!(f, "{missing} demands not delivered by the schedule")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of simulating a schedule.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Collective finish time in seconds: the time the last demanded chunk
    /// arrives at its destination.
    pub transfer_time: f64,
    /// Per-send completion times (arrival at the receiver), in schedule order.
    pub send_completion_times: Vec<f64>,
    /// Total bytes transmitted.
    pub bytes_on_wire: f64,
    /// Time each (chunk, node) pair first became available, for debugging and
    /// for metrics that need per-destination arrival times.
    pub availability: BTreeMap<(ChunkId, NodeId), f64>,
}

impl SimReport {
    /// Algorithmic bandwidth for a given output buffer size (bytes):
    /// `output_buffer / transfer_time` (§6, borrowed from TACCL).
    pub fn algorithmic_bandwidth(&self, output_buffer_bytes: f64) -> f64 {
        output_buffer_bytes / self.transfer_time
    }
}

/// Simulates `schedule` over `topology`, checking that `demand` is satisfied.
pub fn simulate(
    topology: &Topology,
    demand: &DemandMatrix,
    schedule: &Schedule,
) -> Result<SimReport, SimError> {
    let sends = schedule.sorted_sends();

    // Availability time of each chunk at each node; sources start at t = 0.
    let mut avail: BTreeMap<(ChunkId, NodeId), f64> = BTreeMap::new();
    for s in 0..demand.num_nodes {
        for c in 0..demand.num_chunks {
            if demand.chunk_in_use(NodeId(s), c) {
                avail.insert((ChunkId::new(NodeId(s), c), NodeId(s)), 0.0);
            }
        }
    }

    // Per-link FIFO queues in schedule order.
    let mut queues: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, snd) in sends.iter().enumerate() {
        if topology.link_between(snd.from, snd.to).is_none() {
            return Err(SimError::NoSuchLink {
                from: snd.from,
                to: snd.to,
            });
        }
        queues.entry((snd.from.0, snd.to.0)).or_default().push(i);
    }
    let mut queue_pos: BTreeMap<(usize, usize), usize> = queues.keys().map(|&k| (k, 0)).collect();
    let mut link_free: BTreeMap<(usize, usize), f64> = queues.keys().map(|&k| (k, 0.0)).collect();

    let mut completion = vec![f64::NAN; sends.len()];
    let mut remaining = sends.len();

    // Relaxation loop: repeatedly start every head-of-queue send whose chunk is
    // already available. Each pass starts at least one send if the schedule is
    // causally consistent.
    loop {
        let mut progressed = false;
        for (&link_key, indices) in queues.iter() {
            let pos = queue_pos.get_mut(&link_key).unwrap();
            while *pos < indices.len() {
                let i = indices[*pos];
                let snd = &sends[i];
                let chunk_avail = match avail.get(&(snd.chunk, snd.from)) {
                    Some(&t) => t,
                    None => break, // head-of-line blocked: chunk not yet available
                };
                let link = topology.link_between(snd.from, snd.to).expect("checked");
                let epoch_start = if schedule.epoch_duration > 0.0 {
                    snd.epoch as f64 * schedule.epoch_duration
                } else {
                    0.0
                };
                let start = chunk_avail
                    .max(*link_free.get(&link_key).unwrap())
                    .max(epoch_start);
                let tx_done = start + schedule.chunk_bytes / link.capacity;
                let arrival = tx_done + link.alpha;
                link_free.insert(link_key, tx_done);
                completion[i] = arrival;
                let entry = avail.entry((snd.chunk, snd.to)).or_insert(f64::INFINITY);
                if arrival < *entry {
                    *entry = arrival;
                }
                *pos += 1;
                remaining -= 1;
                progressed = true;
            }
        }
        if remaining == 0 {
            break;
        }
        if !progressed {
            return Err(SimError::Stuck {
                unstarted_sends: remaining,
            });
        }
    }

    // Determine the collective finish time from the demands.
    let mut finish: f64 = 0.0;
    let mut missing = 0usize;
    for (s, c, d) in demand.iter() {
        match avail.get(&(ChunkId::new(s, c), d)) {
            Some(&t) if t.is_finite() => finish = finish.max(t),
            _ => missing += 1,
        }
    }
    if missing > 0 {
        return Err(SimError::DemandUnsatisfied { missing });
    }

    Ok(SimReport {
        transfer_time: finish,
        send_completion_times: completion,
        bytes_on_wire: schedule.total_bytes_on_wire(),
        availability: avail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use teccl_topology::{line_topology, Topology};

    const MB: f64 = 1e6;

    #[test]
    fn single_hop_time_is_alpha_plus_beta() {
        let mut topo = Topology::new("pair");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        topo.add_bilink(a, b, 1e9, 5e-6);
        let gpus = vec![a, b];
        let demand = DemandMatrix::broadcast(2, &gpus, a, 1);
        let mut sch = Schedule::new("one", MB);
        sch.push(ChunkId::new(a, 0), a, b, 0);
        let rep = simulate(&topo, &demand, &sch).unwrap();
        // 1 MB / 1 GB/s = 1 ms, + 5 µs alpha.
        assert!((rep.transfer_time - (1e-3 + 5e-6)).abs() < 1e-12);
        assert!((rep.algorithmic_bandwidth(MB) - MB / (1e-3 + 5e-6)).abs() < 1.0);
    }

    #[test]
    fn pipeline_overlaps_hops() {
        // Two chunks relayed over a 3-node line: with pipelining the second
        // hop of chunk 0 overlaps the first hop of chunk 1.
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 2);
        let mut sch = Schedule::new("pipe", MB);
        for c in 0..2 {
            sch.push(ChunkId::new(NodeId(0), c), NodeId(0), NodeId(1), c);
            sch.push(ChunkId::new(NodeId(0), c), NodeId(1), NodeId(2), c + 1);
        }
        let rep = simulate(&topo, &demand, &sch).unwrap();
        // Without pipelining it would be 4 ms; with pipelining 3 ms.
        assert!(
            (rep.transfer_time - 3e-3).abs() < 1e-9,
            "{}",
            rep.transfer_time
        );
    }

    #[test]
    fn link_serialization_is_respected() {
        // Two chunks on the same link cannot overlap.
        let mut topo = Topology::new("pair");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        topo.add_bilink(a, b, 1e9, 0.0);
        let gpus = vec![a, b];
        let demand = DemandMatrix::broadcast(2, &gpus, a, 2);
        let mut sch = Schedule::new("serial", MB);
        sch.push(ChunkId::new(a, 0), a, b, 0);
        sch.push(ChunkId::new(a, 1), a, b, 0);
        let rep = simulate(&topo, &demand, &sch).unwrap();
        assert!((rep.transfer_time - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn stuck_schedule_is_detected() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let mut sch = Schedule::new("stuck", MB);
        // Node 1 forwards a chunk it never receives.
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 0);
        let err = simulate(&topo, &demand, &sch).unwrap_err();
        assert!(matches!(err, SimError::Stuck { .. }));
    }

    #[test]
    fn missing_demand_is_detected() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let mut sch = Schedule::new("partial", MB);
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        let err = simulate(&topo, &demand, &sch).unwrap_err();
        assert!(matches!(err, SimError::DemandUnsatisfied { missing: 1 }));
    }

    #[test]
    fn missing_link_is_detected() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let mut sch = Schedule::new("nolink", MB);
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(2), 0);
        let err = simulate(&topo, &demand, &sch).unwrap_err();
        assert!(matches!(err, SimError::NoSuchLink { .. }));
    }

    #[test]
    fn out_of_order_issue_resolves_via_relaxation() {
        // The second hop is scheduled on a link whose queue is examined before
        // the first hop's link; the relaxation loop must still resolve it.
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let mut sch = Schedule::new("ooo", MB);
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 1);
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        let rep = simulate(&topo, &demand, &sch).unwrap();
        assert!((rep.transfer_time - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn epoch_pacing_delays_sends() {
        // With a 10 ms epoch duration, a send in epoch 1 cannot start before
        // t = 10 ms even though the link and chunk are ready earlier.
        let mut topo = Topology::new("pair");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        topo.add_bilink(a, b, 1e9, 0.0);
        let gpus = vec![a, b];
        let demand = DemandMatrix::broadcast(2, &gpus, a, 1);
        let mut sch = Schedule::new("paced", MB);
        sch.epoch_duration = 10e-3;
        sch.push(ChunkId::new(a, 0), a, b, 1);
        let rep = simulate(&topo, &demand, &sch).unwrap();
        assert!((rep.transfer_time - 11e-3).abs() < 1e-9);
    }

    #[test]
    fn copy_fanout_from_relay() {
        // Relay duplicates the chunk to two destinations (Figure 1c shape).
        let topo = teccl_topology::fig1c(1e9);
        let gpus: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut demand = DemandMatrix::new(5, 1);
        for d in 2..5 {
            demand.set(NodeId(0), 0, NodeId(d));
        }
        let _ = gpus;
        let mut sch = Schedule::new("fanout", MB);
        let ch = ChunkId::new(NodeId(0), 0);
        sch.push(ch, NodeId(0), NodeId(1), 0);
        for d in 2..5 {
            sch.push(ch, NodeId(1), NodeId(d), 1);
        }
        let rep = simulate(&topo, &demand, &sch).unwrap();
        // s->h takes 1 ms; the three copies go out on three separate links in
        // parallel, each 1 ms → total 2 ms.
        assert!((rep.transfer_time - 2e-3).abs() < 1e-9);
        assert_eq!(rep.bytes_on_wire, 4.0 * MB);
    }
}
