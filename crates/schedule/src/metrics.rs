//! The paper's evaluation metrics (§6 "Metrics").

use teccl_util::json::{JsonError, Value};

/// Metrics of one collective run, mirroring §6 and the columns of Table 8:
/// epoch duration (ED), collective finish / transfer time (CT), solver
/// time (ST) and algorithmic bandwidth (AB).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveMetrics {
    /// Name of the solver / algorithm.
    pub solver: String,
    /// Epoch duration in seconds (0 if not epoch based).
    pub epoch_duration: f64,
    /// Transfer (collective finish) time in seconds.
    pub transfer_time: f64,
    /// Wall-clock solver time in seconds.
    pub solver_time: f64,
    /// Output buffer size in bytes (data each GPU ends up holding).
    pub output_buffer_bytes: f64,
    /// Total bytes placed on the wire by the schedule.
    pub bytes_on_wire: f64,
}

impl CollectiveMetrics {
    /// Algorithmic bandwidth in bytes/second: output buffer size divided by
    /// the transfer time (TACCL's metric, reused by the paper).
    pub fn algorithmic_bandwidth(&self) -> f64 {
        self.output_buffer_bytes / self.transfer_time
    }

    /// Algorithmic bandwidth in GB/s (the unit of Table 8).
    pub fn algorithmic_bandwidth_gbps(&self) -> f64 {
        self.algorithmic_bandwidth() / 1e9
    }

    /// Serializes the metrics to JSON.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("solver", Value::from(self.solver.clone())),
            ("epoch_duration", Value::from(self.epoch_duration)),
            ("transfer_time", Value::from(self.transfer_time)),
            ("solver_time", Value::from(self.solver_time)),
            ("output_buffer_bytes", Value::from(self.output_buffer_bytes)),
            ("bytes_on_wire", Value::from(self.bytes_on_wire)),
        ])
    }

    /// Deserializes metrics from the JSON produced by
    /// [`CollectiveMetrics::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<CollectiveMetrics, JsonError> {
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or(bad("missing numeric field"))
        };
        Ok(CollectiveMetrics {
            solver: v
                .get("solver")
                .and_then(Value::as_str)
                .ok_or(bad("missing solver"))?
                .to_string(),
            epoch_duration: num("epoch_duration")?,
            transfer_time: num("transfer_time")?,
            solver_time: num("solver_time")?,
            output_buffer_bytes: num("output_buffer_bytes")?,
            bytes_on_wire: num("bytes_on_wire")?,
        })
    }
}

/// Percentage improvement of `ours` over `baseline`:
/// `100 * (ours - baseline) / baseline` — the quantity plotted in Figures 4–6
/// (bandwidth: higher is better) and Figure 5 (solver-time speedup).
pub fn percent_improvement(ours: f64, baseline: f64) -> f64 {
    100.0 * (ours - baseline) / baseline
}

/// Percentage reduction of `ours` relative to `baseline`:
/// `100 * (baseline - ours) / baseline` (used when lower is better, e.g. the
/// transfer-time delta of Table 7).
pub fn percent_reduction(ours: f64, baseline: f64) -> f64 {
    100.0 * (baseline - ours) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithmic_bandwidth_definition() {
        let m = CollectiveMetrics {
            solver: "te-ccl".into(),
            epoch_duration: 1e-3,
            transfer_time: 0.5,
            solver_time: 2.0,
            output_buffer_bytes: 1e9,
            bytes_on_wire: 7e9,
        };
        assert!((m.algorithmic_bandwidth() - 2e9).abs() < 1.0);
        assert!((m.algorithmic_bandwidth_gbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_and_reduction() {
        assert!((percent_improvement(3.0, 2.0) - 50.0).abs() < 1e-12);
        assert!((percent_improvement(2.0, 2.0)).abs() < 1e-12);
        assert!((percent_reduction(1.0, 2.0) - 50.0).abs() < 1e-12);
        assert!(percent_improvement(1.0, 2.0) < 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = CollectiveMetrics {
            solver: "x".into(),
            epoch_duration: 0.0,
            transfer_time: 1.0,
            solver_time: 0.1,
            output_buffer_bytes: 10.0,
            bytes_on_wire: 20.0,
        };
        let s = m.to_json_value().to_json();
        let back = CollectiveMetrics::from_json_value(&Value::parse(&s).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
