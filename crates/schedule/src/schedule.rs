//! The schedule data model: which chunk crosses which link in which epoch.

use serde::{Deserialize, Serialize};
use teccl_topology::NodeId;

/// Identity of a chunk: the source GPU it originates from plus its per-source
/// chunk index (`(s, c)` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId {
    /// Source GPU.
    pub source: NodeId,
    /// Chunk index within the source.
    pub chunk: usize,
}

impl ChunkId {
    /// Creates a chunk id.
    pub fn new(source: NodeId, chunk: usize) -> Self {
        Self { source, chunk }
    }
}

/// One scheduled transmission of a chunk over a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Send {
    /// The chunk being sent.
    pub chunk: ChunkId,
    /// The transmitting node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The epoch (discrete time slot) in which the send is issued. For
    /// baselines that are step- rather than epoch-based, this is the step
    /// index; it always provides the causal ordering of the schedule.
    pub epoch: usize,
}

/// A complete collective schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Name of the algorithm / solver that produced the schedule.
    pub name: String,
    /// Size of one chunk in bytes.
    pub chunk_bytes: f64,
    /// Epoch duration in seconds (`0.0` for schedules that are only causally
    /// ordered, e.g. the ring baseline — the simulator then ignores epoch
    /// pacing and uses pure dependency/link availability).
    pub epoch_duration: f64,
    /// Number of epochs the schedule spans.
    pub num_epochs: usize,
    /// All sends, in no particular order (sorting happens on demand).
    pub sends: Vec<Send>,
    /// Wall-clock time the solver spent producing this schedule, in seconds.
    pub solver_time: f64,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new(name: impl Into<String>, chunk_bytes: f64) -> Self {
        Self {
            name: name.into(),
            chunk_bytes,
            epoch_duration: 0.0,
            num_epochs: 0,
            sends: Vec::new(),
            solver_time: 0.0,
        }
    }

    /// Adds a send and keeps `num_epochs` in sync.
    pub fn push(&mut self, chunk: ChunkId, from: NodeId, to: NodeId, epoch: usize) {
        self.sends.push(Send { chunk, from, to, epoch });
        self.num_epochs = self.num_epochs.max(epoch + 1);
    }

    /// Number of sends.
    pub fn num_sends(&self) -> usize {
        self.sends.len()
    }

    /// Total bytes put on the wire by this schedule (each send of a chunk
    /// counts once — the "fewer bytes" half of the paper's quality claim).
    pub fn total_bytes_on_wire(&self) -> f64 {
        self.sends.len() as f64 * self.chunk_bytes
    }

    /// Sends sorted by (epoch, from, to, chunk) — a stable, deterministic order
    /// used by validation, simulation and export.
    pub fn sorted_sends(&self) -> Vec<Send> {
        let mut s = self.sends.clone();
        s.sort_by_key(|snd| (snd.epoch, snd.from, snd.to, snd.chunk.source, snd.chunk.chunk));
        s
    }

    /// Sends issued in a given epoch.
    pub fn sends_in_epoch(&self, epoch: usize) -> impl Iterator<Item = &Send> + '_ {
        self.sends.iter().filter(move |s| s.epoch == epoch)
    }

    /// The highest epoch index that actually carries a send (`None` for an
    /// empty schedule).
    pub fn last_used_epoch(&self) -> Option<usize> {
        self.sends.iter().map(|s| s.epoch).max()
    }

    /// Exports the schedule in an MSCCL-inspired JSON format: one entry per
    /// GPU with its ordered send and receive operations. The paper converts
    /// TE-CCL solutions into MSCCL to run them on hardware (§6); this export
    /// is the moral equivalent for downstream tooling.
    pub fn to_msccl_json(&self) -> serde_json::Value {
        use serde_json::json;
        let mut per_gpu: std::collections::BTreeMap<usize, Vec<serde_json::Value>> =
            std::collections::BTreeMap::new();
        for s in self.sorted_sends() {
            per_gpu.entry(s.from.0).or_default().push(json!({
                "op": "send",
                "chunk_source": s.chunk.source.0,
                "chunk_index": s.chunk.chunk,
                "peer": s.to.0,
                "step": s.epoch,
            }));
            per_gpu.entry(s.to.0).or_default().push(json!({
                "op": "recv",
                "chunk_source": s.chunk.source.0,
                "chunk_index": s.chunk.chunk,
                "peer": s.from.0,
                "step": s.epoch,
            }));
        }
        json!({
            "name": self.name,
            "chunk_bytes": self.chunk_bytes,
            "epoch_duration_s": self.epoch_duration,
            "num_epochs": self.num_epochs,
            "gpus": per_gpu.into_iter().map(|(gpu, ops)| json!({"id": gpu, "ops": ops})).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_epochs() {
        let mut s = Schedule::new("test", 1024.0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 3);
        assert_eq!(s.num_epochs, 4);
        assert_eq!(s.num_sends(), 2);
        assert_eq!(s.last_used_epoch(), Some(3));
        assert_eq!(s.total_bytes_on_wire(), 2048.0);
    }

    #[test]
    fn sorted_sends_are_deterministic() {
        let mut s = Schedule::new("test", 1.0);
        s.push(ChunkId::new(NodeId(1), 0), NodeId(1), NodeId(2), 1);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 1), NodeId(0), NodeId(2), 0);
        let sorted = s.sorted_sends();
        assert_eq!(sorted[0].epoch, 0);
        assert_eq!(sorted[0].from, NodeId(0));
        assert_eq!(sorted[2].epoch, 1);
    }

    #[test]
    fn sends_in_epoch_filter() {
        let mut s = Schedule::new("test", 1.0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 1);
        assert_eq!(s.sends_in_epoch(0).count(), 1);
        assert_eq!(s.sends_in_epoch(1).count(), 1);
        assert_eq!(s.sends_in_epoch(2).count(), 0);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new("empty", 1.0);
        assert_eq!(s.last_used_epoch(), None);
        assert_eq!(s.num_sends(), 0);
    }

    #[test]
    fn msccl_export_contains_all_ops() {
        let mut s = Schedule::new("export", 4096.0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 1);
        let v = s.to_msccl_json();
        assert_eq!(v["name"], "export");
        let gpus = v["gpus"].as_array().unwrap();
        // GPUs 0, 1, 2 all participate.
        assert_eq!(gpus.len(), 3);
        // GPU 1 both receives and sends.
        let gpu1 = gpus.iter().find(|g| g["id"] == 1).unwrap();
        assert_eq!(gpu1["ops"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Schedule::new("round", 8.0);
        s.push(ChunkId::new(NodeId(0), 2), NodeId(0), NodeId(1), 5);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sends, s.sends);
        assert_eq!(back.num_epochs, 6);
    }
}
