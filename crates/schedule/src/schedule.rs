//! The schedule data model: which chunk crosses which link in which epoch.

use teccl_topology::NodeId;
use teccl_util::json::{JsonError, Value};

/// Identity of a chunk: the source GPU it originates from plus its per-source
/// chunk index (`(s, c)` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// Source GPU.
    pub source: NodeId,
    /// Chunk index within the source.
    pub chunk: usize,
}

impl ChunkId {
    /// Creates a chunk id.
    pub fn new(source: NodeId, chunk: usize) -> Self {
        Self { source, chunk }
    }
}

/// One scheduled transmission of a chunk over a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Send {
    /// The chunk being sent.
    pub chunk: ChunkId,
    /// The transmitting node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The epoch (discrete time slot) in which the send is issued. For
    /// baselines that are step- rather than epoch-based, this is the step
    /// index; it always provides the causal ordering of the schedule.
    pub epoch: usize,
}

/// A complete collective schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Name of the algorithm / solver that produced the schedule.
    pub name: String,
    /// Size of one chunk in bytes.
    pub chunk_bytes: f64,
    /// Epoch duration in seconds (`0.0` for schedules that are only causally
    /// ordered, e.g. the ring baseline — the simulator then ignores epoch
    /// pacing and uses pure dependency/link availability).
    pub epoch_duration: f64,
    /// Number of epochs the schedule spans.
    pub num_epochs: usize,
    /// All sends, in no particular order (sorting happens on demand).
    pub sends: Vec<Send>,
    /// Wall-clock time the solver spent producing this schedule, in seconds.
    pub solver_time: f64,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new(name: impl Into<String>, chunk_bytes: f64) -> Self {
        Self {
            name: name.into(),
            chunk_bytes,
            epoch_duration: 0.0,
            num_epochs: 0,
            sends: Vec::new(),
            solver_time: 0.0,
        }
    }

    /// Adds a send and keeps `num_epochs` in sync.
    pub fn push(&mut self, chunk: ChunkId, from: NodeId, to: NodeId, epoch: usize) {
        self.sends.push(Send {
            chunk,
            from,
            to,
            epoch,
        });
        self.num_epochs = self.num_epochs.max(epoch + 1);
    }

    /// Number of sends.
    pub fn num_sends(&self) -> usize {
        self.sends.len()
    }

    /// Total bytes put on the wire by this schedule (each send of a chunk
    /// counts once — the "fewer bytes" half of the paper's quality claim).
    pub fn total_bytes_on_wire(&self) -> f64 {
        self.sends.len() as f64 * self.chunk_bytes
    }

    /// Sends sorted by (epoch, from, to, chunk) — a stable, deterministic order
    /// used by validation, simulation and export.
    pub fn sorted_sends(&self) -> Vec<Send> {
        let mut s = self.sends.clone();
        s.sort_by_key(|snd| {
            (
                snd.epoch,
                snd.from,
                snd.to,
                snd.chunk.source,
                snd.chunk.chunk,
            )
        });
        s
    }

    /// Sends issued in a given epoch.
    pub fn sends_in_epoch(&self, epoch: usize) -> impl Iterator<Item = &Send> + '_ {
        self.sends.iter().filter(move |s| s.epoch == epoch)
    }

    /// The highest epoch index that actually carries a send (`None` for an
    /// empty schedule).
    pub fn last_used_epoch(&self) -> Option<usize> {
        self.sends.iter().map(|s| s.epoch).max()
    }

    /// Exports the schedule in an MSCCL-inspired JSON format: one entry per
    /// GPU with its ordered send and receive operations. The paper converts
    /// TE-CCL solutions into MSCCL to run them on hardware (§6); this export
    /// is the moral equivalent for downstream tooling.
    pub fn to_msccl_json(&self) -> Value {
        let op = |op: &str, s: &Send, peer: usize| {
            Value::obj(vec![
                ("op", Value::from(op)),
                ("chunk_source", Value::from(s.chunk.source.0)),
                ("chunk_index", Value::from(s.chunk.chunk)),
                ("peer", Value::from(peer)),
                ("step", Value::from(s.epoch)),
            ])
        };
        let mut per_gpu: std::collections::BTreeMap<usize, Vec<Value>> =
            std::collections::BTreeMap::new();
        for s in self.sorted_sends() {
            per_gpu
                .entry(s.from.0)
                .or_default()
                .push(op("send", &s, s.to.0));
            per_gpu
                .entry(s.to.0)
                .or_default()
                .push(op("recv", &s, s.from.0));
        }
        Value::obj(vec![
            ("name", Value::from(self.name.clone())),
            ("chunk_bytes", Value::from(self.chunk_bytes)),
            ("epoch_duration_s", Value::from(self.epoch_duration)),
            ("num_epochs", Value::from(self.num_epochs)),
            (
                "gpus",
                Value::Arr(
                    per_gpu
                        .into_iter()
                        .map(|(gpu, ops)| {
                            Value::obj(vec![("id", Value::from(gpu)), ("ops", Value::Arr(ops))])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the full schedule (not the MSCCL export) to JSON.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("name", Value::from(self.name.clone())),
            ("chunk_bytes", Value::from(self.chunk_bytes)),
            ("epoch_duration", Value::from(self.epoch_duration)),
            ("num_epochs", Value::from(self.num_epochs)),
            ("solver_time", Value::from(self.solver_time)),
            (
                "sends",
                Value::Arr(
                    self.sends
                        .iter()
                        .map(|s| {
                            Value::obj(vec![
                                ("source", Value::from(s.chunk.source.0)),
                                ("chunk", Value::from(s.chunk.chunk)),
                                ("from", Value::from(s.from.0)),
                                ("to", Value::from(s.to.0)),
                                ("epoch", Value::from(s.epoch)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a schedule from the JSON produced by
    /// [`Schedule::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Schedule, JsonError> {
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        let mut s = Schedule::new(
            v.get("name")
                .and_then(Value::as_str)
                .ok_or(bad("missing name"))?,
            v.get("chunk_bytes")
                .and_then(Value::as_f64)
                .ok_or(bad("missing chunk_bytes"))?,
        );
        s.epoch_duration = v
            .get("epoch_duration")
            .and_then(Value::as_f64)
            .ok_or(bad("missing epoch_duration"))?;
        s.solver_time = v.get("solver_time").and_then(Value::as_f64).unwrap_or(0.0);
        for snd in v
            .get("sends")
            .and_then(Value::as_arr)
            .ok_or(bad("missing sends"))?
        {
            let field = |k: &str| {
                snd.get(k)
                    .and_then(Value::as_usize)
                    .ok_or(bad("bad send field"))
            };
            s.push(
                ChunkId::new(NodeId(field("source")?), field("chunk")?),
                NodeId(field("from")?),
                NodeId(field("to")?),
                field("epoch")?,
            );
        }
        s.num_epochs = s.num_epochs.max(
            v.get("num_epochs")
                .and_then(Value::as_usize)
                .ok_or(bad("missing num_epochs"))?,
        );
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_epochs() {
        let mut s = Schedule::new("test", 1024.0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 3);
        assert_eq!(s.num_epochs, 4);
        assert_eq!(s.num_sends(), 2);
        assert_eq!(s.last_used_epoch(), Some(3));
        assert_eq!(s.total_bytes_on_wire(), 2048.0);
    }

    #[test]
    fn sorted_sends_are_deterministic() {
        let mut s = Schedule::new("test", 1.0);
        s.push(ChunkId::new(NodeId(1), 0), NodeId(1), NodeId(2), 1);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 1), NodeId(0), NodeId(2), 0);
        let sorted = s.sorted_sends();
        assert_eq!(sorted[0].epoch, 0);
        assert_eq!(sorted[0].from, NodeId(0));
        assert_eq!(sorted[2].epoch, 1);
    }

    #[test]
    fn sends_in_epoch_filter() {
        let mut s = Schedule::new("test", 1.0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 1);
        assert_eq!(s.sends_in_epoch(0).count(), 1);
        assert_eq!(s.sends_in_epoch(1).count(), 1);
        assert_eq!(s.sends_in_epoch(2).count(), 0);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new("empty", 1.0);
        assert_eq!(s.last_used_epoch(), None);
        assert_eq!(s.num_sends(), 0);
    }

    #[test]
    fn msccl_export_contains_all_ops() {
        let mut s = Schedule::new("export", 4096.0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(0), 0), NodeId(1), NodeId(2), 1);
        let v = s.to_msccl_json();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("export"));
        let gpus = v.get("gpus").and_then(Value::as_arr).unwrap();
        // GPUs 0, 1, 2 all participate.
        assert_eq!(gpus.len(), 3);
        // GPU 1 both receives and sends.
        let gpu1 = gpus
            .iter()
            .find(|g| g.get("id").and_then(Value::as_usize) == Some(1))
            .unwrap();
        assert_eq!(gpu1.get("ops").and_then(Value::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Schedule::new("round", 8.0);
        s.push(ChunkId::new(NodeId(0), 2), NodeId(0), NodeId(1), 5);
        let json = s.to_json_value().to_json();
        let back = Schedule::from_json_value(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back.sends, s.sends);
        assert_eq!(back.num_epochs, 6);
    }
}
