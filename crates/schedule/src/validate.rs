//! Schedule validation: causality, capacity and demand satisfaction.
//!
//! The validator replays a schedule epoch by epoch: a node may forward a chunk
//! in epoch `k` only if it is the chunk's source or received the chunk in an
//! earlier epoch (accounting for each link's α-delay in epochs, matching the
//! flow-conservation constraints of §3.1); per-epoch link usage must fit the
//! link's capacity; and at the end every `(s, c, d)` demand must be satisfied.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use teccl_collective::DemandMatrix;
use teccl_topology::{NodeId, Topology};

use crate::schedule::{ChunkId, Schedule};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A send uses a link that does not exist in the topology.
    NoSuchLink {
        from: NodeId,
        to: NodeId,
        epoch: usize,
    },
    /// A node sent a chunk it did not hold at that epoch.
    CausalityViolation {
        node: NodeId,
        chunk: ChunkId,
        epoch: usize,
    },
    /// More chunk-bytes were scheduled on a link in an epoch than it can carry.
    CapacityExceeded {
        from: NodeId,
        to: NodeId,
        epoch: usize,
        chunks: usize,
        capacity_chunks: usize,
    },
    /// A demanded chunk never reached its destination.
    DemandUnsatisfied { chunk: ChunkId, destination: NodeId },
    /// The same send appears twice.
    DuplicateSend {
        chunk: ChunkId,
        from: NodeId,
        to: NodeId,
        epoch: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoSuchLink { from, to, epoch } => {
                write!(f, "epoch {epoch}: no link {from}->{to} in the topology")
            }
            ValidationError::CausalityViolation { node, chunk, epoch } => write!(
                f,
                "epoch {epoch}: node {node} forwards chunk ({}, {}) before holding it",
                chunk.source, chunk.chunk
            ),
            ValidationError::CapacityExceeded { from, to, epoch, chunks, capacity_chunks } => write!(
                f,
                "epoch {epoch}: link {from}->{to} carries {chunks} chunks but only {capacity_chunks} fit"
            ),
            ValidationError::DemandUnsatisfied { chunk, destination } => write!(
                f,
                "demand unsatisfied: chunk ({}, {}) never delivered to {destination}",
                chunk.source, chunk.chunk
            ),
            ValidationError::DuplicateSend { chunk, from, to, epoch } => write!(
                f,
                "duplicate send of chunk ({}, {}) on {from}->{to} at epoch {epoch}",
                chunk.source, chunk.chunk
            ),
        }
    }
}

/// The outcome of validating a schedule.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// All problems found (empty = valid).
    pub errors: Vec<ValidationError>,
}

impl ValidationReport {
    /// `true` if the schedule passed all checks.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validates `schedule` against `topology` and `demand`.
///
/// `check_capacity` controls whether the per-epoch capacity check runs; it
/// requires `schedule.epoch_duration > 0` (baselines that only provide causal
/// step ordering skip it).
pub fn validate(
    topology: &Topology,
    demand: &DemandMatrix,
    schedule: &Schedule,
    check_capacity: bool,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let sends = schedule.sorted_sends();
    let num_epochs = schedule
        .num_epochs
        .max(sends.iter().map(|s| s.epoch + 1).max().unwrap_or(0));

    // holdings[node] = set of chunks the node holds *at the start of the
    // current epoch*; arrivals become visible only after their α-delay.
    let mut holdings: Vec<BTreeSet<ChunkId>> = vec![BTreeSet::new(); topology.num_nodes()];
    // Sources hold their own chunks from the start.
    for (s, holding) in holdings.iter_mut().enumerate().take(demand.num_nodes) {
        for c in 0..demand.num_chunks {
            if demand.chunk_in_use(NodeId(s), c) {
                holding.insert(ChunkId::new(NodeId(s), c));
            }
        }
    }
    // pending[(epoch_visible, node)] -> chunks that become available then.
    let mut pending: BTreeMap<(usize, usize), Vec<ChunkId>> = BTreeMap::new();
    let mut seen_sends: BTreeSet<(usize, usize, usize, usize, usize)> = BTreeSet::new();

    // A very long schedule tail is allowed: chunks may still be in flight
    // after the last send epoch; extend the replay horizon accordingly.
    let horizon = num_epochs + topology.num_nodes() + 8;

    for epoch in 0..horizon {
        // Materialize arrivals that become visible at this epoch.
        if let Some(chunks) = pending.remove(&(epoch, usize::MAX)) {
            // unreachable sentinel bucket; kept for completeness
            drop(chunks);
        }
        let keys: Vec<(usize, usize)> = pending
            .range((epoch, 0)..(epoch, usize::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            if let Some(chunks) = pending.remove(&key) {
                for ch in chunks {
                    holdings[key.1].insert(ch);
                }
            }
        }

        // Process this epoch's sends.
        let mut link_load: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for snd in sends.iter().filter(|s| s.epoch == epoch) {
            let key = (
                snd.epoch,
                snd.from.0,
                snd.to.0,
                snd.chunk.source.0,
                snd.chunk.chunk,
            );
            if !seen_sends.insert(key) {
                report.errors.push(ValidationError::DuplicateSend {
                    chunk: snd.chunk,
                    from: snd.from,
                    to: snd.to,
                    epoch: snd.epoch,
                });
                continue;
            }
            let link = match topology.link_between(snd.from, snd.to) {
                Some(l) => l,
                None => {
                    report.errors.push(ValidationError::NoSuchLink {
                        from: snd.from,
                        to: snd.to,
                        epoch: snd.epoch,
                    });
                    continue;
                }
            };
            if !holdings[snd.from.0].contains(&snd.chunk) {
                report.errors.push(ValidationError::CausalityViolation {
                    node: snd.from,
                    chunk: snd.chunk,
                    epoch: snd.epoch,
                });
            }
            *link_load.entry((snd.from.0, snd.to.0)).or_insert(0) += 1;

            // The chunk becomes usable at `to` after the link's α-delay in
            // epochs (it arrives by the end of epoch k + ceil(δ), so it can be
            // forwarded from epoch k + ceil(δ) + 1 onwards — §3.1).
            let delta_epochs = if schedule.epoch_duration > 0.0 {
                (link.alpha / schedule.epoch_duration).ceil() as usize
            } else {
                0
            };
            let visible = epoch + delta_epochs + 1;
            pending
                .entry((visible, snd.to.0))
                .or_default()
                .push(snd.chunk);
        }

        // Capacity check.
        if check_capacity && schedule.epoch_duration > 0.0 {
            for ((from, to), chunks) in link_load {
                let link = topology
                    .link_between(NodeId(from), NodeId(to))
                    .expect("checked above");
                let cap_chunks = (link.capacity * schedule.epoch_duration / schedule.chunk_bytes
                    + 1e-9)
                    .floor() as usize;
                if chunks > cap_chunks {
                    report.errors.push(ValidationError::CapacityExceeded {
                        from: NodeId(from),
                        to: NodeId(to),
                        epoch,
                        chunks,
                        capacity_chunks: cap_chunks,
                    });
                }
            }
        }
    }

    // Flush any remaining pending arrivals (visible after the horizon —
    // holdings are only used for the demand check below at this point).
    for ((_, node), chunks) in pending {
        for ch in chunks {
            holdings[node].insert(ch);
        }
    }

    // Demand satisfaction.
    for (s, c, d) in demand.iter() {
        let chunk = ChunkId::new(s, c);
        if !holdings[d.0].contains(&chunk) {
            report.errors.push(ValidationError::DemandUnsatisfied {
                chunk,
                destination: d,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use teccl_topology::line_topology;

    fn line3() -> Topology {
        line_topology(3, 1e9, 0.0)
    }

    fn broadcast_demand() -> DemandMatrix {
        // Node 0 broadcasts one chunk to nodes 1 and 2.
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        DemandMatrix::broadcast(3, &gpus, NodeId(0), 1)
    }

    #[test]
    fn valid_relay_schedule() {
        let topo = line3();
        let demand = broadcast_demand();
        let mut sch = Schedule::new("relay", 1e6);
        sch.epoch_duration = 1e-3;
        let ch = ChunkId::new(NodeId(0), 0);
        sch.push(ch, NodeId(0), NodeId(1), 0);
        sch.push(ch, NodeId(1), NodeId(2), 1);
        let report = validate(&topo, &demand, &sch, true);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn causality_violation_detected() {
        let topo = line3();
        let demand = broadcast_demand();
        let mut sch = Schedule::new("bad", 1e6);
        sch.epoch_duration = 1e-3;
        let ch = ChunkId::new(NodeId(0), 0);
        // Node 1 forwards in the SAME epoch it receives → violation.
        sch.push(ch, NodeId(0), NodeId(1), 0);
        sch.push(ch, NodeId(1), NodeId(2), 0);
        let report = validate(&topo, &demand, &sch, true);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::CausalityViolation { .. })));
    }

    #[test]
    fn unsatisfied_demand_detected() {
        let topo = line3();
        let demand = broadcast_demand();
        let mut sch = Schedule::new("partial", 1e6);
        sch.epoch_duration = 1e-3;
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        let report = validate(&topo, &demand, &sch, true);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::DemandUnsatisfied { destination, .. } if *destination == NodeId(2))));
    }

    #[test]
    fn missing_link_detected() {
        let topo = line3();
        let demand = broadcast_demand();
        let mut sch = Schedule::new("teleport", 1e6);
        sch.epoch_duration = 1e-3;
        // There is no direct 0 -> 2 link on a line.
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(2), 0);
        sch.push(ChunkId::new(NodeId(0), 0), NodeId(0), NodeId(1), 0);
        let report = validate(&topo, &demand, &sch, true);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::NoSuchLink { .. })));
    }

    #[test]
    fn capacity_violation_detected() {
        let topo = line3();
        // Two chunks from node 0 to node 1 in the same epoch, but the epoch
        // only fits one chunk.
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::all_gather(3, &gpus, 2);
        let mut sch = Schedule::new("overload", 1e6);
        sch.epoch_duration = 1e-3; // 1 GB/s * 1 ms = 1 MB = exactly 1 chunk
        for c in 0..2 {
            sch.push(ChunkId::new(NodeId(0), c), NodeId(0), NodeId(1), 0);
        }
        let report = validate(&topo, &demand, &sch, true);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::CapacityExceeded { .. })));
        // Without the capacity check those sends are fine (causality holds).
        let report2 = validate(&topo, &demand, &sch, false);
        assert!(!report2
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::CapacityExceeded { .. })));
    }

    #[test]
    fn duplicate_send_detected() {
        let topo = line3();
        let demand = broadcast_demand();
        let mut sch = Schedule::new("dup", 1e6);
        sch.epoch_duration = 1e-3;
        let ch = ChunkId::new(NodeId(0), 0);
        sch.push(ch, NodeId(0), NodeId(1), 0);
        sch.push(ch, NodeId(0), NodeId(1), 0);
        sch.push(ch, NodeId(1), NodeId(2), 1);
        let report = validate(&topo, &demand, &sch, true);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateSend { .. })));
    }

    #[test]
    fn alpha_delay_respected_in_causality() {
        // Link with large alpha: 2 epochs of delay; forwarding too early fails.
        let mut topo = Topology::new("slow");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        let c = topo.add_gpu("c", 0);
        topo.add_bilink(a, b, 1e9, 2.5e-3); // alpha = 2.5 epochs at 1 ms epochs
        topo.add_bilink(b, c, 1e9, 0.0);
        let gpus = vec![a, b, c];
        let demand = DemandMatrix::broadcast(3, &gpus, a, 1);
        let ch = ChunkId::new(a, 0);

        let mut too_early = Schedule::new("early", 1e6);
        too_early.epoch_duration = 1e-3;
        too_early.push(ch, a, b, 0);
        too_early.push(ch, b, c, 2); // needs epoch >= 0 + ceil(2.5) + 1 = 4
        let report = validate(&topo, &demand, &too_early, true);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::CausalityViolation { .. })));

        let mut ok = Schedule::new("ok", 1e6);
        ok.epoch_duration = 1e-3;
        ok.push(ch, a, b, 0);
        ok.push(ch, b, c, 4);
        assert!(validate(&topo, &demand, &ok, true).is_valid());
    }

    #[test]
    fn error_display_strings() {
        let e = ValidationError::DemandUnsatisfied {
            chunk: ChunkId::new(NodeId(1), 2),
            destination: NodeId(3),
        };
        assert!(e.to_string().contains("never delivered"));
    }
}
