#![forbid(unsafe_code)]
//! # teccl-schedule
//!
//! Collective communication *schedules* and the machinery to evaluate them:
//!
//! * [`Schedule`] — the per-epoch list of chunk sends a solver produces
//!   (TE-CCL's output, §3.1, exported in an MSCCL-like JSON form),
//! * [`validate`] — structural checks: causality (a node only forwards chunks
//!   it already holds), link capacity per epoch, and demand satisfaction,
//! * [`sim`] — an event-driven α–β cost-model simulator that plays a schedule
//!   out on a topology and reports the actual transfer (collective finish)
//!   time; this is the measurement platform of §6 ("we use the solvers and the
//!   schedules they produce to compute the transfer times and algorithmic
//!   bandwidth"),
//! * [`metrics`] — the paper's metrics: transfer time, output buffer size,
//!   algorithmic bandwidth, solver time.

pub mod metrics;
pub mod output;
pub mod schedule;
pub mod sim;
pub mod validate;

pub use metrics::{percent_improvement, CollectiveMetrics};
pub use output::ScheduleOutput;
pub use schedule::{ChunkId, Schedule, Send};
pub use sim::{simulate, SimError, SimReport};
pub use validate::{validate, ValidationError, ValidationReport};
