//! The serializable unit a solver hands to callers and caches: a schedule
//! plus the metrics measured for it.
//!
//! This is the value the schedule service stores (in memory and on disk) and
//! ships over the wire, so the JSON round-trip must be *exact*: deserializing
//! a serialized output yields bit-identical metrics and a send-for-send
//! identical schedule, and a validated schedule stays valid. The
//! `teccl-util` JSON writer prints floats with Rust's shortest-round-trip
//! formatting, which is what makes bit-exactness possible without a binary
//! format.

use teccl_util::json::{JsonError, Value};

use crate::metrics::CollectiveMetrics;
use crate::schedule::Schedule;

/// A schedule together with its measured metrics.
#[derive(Debug, Clone)]
pub struct ScheduleOutput {
    /// The executable schedule.
    pub schedule: Schedule,
    /// The paper's metrics for this schedule (§6): transfer time, solver
    /// time, output-buffer size, bytes on wire, algorithmic bandwidth.
    pub metrics: CollectiveMetrics,
}

impl ScheduleOutput {
    /// Serializes the output to JSON.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("schedule", self.schedule.to_json_value()),
            ("metrics", self.metrics.to_json_value()),
        ])
    }

    /// Deserializes an output from the JSON produced by
    /// [`ScheduleOutput::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<ScheduleOutput, JsonError> {
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        Ok(ScheduleOutput {
            schedule: Schedule::from_json_value(v.get("schedule").ok_or(bad("missing schedule"))?)?,
            metrics: CollectiveMetrics::from_json_value(
                v.get("metrics").ok_or(bad("missing metrics"))?,
            )?,
        })
    }

    /// Parses an output from a JSON string.
    pub fn from_json_str(text: &str) -> Result<ScheduleOutput, JsonError> {
        Self::from_json_value(&Value::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChunkId;
    use teccl_topology::NodeId;

    fn sample() -> ScheduleOutput {
        let mut s = Schedule::new("unit", 12345.5);
        s.epoch_duration = 3.3e-6;
        s.solver_time = 0.0721;
        s.push(ChunkId::new(NodeId(0), 1), NodeId(0), NodeId(1), 0);
        s.push(ChunkId::new(NodeId(1), 0), NodeId(1), NodeId(2), 2);
        ScheduleOutput {
            schedule: s,
            metrics: CollectiveMetrics {
                solver: "unit".into(),
                epoch_duration: 3.3e-6,
                transfer_time: 1.0 / 3.0, // not exactly representable in text unless shortest-round-trip
                solver_time: 0.0721,
                output_buffer_bytes: 16.0 * 1024.0 * 1024.0,
                bytes_on_wire: 24690.0 + 0.1,
            },
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let out = sample();
        let text = out.to_json_value().to_json();
        let back = ScheduleOutput::from_json_str(&text).unwrap();
        assert_eq!(back.schedule.sends, out.schedule.sends);
        assert_eq!(back.schedule.num_epochs, out.schedule.num_epochs);
        assert_eq!(
            back.schedule.chunk_bytes.to_bits(),
            out.schedule.chunk_bytes.to_bits()
        );
        assert_eq!(back.metrics, out.metrics);
        // Bit-exact, not just PartialEq-equal.
        assert_eq!(
            back.metrics.transfer_time.to_bits(),
            out.metrics.transfer_time.to_bits()
        );
        // A second round trip is a fixed point.
        assert_eq!(back.to_json_value().to_json(), text);
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(ScheduleOutput::from_json_str("{}").is_err());
        assert!(ScheduleOutput::from_json_str(r#"{"schedule": {}}"#).is_err());
    }
}
