//! Dantzig-Wolfe vs monolithic fuzz: decomposition is a *how*, never a *what*.
//!
//! Over a seeded corpus of block-angular (MCF-shaped) LPs — private block
//! rows coupled by shared capacity rows, the exact shape `lp_form` hands the
//! decomposer — `solve_decomposed` must report the same status as the
//! monolithic simplex and, when optimal, an objective equal to 1e-6. The
//! corpus deliberately mixes feasible-by-construction instances with
//! master-infeasible ones (lower-bound-forced variables against a too-tight
//! coupling cap), both senses, and several pricing thread counts.

use teccl_lp::model::{ConstraintOp, Model, Sense};
use teccl_lp::{solve_decomposed, BlockStructure, DecompOptions, SolveStatus};

/// Small deterministic LCG so the corpus is stable across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in [0, 1).
    fn f(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f() * (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random block-angular LP and its variable→block labelling.
///
/// Construction keeps every *block* feasible on its own rows (each block's
/// rows are anchored on a sampled interior point), so any infeasibility is a
/// coupling-level one — the case the restricted master must certify through
/// Big-M escalation rather than a pricing subproblem shortcut.
fn random_block_lp(rng: &mut Lcg) -> (Model, Vec<usize>) {
    let nblocks = 2 + rng.below(3);
    let sense = if rng.f() < 0.5 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut var_block = Vec::new();
    let mut block_vars: Vec<Vec<teccl_lp::VarId>> = vec![Vec::new(); nblocks];
    let mut anchor: Vec<Vec<f64>> = vec![Vec::new(); nblocks];
    for b in 0..nblocks {
        let nvars = 2 + rng.below(3);
        for j in 0..nvars {
            // ~1 in 6 variables is forced away from zero: combined with a
            // tight coupling cap this is how infeasible instances arise.
            let lb = if rng.f() < 0.17 {
                rng.range(0.5, 2.0)
            } else {
                0.0
            };
            let ub = lb + rng.range(1.0, 6.0);
            let v = m.add_var(format!("x{b}_{j}"), lb, ub, rng.range(-5.0, 5.0), false);
            block_vars[b].push(v);
            var_block.push(b);
            anchor[b].push(lb + rng.f() * (ub - lb));
        }
        // Private rows, anchored on the sampled interior point so the block
        // polytope is never empty.
        let nrows = 1 + rng.below(2);
        for i in 0..nrows {
            let mut terms = Vec::new();
            let mut activity = 0.0;
            for (j, &v) in block_vars[b].iter().enumerate() {
                if rng.f() < 0.8 {
                    let a = rng.range(-3.0, 3.0);
                    terms.push((v, a));
                    activity += a * anchor[b][j];
                }
            }
            if terms.is_empty() {
                terms.push((block_vars[b][0], 1.0));
                activity = anchor[b][0];
            }
            let (op, rhs) = match rng.below(3) {
                0 => (ConstraintOp::Eq, activity),
                1 => (ConstraintOp::Le, activity + rng.range(0.0, 2.0)),
                _ => (ConstraintOp::Ge, activity - rng.range(0.0, 2.0)),
            };
            m.add_cons(format!("blk{b}_{i}"), &terms, op, rhs);
        }
    }
    // Coupling rows: nonnegative "capacity" footprints over several blocks,
    // like `cap[link,k]` sums per-source flows. Feasible rows get slack
    // above the *anchor* activity (the anchor satisfies every block row, so
    // the whole LP stays feasible); the infeasible slice caps the row below
    // `Σ a·lb`, which positive coefficients can never undershoot.
    let anchor_flat: Vec<f64> = anchor.iter().flatten().copied().collect();
    let ncoup = 1 + rng.below(3);
    for i in 0..ncoup {
        let mut terms = Vec::new();
        let mut lb_activity = 0.0;
        let mut anchor_activity = 0.0;
        for &v in block_vars.iter().flatten() {
            if rng.f() < 0.6 {
                let a = rng.range(0.1, 2.0);
                terms.push((v, a));
                lb_activity += a * m.vars[v.index()].lb;
                anchor_activity += a * anchor_flat[v.index()];
            }
        }
        if terms.len() < 2 {
            continue;
        }
        let rhs = if rng.f() < 0.12 {
            lb_activity - rng.range(0.1, 1.0)
        } else {
            anchor_activity + rng.range(0.0, 6.0)
        };
        m.add_cons(format!("coup{i}"), &terms, ConstraintOp::Le, rhs);
    }
    (m, var_block)
}

#[test]
fn decomposed_agrees_with_monolithic_on_random_corpus() {
    let mut rng = Lcg(0xdecaf_c0ffee);
    let mut optimal = 0usize;
    let mut infeasible = 0usize;
    let mut certified = 0usize;
    for case in 0..120 {
        let (m, var_block) = random_block_lp(&mut rng);
        let structure = BlockStructure::infer(&m, &var_block).expect("labelling covers all vars");
        let mono = m.solve_lp_relaxation().expect("monolithic solve");
        let opts = DecompOptions {
            threads: [1, 2, 4][case % 3],
            ..Default::default()
        };
        let dw = solve_decomposed(&m, &structure, None, &opts).expect("decomposed solve");
        assert_eq!(
            dw.status, mono.status,
            "case {case}: status mismatch (dw {:?} vs mono {:?})",
            dw.status, mono.status
        );
        match mono.status {
            SolveStatus::Optimal => {
                optimal += 1;
                let scale = mono.objective.abs().max(1.0);
                assert!(
                    (dw.objective - mono.objective).abs() <= 1e-6 * scale,
                    "case {case}: objective drift dw {} vs mono {}",
                    dw.objective,
                    mono.objective
                );
                assert!(
                    m.is_feasible(&dw.values, 1e-5),
                    "case {case}: decomposed point infeasible on the original model"
                );
                if dw.stats.dw_rounds > 0 {
                    certified += 1;
                }
            }
            SolveStatus::Infeasible => infeasible += 1,
            other => panic!("case {case}: unexpected monolithic status {other:?}"),
        }
    }
    // The corpus must actually exercise both verdicts and the genuine
    // column-generation path (not just the monolithic fallback).
    assert!(optimal >= 60, "only {optimal} optimal cases");
    assert!(infeasible >= 5, "only {infeasible} infeasible cases");
    assert!(
        certified * 2 >= optimal,
        "column generation certified only {certified} of {optimal} optima"
    );
}

/// Budget-stop contract on a decomposable instance: a capped re-run either
/// fails with `LpError::Budget` (no incumbent yet) or hands back a
/// primal-feasible point flagged `budget_stop` — never a silent wrong answer.
#[test]
fn capped_budget_yields_feasible_incumbent_or_budget_error() {
    let mut rng = Lcg(0xb0d9e7);
    let mut stopped = 0usize;
    let mut tried = 0usize;
    for _ in 0..40 {
        let (m, var_block) = random_block_lp(&mut rng);
        let structure = BlockStructure::infer(&m, &var_block).unwrap();
        let opts = DecompOptions::default();
        let full = match solve_decomposed(&m, &structure, None, &opts) {
            Ok(s) if s.status == SolveStatus::Optimal && s.stats.dw_rounds > 0 => s,
            _ => continue, // fallback or infeasible: no CG iterations to cap
        };
        let total = full.stats.simplex_iterations.max(2);
        for cap in [total / 4, total / 2] {
            tried += 1;
            let budget = teccl_lp::SolveBudget::with_iteration_cap(cap.max(1) as u64);
            match solve_decomposed(&m, &structure, Some(&budget), &opts) {
                Ok(sol) => {
                    if sol.stats.budget_stop.is_some() {
                        stopped += 1;
                        assert_eq!(sol.status, SolveStatus::Feasible);
                        assert!(
                            m.is_feasible(&sol.values, 1e-5),
                            "budget-stop incumbent must be primal feasible"
                        );
                    } else {
                        // Finished inside the cap (iteration counts vary a
                        // little with warm-start luck); must be the optimum.
                        assert_eq!(sol.status, SolveStatus::Optimal);
                    }
                }
                Err(teccl_lp::LpError::Budget(_)) => stopped += 1,
                Err(other) => panic!("unexpected error under cap: {other:?}"),
            }
        }
    }
    assert!(tried >= 20, "corpus produced only {tried} capped runs");
    assert!(stopped > 0, "no capped run ever actually stopped");
}
