//! Oversubscription smoke test: more worker threads than cores is a *load*
//! condition, never a *correctness* condition.
//!
//! The dev container this suite must pass on has a single core, so asking
//! for `threads = 4` oversubscribes it by construction: every parallel path
//! — branch-and-bound over the shared node pool, the LP portfolio race, and
//! the Dantzig-Wolfe pricing round — degenerates to heavy time-slicing. The
//! statuses and objectives must not notice. On bigger machines the same
//! assertions run with `threads` pinned *above* the detected parallelism, so
//! the oversubscribed regime is exercised regardless of the host.

use teccl_lp::model::{ConstraintOp, Model, Sense};
use teccl_lp::simplex::solve_standard_form;
use teccl_lp::standard::StandardForm;
use teccl_lp::{race_lp, MilpConfig, SolveStatus};

/// Small deterministic LCG so the corpus is stable across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn f(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f() * (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random bounded MILP (the `thread_invariance` recipe, smaller corpus —
/// this file is about the oversubscribed regime, not coverage breadth).
fn random_milp(rng: &mut Lcg) -> Model {
    let nvars = 3 + rng.below(7);
    let ncons = 1 + rng.below(5);
    let sense = if rng.f() < 0.5 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut vars = Vec::new();
    for j in 0..nvars {
        let obj = rng.range(-5.0, 5.0);
        let v = match rng.below(3) {
            0 => m.add_binary_var(format!("x{j}"), obj),
            1 => {
                let lb = rng.below(4) as f64 - 2.0;
                let ub = lb + rng.below(6) as f64;
                m.add_var(format!("x{j}"), lb, ub, obj, true)
            }
            _ => {
                let lb = rng.range(-8.0, 4.0);
                let ub = lb + rng.range(0.0, 12.0);
                m.add_var(format!("x{j}"), lb, ub, obj, false)
            }
        };
        vars.push(v);
    }
    for i in 0..ncons {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.f() < 0.7 {
                terms.push((v, rng.range(-4.0, 4.0)));
            }
        }
        if terms.is_empty() {
            terms.push((vars[0], 1.0));
        }
        let op = match rng.below(4) {
            0 => ConstraintOp::Ge,
            1 => ConstraintOp::Eq,
            _ => ConstraintOp::Le,
        };
        let rhs = rng.range(-10.0, 25.0);
        m.add_cons(format!("c{i}"), &terms, op, rhs);
    }
    m
}

/// A thread count guaranteed to oversubscribe this host: at least 4, and
/// strictly above whatever parallelism the machine actually has.
fn oversubscribed_threads() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    (cores + 1).max(4)
}

#[test]
fn oversubscribed_bnb_matches_sequential() {
    let threads = oversubscribed_threads();
    let mut rng = Lcg(0x5_0b5c41be);
    let mut solved = 0usize;
    for case in 0..40 {
        let m = random_milp(&mut rng);
        let solve_at = |threads: usize| {
            m.solve_with(&MilpConfig {
                threads,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("case {case} at {threads} threads: {e}"))
        };
        let base = solve_at(1);
        let over = solve_at(threads);
        assert_eq!(
            over.status,
            base.status,
            "case {case}: {threads} threads on {} core(s) changed the status",
            threads - 1
        );
        if base.status.has_solution() {
            assert!(
                (over.objective - base.objective).abs() < 1e-6,
                "case {case}: oversubscribed objective {} vs sequential {}",
                over.objective,
                base.objective
            );
            solved += 1;
        }
    }
    assert!(
        solved >= 10,
        "only {solved} solved MILPs in the smoke corpus"
    );
}

#[test]
fn oversubscribed_race_matches_solo() {
    let threads = oversubscribed_threads();
    let mut rng = Lcg(0xbadc_a5e5);
    let mut solved = 0usize;
    for case in 0..25 {
        let mut m = random_milp(&mut rng);
        for v in m.vars.iter_mut() {
            v.integer = false;
        }
        let sf = StandardForm::from_model(&m);
        let nv = m.num_vars();
        let solo = solve_standard_form(&sf, nv).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let raced = race_lp(&sf, nv, &[], None, None, threads)
            .unwrap_or_else(|e| panic!("case {case} oversubscribed: {e}"));
        assert_eq!(raced.status, solo.status, "case {case}");
        if solo.status == SolveStatus::Optimal {
            assert!(
                (raced.objective - solo.objective).abs() < 1e-6,
                "case {case}: raced {} vs solo {}",
                raced.objective,
                solo.objective
            );
            solved += 1;
        }
    }
    assert!(solved >= 6, "only {solved} optimal LPs in the smoke corpus");
}
