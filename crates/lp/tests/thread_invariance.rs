//! Thread-count invariance: the `threads` knob is a *how*, never a *what*.
//!
//! Over a seeded random-MILP corpus, solving at 1/2/4/8 threads must report
//! identical statuses and objectives equal to 1e-6 (the parallel tree may
//! visit different nodes and report a different equally-optimal vertex, but
//! never a different optimum). Likewise the LP portfolio race must agree
//! with the solo steepest-edge solve it would replace.

use teccl_lp::model::{ConstraintOp, Model, Sense};
use teccl_lp::simplex::solve_standard_form;
use teccl_lp::standard::StandardForm;
use teccl_lp::{race_lp, MilpConfig, SolveStatus};

/// Small deterministic LCG so the corpus is stable across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in [0, 1).
    fn f(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f() * (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random bounded MILP mixing binary, general-integer and continuous
/// columns. Feasibility is not guaranteed — every thread count must agree on
/// infeasibility too.
fn random_milp(rng: &mut Lcg) -> Model {
    let nvars = 3 + rng.below(7);
    let ncons = 1 + rng.below(5);
    let sense = if rng.f() < 0.5 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut vars = Vec::new();
    for j in 0..nvars {
        let obj = rng.range(-5.0, 5.0);
        let v = match rng.below(3) {
            0 => m.add_binary_var(format!("x{j}"), obj),
            1 => {
                let lb = rng.below(4) as f64 - 2.0;
                let ub = lb + rng.below(6) as f64;
                m.add_var(format!("x{j}"), lb, ub, obj, true)
            }
            _ => {
                let lb = rng.range(-8.0, 4.0);
                let ub = lb + rng.range(0.0, 12.0);
                m.add_var(format!("x{j}"), lb, ub, obj, false)
            }
        };
        vars.push(v);
    }
    for i in 0..ncons {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.f() < 0.7 {
                terms.push((v, rng.range(-4.0, 4.0)));
            }
        }
        if terms.is_empty() {
            terms.push((vars[0], 1.0));
        }
        let op = match rng.below(4) {
            0 => ConstraintOp::Ge,
            1 => ConstraintOp::Eq,
            _ => ConstraintOp::Le, // bias towards feasible instances
        };
        let rhs = rng.range(-10.0, 25.0);
        m.add_cons(format!("c{i}"), &terms, op, rhs);
    }
    m
}

#[test]
fn milp_statuses_and_objectives_are_thread_count_invariant() {
    let mut rng = Lcg(0x7452_ead5);
    let mut solved = 0usize;
    let mut infeasible = 0usize;
    for case in 0..200 {
        let m = random_milp(&mut rng);
        let solve_at = |threads: usize| {
            m.solve_with(&MilpConfig {
                threads,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("case {case} at {threads} threads: {e}"))
        };
        let base = solve_at(1);
        for threads in [2, 4, 8] {
            let par = solve_at(threads);
            assert_eq!(
                par.status, base.status,
                "case {case}: {threads} threads {:?} vs sequential {:?}",
                par.status, base.status
            );
            if base.status.has_solution() {
                assert!(
                    (par.objective - base.objective).abs() < 1e-6,
                    "case {case}: {threads} threads {} vs sequential {}",
                    par.objective,
                    base.objective
                );
            }
        }
        match base.status {
            s if s.has_solution() => solved += 1,
            SolveStatus::Infeasible => infeasible += 1,
            _ => {}
        }
    }
    // The corpus must exercise both agreement modes.
    assert!(solved >= 60, "only {solved} solved MILPs");
    assert!(infeasible >= 10, "only {infeasible} infeasible MILPs");
}

/// The portfolio race must return exactly what the solo steepest-edge solve
/// (racer 0's configuration) would: same status, objective to 1e-6, on every
/// instance of a fixed LP corpus — whichever racer happens to certify first.
#[test]
fn portfolio_race_matches_solo_steepest_edge_on_fixed_lp_set() {
    let mut rng = Lcg(0x7ace_0ff5);
    let mut solved = 0usize;
    for case in 0..60 {
        let mut m = random_milp(&mut rng);
        // Race the *relaxation*: integrality is the MILP layer's business.
        for v in m.vars.iter_mut() {
            v.integer = false;
        }
        let sf = StandardForm::from_model(&m);
        let nv = m.num_vars();
        let solo = solve_standard_form(&sf, nv).unwrap_or_else(|e| panic!("case {case}: {e}"));
        for threads in [2, 4] {
            let raced = race_lp(&sf, nv, &[], None, None, threads)
                .unwrap_or_else(|e| panic!("case {case} at {threads} racers: {e}"));
            assert_eq!(
                raced.status, solo.status,
                "case {case}: race at {threads} {:?} vs solo {:?}",
                raced.status, solo.status
            );
            if solo.status == SolveStatus::Optimal {
                assert!(
                    (raced.objective - solo.objective).abs() < 1e-6,
                    "case {case}: race at {threads} {} vs solo {}",
                    raced.objective,
                    solo.objective
                );
            }
        }
        if solo.status == SolveStatus::Optimal {
            solved += 1;
        }
    }
    assert!(solved >= 15, "only {solved} optimal LPs");
}
