//! Randomized (seeded, deterministic) cross-check of the warm-started simplex
//! against cold solves: on a corpus of small bounded LPs, a warm re-solve
//! after a bound change must agree with a from-scratch solve to 1e-6.

use teccl_lp::model::{ConstraintOp, Model, Sense};
use teccl_lp::simplex::{
    solve_standard_form, solve_standard_form_from, solve_standard_form_with_options,
};
use teccl_lp::standard::StandardForm;
use teccl_lp::{PricingRule, SimplexOptions, SolveStatus};

/// Small deterministic LCG so the corpus is stable across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in [0, 1).
    fn f(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f() * (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random LP with finite variable bounds (guaranteeing a bounded objective)
/// and a mix of constraint senses. Feasibility is not guaranteed — both
/// solvers must agree on that too.
fn random_lp(rng: &mut Lcg) -> Model {
    let nvars = 2 + rng.below(8);
    let ncons = 1 + rng.below(6);
    let sense = if rng.f() < 0.5 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut vars = Vec::new();
    for j in 0..nvars {
        let lb = rng.range(-10.0, 5.0);
        let ub = lb + rng.range(0.0, 15.0);
        let obj = rng.range(-5.0, 5.0);
        vars.push(m.add_var(format!("x{j}"), lb, ub, obj, false));
    }
    for i in 0..ncons {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.f() < 0.7 {
                terms.push((v, rng.range(-4.0, 4.0)));
            }
        }
        if terms.is_empty() {
            terms.push((vars[0], 1.0));
        }
        let op = match rng.below(4) {
            0 => ConstraintOp::Ge,
            1 => ConstraintOp::Eq,
            _ => ConstraintOp::Le, // bias towards feasible instances
        };
        let rhs = rng.range(-10.0, 25.0);
        m.add_cons(format!("c{i}"), &terms, op, rhs);
    }
    m
}

#[test]
fn warm_and_cold_solves_agree_on_random_corpus() {
    let mut rng = Lcg(0x5eed_c0ffee);
    let mut solved = 0usize;
    let mut warmed = 0usize;
    for case in 0..200 {
        let m = random_lp(&mut rng);
        let sf = StandardForm::from_model(&m);
        let nv = m.num_vars();
        let cold = solve_standard_form(&sf, nv).unwrap_or_else(|e| panic!("case {case}: {e}"));
        if cold.status != SolveStatus::Optimal {
            // Infeasible instances are fine; just confirm determinism.
            let again = solve_standard_form(&sf, nv).unwrap();
            assert_eq!(again.status, cold.status, "case {case}");
            continue;
        }
        solved += 1;
        let basis = cold.basis.clone().expect("optimal LP must return a basis");

        // Re-solve the *same* problem warm: identical objective required.
        let resolve = solve_standard_form_from(&sf, nv, &[], Some(&basis)).unwrap();
        assert_eq!(resolve.status, SolveStatus::Optimal, "case {case}");
        assert!(
            (resolve.objective - cold.objective).abs() < 1e-6,
            "case {case}: warm resolve {} vs cold {}",
            resolve.objective,
            cold.objective
        );

        // Perturb one variable bound (tighten towards the optimal value so
        // the instance usually stays feasible) and compare warm vs cold.
        let j = rng.below(nv);
        let (lo, hi) = (m.vars[j].lb, m.vars[j].ub);
        let xj = cold.values[j];
        let overrides = if rng.f() < 0.5 {
            [(j, lo, (xj + rng.range(0.0, 2.0)).min(hi).max(lo))]
        } else {
            [(j, (xj - rng.range(0.0, 2.0)).max(lo).min(hi), hi)]
        };
        let warm = solve_standard_form_from(&sf, nv, &overrides, Some(&basis)).unwrap();
        let cold2 = solve_standard_form_from(&sf, nv, &overrides, None).unwrap();
        assert_eq!(
            warm.status, cold2.status,
            "case {case}: warm {:?} vs cold {:?} after override {overrides:?}",
            warm.status, cold2.status
        );
        if warm.status == SolveStatus::Optimal {
            assert!(
                (warm.objective - cold2.objective).abs() < 1e-6,
                "case {case}: warm {} vs cold {} after override {overrides:?}",
                warm.objective,
                cold2.objective
            );
            warmed += 1;
        }
    }
    // The corpus must actually exercise both paths.
    assert!(solved >= 80, "only {solved} optimal instances");
    assert!(warmed >= 60, "only {warmed} warm re-solves");
}

/// Pricing-rule cross-check: projected steepest-edge (the default) and the
/// devex fallback mode must agree on status and objective (to 1e-6) on every
/// instance of the random corpus. The pricing rule only chooses *which*
/// entering column to try first — any disagreement means a weight-update or
/// reduced-cost-maintenance bug, not a legitimate tie.
#[test]
fn steepest_edge_and_devex_agree_on_random_corpus() {
    let se = SimplexOptions {
        pricing: PricingRule::SteepestEdge,
        ..Default::default()
    };
    let devex = SimplexOptions {
        pricing: PricingRule::Devex,
        ..Default::default()
    };
    let mut rng = Lcg(0x5eed_c0ffee);
    let mut solved = 0usize;
    for case in 0..200 {
        let m = random_lp(&mut rng);
        let sf = StandardForm::from_model(&m);
        let nv = m.num_vars();
        let a = solve_standard_form_with_options(&sf, nv, &[], None, None, &se)
            .unwrap_or_else(|e| panic!("case {case} (steepest edge): {e}"));
        let b = solve_standard_form_with_options(&sf, nv, &[], None, None, &devex)
            .unwrap_or_else(|e| panic!("case {case} (devex): {e}"));
        assert_eq!(
            a.status, b.status,
            "case {case}: steepest-edge {:?} vs devex {:?}",
            a.status, b.status
        );
        if a.status == SolveStatus::Optimal {
            solved += 1;
            assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "case {case}: steepest-edge {} vs devex {}",
                a.objective,
                b.objective
            );
        }
    }
    assert!(solved >= 80, "only {solved} optimal instances");
}

/// B&B-shaped sequences: starting from a cold optimal basis, apply a chain of
/// cumulative bound tightenings, re-solving warm (dual simplex) from the
/// previous step's basis at every step, and cross-check each step against a
/// from-scratch cold solve of the same cumulative overrides.
#[test]
fn dual_resolves_agree_with_cold_over_bound_tightening_sequences() {
    let mut rng = Lcg(0x0b0b_b1e5);
    let mut chains = 0usize;
    let mut warm_steps = 0usize;
    let mut dual_pivot_steps = 0usize;
    let mut fallbacks = 0usize;
    for case in 0..200 {
        let m = random_lp(&mut rng);
        let sf = StandardForm::from_model(&m);
        let nv = m.num_vars();
        let cold = solve_standard_form(&sf, nv).unwrap_or_else(|e| panic!("case {case}: {e}"));
        if cold.status != SolveStatus::Optimal {
            continue;
        }
        chains += 1;
        let mut basis = cold.basis.clone().expect("optimal LP returns a basis");
        let mut reference = cold;
        let mut overrides: Vec<(usize, f64, f64)> = Vec::new();
        let depth = 2 + rng.below(4); // 2..=5 tightenings, like a B&B path
        for step in 0..depth {
            // Tighten a bound towards (sometimes past) the current optimum,
            // the way branching does; cumulative like a B&B node's path.
            let j = rng.below(nv);
            let (mut lo, mut hi) = (m.vars[j].lb, m.vars[j].ub);
            for &(k, l, h) in &overrides {
                if k == j {
                    lo = l;
                    hi = h;
                }
            }
            let xj = reference.values[j].clamp(lo, hi);
            if rng.f() < 0.5 {
                hi = (xj - rng.range(0.0, 1.0)).max(lo);
            } else {
                lo = (xj + rng.range(0.0, 1.0)).min(hi);
            }
            overrides.retain(|&(k, _, _)| k != j);
            overrides.push((j, lo, hi));

            let warm = solve_standard_form_from(&sf, nv, &overrides, Some(&basis))
                .unwrap_or_else(|e| panic!("case {case} step {step}: {e}"));
            let cold2 = solve_standard_form_from(&sf, nv, &overrides, None)
                .unwrap_or_else(|e| panic!("case {case} step {step}: {e}"));
            assert_eq!(
                warm.status, cold2.status,
                "case {case} step {step}: warm {:?} vs cold {:?} ({overrides:?})",
                warm.status, cold2.status
            );
            if warm.stats.warm_starts == 1 {
                warm_steps += 1;
                if warm.stats.dual_iterations > 0 {
                    dual_pivot_steps += 1;
                }
            } else {
                fallbacks += 1;
            }
            if warm.status != SolveStatus::Optimal {
                break; // the branch went infeasible — chain over
            }
            assert!(
                (warm.objective - cold2.objective).abs() < 1e-6,
                "case {case} step {step}: warm {} vs cold {} ({overrides:?})",
                warm.objective,
                cold2.objective
            );
            basis = warm
                .basis
                .clone()
                .expect("optimal warm solve returns a basis");
            reference = warm;
        }
    }
    assert!(chains >= 50, "only {chains} chains exercised");
    assert!(warm_steps >= 100, "only {warm_steps} warm dual re-solves");
    assert!(
        dual_pivot_steps * 4 >= warm_steps,
        "dual simplex barely pivots: {dual_pivot_steps}/{warm_steps}"
    );
    // The dual path may abandon a numerically hopeless basis, but falling
    // back to cold must be the exception, not the rule.
    assert!(
        fallbacks * 10 <= warm_steps.max(10),
        "{fallbacks} cold fallbacks vs {warm_steps} warm steps"
    );
}

/// A fixed small ALLTOALL-shaped LP (time-expanded per-source flows on a
/// ring, shared link capacities, early-read rewards — the §4.1 structure that
/// makes the real instances massively degenerate). Regression: it must solve
/// to optimality well under the historic plateau counts.
#[test]
#[allow(clippy::needless_range_loop)] // index-parallel var tables
fn degenerate_alltoall_shaped_lp_solves_under_iteration_budget() {
    let n = 6usize; // ring nodes
    let k_max = 8usize; // epochs
    let mut m = Model::new(Sense::Maximize);
    // Links: i -> (i+1) % n and i -> (i-1) % n.
    let links: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i + n - 1) % n)])
        .collect();
    // F[s][l][k], B[s][node][k] (k in 0..=k_max), r[s][d][k].
    let mut f = vec![vec![[None; 8]; links.len()]; n];
    let mut b = vec![vec![[None; 9]; n]; n];
    let mut r = vec![vec![[None; 8]; n]; n];
    for s in 0..n {
        for (l, &(u, v)) in links.iter().enumerate() {
            for k in 0..k_max {
                f[s][l][k] = Some(m.add_var(
                    format!("F[{s},{u}->{v},{k}]"),
                    0.0,
                    f64::INFINITY,
                    0.0,
                    false,
                ));
            }
        }
        for node in 0..n {
            for k in 0..=k_max {
                b[s][node][k] =
                    Some(m.add_var(format!("B[{s},{node},{k}]"), 0.0, f64::INFINITY, 0.0, false));
            }
        }
        for d in 0..n {
            if d == s {
                continue;
            }
            for k in 0..k_max {
                let w = 1.0 / (k as f64 + 1.0);
                r[s][d][k] =
                    Some(m.add_var(format!("r[{s},{d},{k}]"), 0.0, f64::INFINITY, w, false));
            }
        }
    }
    for s in 0..n {
        // Epoch 0: everything sits at the source.
        let mut init = vec![(b[s][s][0].unwrap(), 1.0)];
        for (l, &(u, _)) in links.iter().enumerate() {
            if u == s {
                init.push((f[s][l][0].unwrap(), 1.0));
            } else {
                m.add_cons(
                    format!("zf[{s},{l}]"),
                    &[(f[s][l][0].unwrap(), 1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
        }
        m.add_cons(
            format!("init[{s}]"),
            &init,
            ConstraintOp::Eq,
            (n - 1) as f64,
        );
        for node in 0..n {
            if node != s {
                m.add_cons(
                    format!("zb[{s},{node}]"),
                    &[(b[s][node][0].unwrap(), 1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            // Flow conservation per epoch (α = 0: arrivals land same epoch).
            for k in 0..k_max {
                let mut terms: Vec<(teccl_lp::VarId, f64)> = Vec::new();
                for (l, &(_, v)) in links.iter().enumerate() {
                    if v == node {
                        terms.push((f[s][l][k].unwrap(), 1.0));
                    }
                }
                terms.push((b[s][node][k].unwrap(), 1.0));
                terms.push((b[s][node][k + 1].unwrap(), -1.0));
                if node != s {
                    if let Some(rv) = r[s][node][k] {
                        terms.push((rv, -1.0));
                    }
                }
                if k + 1 < k_max {
                    for (l, &(u, _)) in links.iter().enumerate() {
                        if u == node {
                            terms.push((f[s][l][k + 1].unwrap(), -1.0));
                        }
                    }
                }
                m.add_cons(
                    format!("flow[{s},{node},{k}]"),
                    &terms,
                    ConstraintOp::Eq,
                    0.0,
                );
            }
        }
        // Destination totals: each non-source destination reads exactly 1.
        for d in 0..n {
            if d == s {
                continue;
            }
            let terms: Vec<_> = (0..k_max).map(|k| (r[s][d][k].unwrap(), 1.0)).collect();
            m.add_cons(format!("dst[{s},{d}]"), &terms, ConstraintOp::Eq, 1.0);
        }
    }
    // Shared link capacity: 1 chunk per epoch across all sources — the
    // coupling that creates the massive tie structure.
    for (l, &(u, v)) in links.iter().enumerate() {
        for k in 0..k_max {
            let terms: Vec<_> = (0..n).map(|s| (f[s][l][k].unwrap(), 1.0)).collect();
            m.add_cons(format!("cap[{u}->{v},{k}]"), &terms, ConstraintOp::Le, 1.0);
        }
    }

    let sol = m.solve().expect("alltoall-shaped LP solves");
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert!(
        !sol.stats.iteration_limit_hit,
        "degenerate LP tripped the iteration limit"
    );
    // Pre-EXPAND this structure stalled for O(100k) iterations at scale; the
    // small instance must stay comfortably in the thousands.
    assert!(
        sol.stats.simplex_iterations < 10_000,
        "degeneracy regression: {} iterations",
        sol.stats.simplex_iterations
    );
    // Every destination got every chunk (total reads = n * (n-1)).
    let total_read: f64 = (0..n)
        .flat_map(|s| (0..n).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d)
        .flat_map(|(s, d)| (0..k_max).map(move |k| (s, d, k)))
        .filter_map(|(s, d, k)| r[s][d][k].map(|v| sol.value(v)))
        .sum();
    assert!((total_read - (n * (n - 1)) as f64).abs() < 1e-5);
}

/// Presolve-on-vs-off agreement over the random-LP corpus: the
/// layout-preserving presolve must not change the answer — `Model::solve_lp_
/// relaxation` (presolve on) and a raw standard-form solve (no presolve) must
/// agree on status and objective to 1e-6 on every instance. On top of that,
/// the *basis* of either solve must warm-start the other: presolve only
/// tightens bounds and relaxes freed-row slacks, so the column space is one
/// and the same.
#[test]
fn presolve_on_and_off_agree_and_share_one_column_space() {
    let mut rng = Lcg(0x1a70_0071);
    let mut solved = 0usize;
    let mut crossed = 0usize;
    for case in 0..200 {
        let m = random_lp(&mut rng);
        let nv = m.num_vars();
        let sf_raw = StandardForm::from_model(&m);
        let raw = solve_standard_form(&sf_raw, nv).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let pre = m
            .solve_lp_relaxation()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(
            pre.status, raw.status,
            "case {case}: presolve-on {:?} vs presolve-off {:?}",
            pre.status, raw.status
        );
        if !pre.status.has_solution() {
            continue;
        }
        solved += 1;
        assert!(
            (pre.objective - raw.objective).abs() < 1e-6,
            "case {case}: presolve-on {} vs presolve-off {}",
            pre.objective,
            raw.objective
        );

        // One column space: the presolved solve's basis warm-starts the raw
        // form, and the raw solve's basis warm-starts a presolved re-solve.
        let (pre_basis, raw_basis) = (pre.basis.as_ref(), raw.basis.as_ref());
        if let Some(b) = pre_basis {
            let w = solve_standard_form_from(&sf_raw, nv, &[], Some(b)).unwrap();
            assert_eq!(w.status, SolveStatus::Optimal, "case {case}");
            assert_eq!(
                w.stats.warm_starts, 1,
                "case {case}: presolved basis rejected"
            );
            assert!((w.objective - raw.objective).abs() < 1e-6, "case {case}");
            crossed += 1;
        }
        if let Some(b) = raw_basis {
            let w = m.solve_lp_relaxation_warm(Some(b)).unwrap();
            assert_eq!(w.status, SolveStatus::Optimal, "case {case}");
            assert_eq!(w.stats.warm_starts, 1, "case {case}: raw basis rejected");
            assert!((w.objective - raw.objective).abs() < 1e-6, "case {case}");
        }
    }
    assert!(solved >= 80, "only {solved} optimal instances");
    assert!(crossed >= 60, "only {crossed} cross-presolve warm starts");
}

/// Per-node presolve on-vs-off agreement over the random-MILP corpus, with
/// B&B chains deep enough to exercise the propagation: statuses and
/// objectives must match to 1e-6, and the tightening machinery must actually
/// fire somewhere in the corpus.
#[test]
fn node_presolve_on_and_off_agree_on_random_milps() {
    use teccl_lp::MilpConfig;
    let mut rng = Lcg(0x9e0d_e135);
    let mut solved = 0usize;
    let mut tightenings = 0usize;
    let mut nodes_with_tightening = 0usize;
    for case in 0..40 {
        // Knapsacks with a cardinality side constraint and mixed weights:
        // branching one binary shrinks the residual capacity, which is what
        // the row-activity propagation converts into fixings of the others.
        let nvars = 4 + rng.below(8);
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..nvars)
            .map(|j| m.add_binary_var(format!("x{j}"), rng.range(1.0, 10.0)))
            .collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, rng.range(1.0, 6.0))).collect();
        m.add_cons("cap", &terms, ConstraintOp::Le, rng.range(4.0, 14.0));
        let t2: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
        m.add_cons(
            "card",
            &t2,
            ConstraintOp::Le,
            (2 + rng.below(nvars / 2)) as f64,
        );
        let on = m
            .solve_with(&MilpConfig {
                rounding_heuristic: false,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let off = m
            .solve_with(&MilpConfig {
                rounding_heuristic: false,
                node_presolve: false,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(on.status, off.status, "case {case}");
        if on.status.has_solution() {
            assert!(
                (on.objective - off.objective).abs() < 1e-6,
                "case {case}: node-presolve on {} vs off {}",
                on.objective,
                off.objective
            );
            solved += 1;
        }
        tightenings += on.stats.node_tightenings;
        if on.stats.node_tightenings > 0 {
            nodes_with_tightening += 1;
        }
        assert_eq!(
            off.stats.node_tightenings, 0,
            "case {case}: off must not tighten"
        );
    }
    assert!(solved >= 30, "only {solved} solved MILPs");
    assert!(
        tightenings > 0 && nodes_with_tightening >= 5,
        "per-node presolve never fired: {tightenings} tightenings in {nodes_with_tightening} runs"
    );
}

#[test]
fn milp_warm_and_cold_nodes_agree_on_random_corpus() {
    use teccl_lp::MilpConfig;
    let mut rng = Lcg(0xdead_beef);
    let mut solved = 0usize;
    for case in 0..40 {
        // Random small knapsack-ish MILPs.
        let nvars = 3 + rng.below(6);
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..nvars)
            .map(|j| m.add_binary_var(format!("x{j}"), rng.range(1.0, 10.0)))
            .collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, rng.range(1.0, 6.0))).collect();
        let cap = rng.range(4.0, 14.0);
        m.add_cons("cap", &terms, ConstraintOp::Le, cap);
        if nvars > 4 {
            let t2: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
            m.add_cons("card", &t2, ConstraintOp::Le, (nvars / 2) as f64);
        }
        let warm_cfg = MilpConfig::default();
        let cold_cfg = MilpConfig {
            warm_start: false,
            ..Default::default()
        };
        let warm = m
            .solve_with(&warm_cfg)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let cold = m
            .solve_with(&cold_cfg)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(warm.status, cold.status, "case {case}");
        if warm.status.has_solution() {
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "case {case}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            solved += 1;
        }
    }
    assert!(solved >= 30, "only {solved} solved MILPs");
}
