//! Randomized (seeded, deterministic) cross-check of the warm-started simplex
//! against cold solves: on a corpus of small bounded LPs, a warm re-solve
//! after a bound change must agree with a from-scratch solve to 1e-6.

use teccl_lp::model::{ConstraintOp, Model, Sense};
use teccl_lp::simplex::{solve_standard_form, solve_standard_form_from};
use teccl_lp::standard::StandardForm;
use teccl_lp::SolveStatus;

/// Small deterministic LCG so the corpus is stable across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in [0, 1).
    fn f(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f() * (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random LP with finite variable bounds (guaranteeing a bounded objective)
/// and a mix of constraint senses. Feasibility is not guaranteed — both
/// solvers must agree on that too.
fn random_lp(rng: &mut Lcg) -> Model {
    let nvars = 2 + rng.below(8);
    let ncons = 1 + rng.below(6);
    let sense = if rng.f() < 0.5 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut vars = Vec::new();
    for j in 0..nvars {
        let lb = rng.range(-10.0, 5.0);
        let ub = lb + rng.range(0.0, 15.0);
        let obj = rng.range(-5.0, 5.0);
        vars.push(m.add_var(format!("x{j}"), lb, ub, obj, false));
    }
    for i in 0..ncons {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.f() < 0.7 {
                terms.push((v, rng.range(-4.0, 4.0)));
            }
        }
        if terms.is_empty() {
            terms.push((vars[0], 1.0));
        }
        let op = match rng.below(4) {
            0 => ConstraintOp::Ge,
            1 => ConstraintOp::Eq,
            _ => ConstraintOp::Le, // bias towards feasible instances
        };
        let rhs = rng.range(-10.0, 25.0);
        m.add_cons(format!("c{i}"), &terms, op, rhs);
    }
    m
}

#[test]
fn warm_and_cold_solves_agree_on_random_corpus() {
    let mut rng = Lcg(0x5eed_c0ffee);
    let mut solved = 0usize;
    let mut warmed = 0usize;
    for case in 0..200 {
        let m = random_lp(&mut rng);
        let sf = StandardForm::from_model(&m);
        let nv = m.num_vars();
        let cold = solve_standard_form(&sf, nv).unwrap_or_else(|e| panic!("case {case}: {e}"));
        if cold.status != SolveStatus::Optimal {
            // Infeasible instances are fine; just confirm determinism.
            let again = solve_standard_form(&sf, nv).unwrap();
            assert_eq!(again.status, cold.status, "case {case}");
            continue;
        }
        solved += 1;
        let basis = cold.basis.clone().expect("optimal LP must return a basis");

        // Re-solve the *same* problem warm: identical objective required.
        let resolve = solve_standard_form_from(&sf, nv, &[], Some(&basis)).unwrap();
        assert_eq!(resolve.status, SolveStatus::Optimal, "case {case}");
        assert!(
            (resolve.objective - cold.objective).abs() < 1e-6,
            "case {case}: warm resolve {} vs cold {}",
            resolve.objective,
            cold.objective
        );

        // Perturb one variable bound (tighten towards the optimal value so
        // the instance usually stays feasible) and compare warm vs cold.
        let j = rng.below(nv);
        let (lo, hi) = (m.vars[j].lb, m.vars[j].ub);
        let xj = cold.values[j];
        let overrides = if rng.f() < 0.5 {
            [(j, lo, (xj + rng.range(0.0, 2.0)).min(hi).max(lo))]
        } else {
            [(j, (xj - rng.range(0.0, 2.0)).max(lo).min(hi), hi)]
        };
        let warm = solve_standard_form_from(&sf, nv, &overrides, Some(&basis)).unwrap();
        let cold2 = solve_standard_form_from(&sf, nv, &overrides, None).unwrap();
        assert_eq!(
            warm.status, cold2.status,
            "case {case}: warm {:?} vs cold {:?} after override {overrides:?}",
            warm.status, cold2.status
        );
        if warm.status == SolveStatus::Optimal {
            assert!(
                (warm.objective - cold2.objective).abs() < 1e-6,
                "case {case}: warm {} vs cold {} after override {overrides:?}",
                warm.objective,
                cold2.objective
            );
            warmed += 1;
        }
    }
    // The corpus must actually exercise both paths.
    assert!(solved >= 80, "only {solved} optimal instances");
    assert!(warmed >= 60, "only {warmed} warm re-solves");
}

#[test]
fn milp_warm_and_cold_nodes_agree_on_random_corpus() {
    use teccl_lp::MilpConfig;
    let mut rng = Lcg(0xdead_beef);
    let mut solved = 0usize;
    for case in 0..40 {
        // Random small knapsack-ish MILPs.
        let nvars = 3 + rng.below(6);
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..nvars)
            .map(|j| m.add_binary_var(format!("x{j}"), rng.range(1.0, 10.0)))
            .collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, rng.range(1.0, 6.0))).collect();
        let cap = rng.range(4.0, 14.0);
        m.add_cons("cap", &terms, ConstraintOp::Le, cap);
        if nvars > 4 {
            let t2: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
            m.add_cons("card", &t2, ConstraintOp::Le, (nvars / 2) as f64);
        }
        let warm_cfg = MilpConfig::default();
        let cold_cfg = MilpConfig {
            warm_start: false,
            ..Default::default()
        };
        let warm = m
            .solve_with(&warm_cfg)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let cold = m
            .solve_with(&cold_cfg)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(warm.status, cold.status, "case {case}");
        if warm.status.has_solution() {
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "case {case}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            solved += 1;
        }
    }
    assert!(solved >= 30, "only {solved} solved MILPs");
}
