//! Sparse LU factorization of the simplex basis with product-form (eta)
//! updates.
//!
//! The revised simplex needs two linear solves per iteration against the basis
//! matrix `B` (one column of `A` per basic variable):
//!
//! * **FTRAN** — `B w = a` (the transformed entering column),
//! * **BTRAN** — `yᵀ B = c_Bᵀ` (the simplex multipliers / duals).
//!
//! Instead of maintaining a dense `B⁻¹` (`O(m²)` memory, `O(m²)` per pivot),
//! this module factorizes `B = L·U` with partial pivoting, stores `L` and `U`
//! sparsely, and absorbs basis changes with *eta* vectors (the product form of
//! the inverse): after a pivot on row `r` with transformed column `w`,
//! `B_new⁻¹ = E(w, r) · B_old⁻¹` where `E` is an identity matrix whose `r`-th
//! column is replaced.
//!
//! The factorization is **Gilbert–Peierls left-looking**: before the numeric
//! update of column `k`, a DFS over the already-built `L` columns computes the
//! exact set of elimination steps the column reaches, and only those steps are
//! replayed (in topological = ascending-step order). The cost per column is
//! proportional to the actual arithmetic (`O(flops)`), not to `k` — the dense
//! `for step in 0..k` replay this replaced had an `O(m²)` floor on every
//! refactorization regardless of sparsity.
//!
//! Solves replay the factors and then the etas. Refactorization is
//! **fill-aware**: the eta file is folded back into a fresh factorization once
//! its accumulated non-zeros exceed [`ETA_FILL_FACTOR`]× the factor fill
//! ([`LuFactors::fill_nnz`]) — i.e. once replaying the etas costs about as
//! much as the factors themselves — with a fixed [`ETA_PIVOT_BACKSTOP`] pivot
//! cap bounding numerical drift on very sparse bases.

use crate::error::LpError;
use crate::sparse::SparseVec;

/// Fill-aware refactorization trigger: refactorize once the eta file holds
/// more than this multiple of the factor non-zeros ([`LuFactors::fill_nnz`]).
/// At that point each FTRAN/BTRAN spends more time replaying etas than
/// factors, so folding them in pays for itself almost immediately.
pub const ETA_FILL_FACTOR: usize = 2;

/// Hard cap on accumulated eta *pivots* regardless of fill: numerical drift
/// grows with eta-chain length even when the etas are sparse.
pub const ETA_PIVOT_BACKSTOP: usize = 256;

/// Absolute pivot threshold: elements at or below this magnitude are rejected
/// (TE-CCL's matrices are unit-scaled, so an absolute test suffices; switch to
/// a column-relative test if badly scaled models ever show up).
const PIVOT_TOL: f64 = 1e-10;

/// Markowitz threshold-pivoting parameter: any candidate whose magnitude is
/// at least this fraction of the column's largest admissible pivot may be
/// chosen; among those, the row with the fewest non-zeros across the basis
/// columns wins (less elimination work touching it → less fill-in). `0.1` is
/// the classic compromise between stability (1.0 = pure partial pivoting)
/// and sparsity.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// Status of a variable (standard-form column) in a simplex basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis.
    Basic,
    /// Non-basic at its lower bound.
    AtLower,
    /// Non-basic at its upper bound.
    AtUpper,
    /// Non-basic free variable sitting at value 0.
    Free,
}

/// A snapshot of a simplex basis, sufficient to warm-start a later solve on
/// the same [`crate::standard::StandardForm`] (possibly with changed bounds —
/// the branch-and-bound use case).
///
/// `basic[r]` is the column occupying row `r`. Columns `>= num_cols` denote
/// the phase-1 artificial of row `col - num_cols`; these can linger in a
/// degenerate optimal basis and are reconstructed on warm start.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexBasis {
    /// Basic column per row (length `m`).
    pub basic: Vec<usize>,
    /// Status of every standard-form column (length `n`, artificials excluded).
    pub status: Vec<VarStatus>,
}

impl SimplexBasis {
    /// Serializes the basis to JSON: the `basic` column list plus a compact
    /// status string (one char per column: `B`asic, `L`ower, `U`pper,
    /// `F`ree). Used by the schedule service to persist warm-start hints
    /// alongside cached schedules.
    pub fn to_json_value(&self) -> teccl_util::json::Value {
        use teccl_util::json::Value;
        let status: String = self
            .status
            .iter()
            .map(|s| match s {
                VarStatus::Basic => 'B',
                VarStatus::AtLower => 'L',
                VarStatus::AtUpper => 'U',
                VarStatus::Free => 'F',
            })
            .collect();
        Value::obj(vec![
            (
                "basic",
                Value::Arr(self.basic.iter().map(|&b| Value::from(b)).collect()),
            ),
            ("status", Value::from(status)),
        ])
    }

    /// Deserializes a basis from the JSON produced by
    /// [`SimplexBasis::to_json_value`]. A shape- or content-invalid document
    /// is an error here; a shape-*mismatched* (but well-formed) basis is fine
    /// — the warm-start path falls back to a cold solve on its own.
    pub fn from_json_value(
        v: &teccl_util::json::Value,
    ) -> Result<SimplexBasis, teccl_util::json::JsonError> {
        use teccl_util::json::{JsonError, Value};
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        let basic = v
            .get("basic")
            .and_then(Value::as_arr)
            .ok_or(bad("missing basic"))?
            .iter()
            .map(|b| b.as_usize().ok_or(bad("bad basic entry")))
            .collect::<Result<Vec<usize>, _>>()?;
        let status = v
            .get("status")
            .and_then(Value::as_str)
            .ok_or(bad("missing status"))?
            .chars()
            .map(|c| match c {
                'B' => Ok(VarStatus::Basic),
                'L' => Ok(VarStatus::AtLower),
                'U' => Ok(VarStatus::AtUpper),
                'F' => Ok(VarStatus::Free),
                _ => Err(bad("bad status char")),
            })
            .collect::<Result<Vec<VarStatus>, _>>()?;
        Ok(SimplexBasis { basic, status })
    }
}

/// One product-form update: pivot row `r`, pivot value `w[r]`, and the other
/// non-zeros of the transformed entering column `w`.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    pivot: f64,
    /// `(row, w[row])` for rows other than `r` with `w[row] != 0`.
    col: Vec<(usize, f64)>,
}

/// A sparse LU factorization `B = L·U` (with row permutation) plus an eta file.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// `pivot_row[k]` — the original row eliminated at step `k`.
    pivot_row: Vec<usize>,
    /// L columns: multipliers `(original_row, l)` with unit diagonal implicit.
    lcols: Vec<Vec<(usize, f64)>>,
    /// U columns: `(step, u)` entries strictly above the diagonal.
    ucols: Vec<Vec<(usize, f64)>>,
    /// U diagonal per step.
    udiag: Vec<f64>,
    etas: Vec<Eta>,
    /// Non-zeros accumulated in `etas` (pivots + off-pivot entries): the
    /// fill-aware refactorization signal.
    eta_nnz: usize,
    /// Non-zeros in `L`+`U` (diagonals included), frozen at factorize time so
    /// [`LuFactors::needs_refactor`] is O(1) on the pivot hot loop.
    factor_nnz: usize,
    /// Scratch vectors reused by every FTRAN/BTRAN (the solves sit on the
    /// simplex hot loop; allocating per call dominated small-pivot profiles).
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    scratch_c: Vec<f64>,
    scratch_d: Vec<f64>,
}

impl LuFactors {
    /// Factorizes the basis given by `cols` (one sparse column per row of the
    /// basis, in basis-position order). Fails with [`LpError::Numerical`] if
    /// the matrix is (numerically) singular.
    pub fn factorize(m: usize, cols: &[SparseVec]) -> Result<Self, LpError> {
        debug_assert_eq!(cols.len(), m);
        let mut lu = LuFactors {
            m,
            pivot_row: Vec::with_capacity(m),
            lcols: Vec::with_capacity(m),
            ucols: Vec::with_capacity(m),
            udiag: Vec::with_capacity(m),
            etas: Vec::new(),
            eta_nnz: 0,
            factor_nnz: 2 * m,
            scratch_a: vec![0.0; m],
            scratch_b: vec![0.0; m],
            scratch_c: vec![0.0; m],
            scratch_d: vec![0.0; m],
        };
        // `pivoted[row] = Some(step)` once a row has been chosen as pivot.
        let mut pivoted: Vec<Option<usize>> = vec![None; m];
        let mut work = vec![0.0; m];
        let mut in_touched = vec![false; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);
        // Gilbert–Peierls symbolic scratch: `step_seen` marks steps already
        // discovered by the reach DFS for the current column.
        let mut step_seen = vec![false; m];
        let mut reach: Vec<usize> = Vec::with_capacity(m);
        let mut stack: Vec<usize> = Vec::with_capacity(m);
        // Static per-row non-zero counts over the basis columns: the
        // Markowitz tie-breaking signal (rows touched by few columns create
        // little fill when eliminated early).
        let mut row_count = vec![0usize; m];
        for col in cols {
            for (i, _) in col.iter() {
                row_count[i] += 1;
            }
        }

        for (k, col) in cols.iter().enumerate() {
            // Scatter the column into the dense work vector.
            for (i, v) in col.iter() {
                if !in_touched[i] {
                    in_touched[i] = true;
                    touched.push(i);
                }
                work[i] += v;
            }
            // Gilbert–Peierls symbolic phase: the elimination steps that can
            // touch this column are exactly those reachable from its initial
            // non-zero rows through the `L` dependency graph (step `s`
            // scatters into the rows of `lcols[s]`, each of which may be the
            // pivot row of a *later* step). A DFS collects that reach; since
            // every edge goes to a strictly larger step, ascending step order
            // is a topological order for the numeric replay. Cost is
            // proportional to the reach, not to `k`.
            reach.clear();
            for (i, _) in col.iter() {
                if let Some(s) = pivoted[i] {
                    if !step_seen[s] {
                        step_seen[s] = true;
                        stack.push(s);
                    }
                }
            }
            while let Some(s) = stack.pop() {
                reach.push(s);
                for &(i, _) in &lu.lcols[s] {
                    if let Some(s2) = pivoted[i] {
                        if !step_seen[s2] {
                            step_seen[s2] = true;
                            stack.push(s2);
                        }
                    }
                }
            }
            reach.sort_unstable();
            // Numeric phase: replay only the reached steps, in order.
            for &step in &reach {
                step_seen[step] = false;
                let prow = lu.pivot_row[step];
                let t = work[prow];
                if t == 0.0 {
                    continue; // exact numerical cancellation
                }
                for &(i, l) in &lu.lcols[step] {
                    if !in_touched[i] {
                        in_touched[i] = true;
                        touched.push(i);
                    }
                    work[i] -= l * t;
                }
            }
            // Gather U entries (rows already pivoted) and pick the pivot among
            // the rest: threshold partial pivoting with Markowitz
            // tie-breaking. Pass 1 finds the largest admissible magnitude;
            // pass 2 picks, among rows within MARKOWITZ_THRESHOLD of it, the
            // one with the smallest basis row count (ties by magnitude, then
            // by row index for determinism).
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut max_abs = 0.0f64;
            for &i in &touched {
                let v = work[i];
                if v == 0.0 {
                    continue;
                }
                match pivoted[i] {
                    Some(step) => ucol.push((step, v)),
                    None => max_abs = max_abs.max(v.abs()),
                }
            }
            if max_abs <= PIVOT_TOL {
                return Err(LpError::Numerical(format!(
                    "singular basis at column {k} (no admissible pivot)"
                )));
            }
            let cutoff = (MARKOWITZ_THRESHOLD * max_abs).max(PIVOT_TOL);
            let mut best: Option<(usize, f64)> = None;
            for &i in &touched {
                let v = work[i];
                if v == 0.0 || pivoted[i].is_some() || v.abs() < cutoff {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bi, bv)) => match row_count[i].cmp(&row_count[bi]) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => {
                            v.abs() > bv.abs() || (v.abs() == bv.abs() && i < bi)
                        }
                    },
                };
                if better {
                    best = Some((i, v));
                }
            }
            let (prow, pval) = best.expect("an admissible pivot exists above the cutoff");
            ucol.sort_unstable_by_key(|&(step, _)| step);
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &i in &touched {
                let v = work[i];
                if v != 0.0 && pivoted[i].is_none() && i != prow {
                    lcol.push((i, v / pval));
                }
            }
            pivoted[prow] = Some(k);
            lu.pivot_row.push(prow);
            lu.udiag.push(pval);
            lu.ucols.push(ucol);
            lu.lcols.push(lcol);
            // Clear the work vector.
            for &i in &touched {
                work[i] = 0.0;
                in_touched[i] = false;
            }
            touched.clear();
        }
        let l: usize = lu.lcols.iter().map(|c| c.len()).sum();
        let u: usize = lu.ucols.iter().map(|c| c.len()).sum();
        lu.factor_nnz = l + u + 2 * m;
        Ok(lu)
    }

    /// Dimension of the basis.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Number of eta updates accumulated since the last factorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total non-zeros stored in the `L` and `U` factors (including the unit
    /// and stored diagonals) — the fill-in metric `BENCH_lp.json` tracks for
    /// the Markowitz pivot ordering. Frozen at factorize time (O(1)).
    pub fn fill_nnz(&self) -> usize {
        self.factor_nnz
    }

    /// Non-zeros accumulated in the eta file since the last factorization.
    pub fn eta_nnz(&self) -> usize {
        self.eta_nnz
    }

    /// Whether the caller should refactorize: fill-aware (the eta file's
    /// non-zeros exceed [`ETA_FILL_FACTOR`]× the factor fill, so solves spend
    /// most of their time replaying etas) with a pivot-count backstop for
    /// numerical drift.
    pub fn needs_refactor(&self) -> bool {
        self.etas.len() >= ETA_PIVOT_BACKSTOP || self.eta_nnz > ETA_FILL_FACTOR * self.factor_nnz
    }

    /// FTRAN: solves `B x = rhs` in place. On input `rhs` is in original row
    /// space; on output it holds `x` indexed by basis position.
    pub fn ftran(&mut self, rhs: &mut [f64]) {
        debug_assert_eq!(rhs.len(), self.m);
        // Forward elimination: replay L.
        for step in 0..self.m {
            let t = rhs[self.pivot_row[step]];
            if t == 0.0 {
                continue;
            }
            for &(i, l) in &self.lcols[step] {
                rhs[i] -= l * t;
            }
        }
        // Back substitution on U (columns hold entries above the diagonal).
        // x lives in step space; gather from pivot rows first.
        let x = &mut self.scratch_a;
        for step in 0..self.m {
            x[step] = rhs[self.pivot_row[step]];
        }
        for j in (0..self.m).rev() {
            let xj = x[j] / self.udiag[j];
            x[j] = xj;
            if xj != 0.0 {
                for &(step, u) in &self.ucols[j] {
                    x[step] -= u * xj;
                }
            }
        }
        rhs.copy_from_slice(x);
        // Replay the eta file.
        for eta in &self.etas {
            let num = rhs[eta.r];
            if num != 0.0 {
                let t = num / eta.pivot;
                rhs[eta.r] = t;
                for &(i, w) in &eta.col {
                    rhs[i] -= w * t;
                }
            }
        }
    }

    /// BTRAN: solves `yᵀ B = c` in place. On input `c` is indexed by basis
    /// position; on output it holds `y` in original row space.
    pub fn btran(&mut self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Transposed etas, in reverse order.
        for eta in self.etas.iter().rev() {
            let mut acc = c[eta.r];
            for &(i, w) in &eta.col {
                acc -= w * c[i];
            }
            c[eta.r] = acc / eta.pivot;
        }
        // Solve Uᵀ z = c (forward over steps).
        let z = &mut self.scratch_a;
        for j in 0..self.m {
            let mut acc = c[j];
            for &(step, u) in &self.ucols[j] {
                acc -= u * z[step];
            }
            z[j] = acc / self.udiag[j];
        }
        // Solve Lᵀ y = z, scattering back to original row space.
        let y = &mut self.scratch_b;
        for step in 0..self.m {
            y[self.pivot_row[step]] = z[step];
        }
        for step in (0..self.m).rev() {
            let prow = self.pivot_row[step];
            let mut acc = y[prow];
            for &(i, l) in &self.lcols[step] {
                acc -= l * y[i];
            }
            y[prow] = acc;
        }
        c.copy_from_slice(y);
    }

    /// BTRAN on two right-hand sides in lockstep: every eta and factor entry
    /// is loaded once and applied to both systems, roughly halving the memory
    /// traffic of two back-to-back [`LuFactors::btran`] calls. The simplex
    /// pivot loop solves ρ = B⁻ᵀe_r and τ = B⁻ᵀw together on this path —
    /// on the big ALLTOALL forms the two solves are the largest single
    /// per-iteration cost.
    pub fn btran2(&mut self, c1: &mut [f64], c2: &mut [f64]) {
        debug_assert_eq!(c1.len(), self.m);
        debug_assert_eq!(c2.len(), self.m);
        // Transposed etas, in reverse order.
        for eta in self.etas.iter().rev() {
            let mut a1 = c1[eta.r];
            let mut a2 = c2[eta.r];
            for &(i, w) in &eta.col {
                a1 -= w * c1[i];
                a2 -= w * c2[i];
            }
            c1[eta.r] = a1 / eta.pivot;
            c2[eta.r] = a2 / eta.pivot;
        }
        // Solve Uᵀ z = c (forward over steps).
        let z1 = &mut self.scratch_a;
        let z2 = &mut self.scratch_c;
        for j in 0..self.m {
            let mut a1 = c1[j];
            let mut a2 = c2[j];
            for &(step, u) in &self.ucols[j] {
                a1 -= u * z1[step];
                a2 -= u * z2[step];
            }
            z1[j] = a1 / self.udiag[j];
            z2[j] = a2 / self.udiag[j];
        }
        // Solve Lᵀ y = z, scattering back to original row space.
        let y1 = &mut self.scratch_b;
        let y2 = &mut self.scratch_d;
        for step in 0..self.m {
            y1[self.pivot_row[step]] = z1[step];
            y2[self.pivot_row[step]] = z2[step];
        }
        for step in (0..self.m).rev() {
            let prow = self.pivot_row[step];
            let mut a1 = y1[prow];
            let mut a2 = y2[prow];
            for &(i, l) in &self.lcols[step] {
                a1 -= l * y1[i];
                a2 -= l * y2[i];
            }
            y1[prow] = a1;
            y2[prow] = a2;
        }
        c1.copy_from_slice(y1);
        c2.copy_from_slice(y2);
    }

    /// Records a basis change: the column entering at basis position `r` has
    /// transformed column `w` (`= B⁻¹ a_enter`, basis-position space). Returns
    /// an error if the pivot element is numerically unusable, in which case
    /// the caller must refactorize.
    pub fn update(&mut self, w: &[f64], r: usize) -> Result<(), LpError> {
        let pivot = w[r];
        if pivot.abs() <= PIVOT_TOL {
            return Err(LpError::Numerical(format!(
                "eta pivot too small ({pivot:.3e})"
            )));
        }
        let col: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.eta_nnz += col.len() + 1;
        self.etas.push(Eta { r, pivot, col });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseVec;

    fn dense_cols(cols: &[Vec<f64>]) -> Vec<SparseVec> {
        cols.iter()
            .map(|c| {
                SparseVec::from_pairs(
                    &c.iter()
                        .enumerate()
                        .filter(|(_, v)| **v != 0.0)
                        .map(|(i, v)| (i, *v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn mat_vec(cols: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = cols[0].len();
        let mut out = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for i in 0..m {
                out[i] += col[i] * x[j];
            }
        }
        out
    }

    fn vec_mat(cols: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        cols.iter()
            .map(|col| col.iter().zip(y.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn ftran_btran_solve_small_system() {
        // B = [[2, 1, 0], [0, 3, 1], [1, 0, 1]] given by columns.
        let cols = vec![
            vec![2.0, 0.0, 1.0],
            vec![1.0, 3.0, 0.0],
            vec![0.0, 1.0, 1.0],
        ];
        let mut lu = LuFactors::factorize(3, &dense_cols(&cols)).unwrap();
        let b = vec![4.0, 5.0, 6.0];
        let mut x = b.clone();
        lu.ftran(&mut x);
        let back = mat_vec(&cols, &x);
        for (a, e) in back.iter().zip(b.iter()) {
            assert!((a - e).abs() < 1e-10, "{back:?}");
        }
        let c = vec![1.0, -2.0, 0.5];
        let mut y = c.clone();
        lu.btran(&mut y);
        let back = vec_mat(&cols, &y);
        for (a, e) in back.iter().zip(c.iter()) {
            assert!((a - e).abs() < 1e-10, "{back:?}");
        }
    }

    #[test]
    fn btran2_matches_two_single_btrans() {
        // Same 3x3 system as above, plus an eta update so the lockstep path
        // exercises the eta replay too.
        let cols = vec![
            vec![2.0, 0.0, 1.0],
            vec![1.0, 3.0, 0.0],
            vec![0.0, 1.0, 1.0],
        ];
        let mut lu = LuFactors::factorize(3, &dense_cols(&cols)).unwrap();
        let mut w = vec![1.0, -1.0, 2.0];
        lu.ftran(&mut w);
        lu.update(&w, 2).unwrap();
        let c1 = vec![1.0, -2.0, 0.5];
        let c2 = vec![-3.0, 0.0, 4.0];
        let (mut s1, mut s2) = (c1.clone(), c2.clone());
        lu.btran(&mut s1);
        lu.btran(&mut s2);
        let (mut p1, mut p2) = (c1.clone(), c2.clone());
        lu.btran2(&mut p1, &mut p2);
        for (a, b) in s1.iter().zip(p1.iter()).chain(s2.iter().zip(p2.iter())) {
            assert!((a - b).abs() < 1e-12, "{s1:?}/{p1:?} {s2:?}/{p2:?}");
        }
    }

    #[test]
    fn permuted_identity_and_singular_detection() {
        // A permutation matrix factorizes fine.
        let cols = vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ];
        let mut lu = LuFactors::factorize(3, &dense_cols(&cols)).unwrap();
        let mut x = vec![1.0, 2.0, 3.0];
        lu.ftran(&mut x);
        assert_eq!(mat_vec(&cols, &x), vec![1.0, 2.0, 3.0]);
        // A rank-deficient matrix is rejected.
        let sing = vec![
            vec![1.0, 1.0, 0.0],
            vec![2.0, 2.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        assert!(LuFactors::factorize(3, &dense_cols(&sing)).is_err());
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // Start from B = I, replace column 1 with a = [1, 2, 0]^T.
        let eye = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut lu = LuFactors::factorize(3, &dense_cols(&eye)).unwrap();
        let a = vec![1.0, 2.0, 0.0];
        let mut w = a.clone();
        lu.ftran(&mut w); // w = a since B = I
        lu.update(&w, 1).unwrap();
        assert_eq!(lu.eta_count(), 1);

        let new_cols = vec![vec![1.0, 0.0, 0.0], a.clone(), vec![0.0, 0.0, 1.0]];
        let mut fresh = LuFactors::factorize(3, &dense_cols(&new_cols)).unwrap();
        let rhs = vec![3.0, 4.0, 5.0];
        let (mut x1, mut x2) = (rhs.clone(), rhs.clone());
        lu.ftran(&mut x1);
        fresh.ftran(&mut x2);
        for (a, b) in x1.iter().zip(x2.iter()) {
            assert!((a - b).abs() < 1e-10, "{x1:?} vs {x2:?}");
        }
        let cb = vec![1.0, 2.0, 3.0];
        let (mut y1, mut y2) = (cb.clone(), cb.clone());
        lu.btran(&mut y1);
        fresh.btran(&mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-10, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn long_eta_chain_stays_accurate() {
        // Random-ish sequence of rank-1 basis replacements on a 6x6 system,
        // checked against a fresh factorization each step.
        let m = 6;
        let mut cols: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..m).map(|i| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let mut lu = LuFactors::factorize(m, &dense_cols(&cols)).unwrap();
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for step in 0..20 {
            let r = step % m;
            let a: Vec<f64> = (0..m)
                .map(|i| {
                    if i == r {
                        2.0 + next().abs()
                    } else {
                        next() * 0.5
                    }
                })
                .collect();
            let mut w = a.clone();
            lu.ftran(&mut w);
            if w[r].abs() < 1e-8 {
                continue;
            }
            lu.update(&w, r).unwrap();
            cols[r] = a;
            let mut fresh = LuFactors::factorize(m, &dense_cols(&cols)).unwrap();
            let rhs: Vec<f64> = (0..m).map(|_| next()).collect();
            let (mut x1, mut x2) = (rhs.clone(), rhs.clone());
            lu.ftran(&mut x1);
            fresh.ftran(&mut x2);
            for (a, b) in x1.iter().zip(x2.iter()) {
                assert!((a - b).abs() < 1e-7, "step {step}: {x1:?} vs {x2:?}");
            }
        }
        assert!(lu.eta_count() > 10);
    }

    #[test]
    fn gilbert_peierls_handles_structured_sparse_basis() {
        // A banded + arrow matrix (the shape TE-CCL flow bases take): the
        // symbolic reach keeps each column solve local, and the numerics must
        // match a dense check. 40x40, bandwidth 2 plus a dense last row.
        let m = 40;
        let mut cols: Vec<Vec<f64>> = vec![vec![0.0; m]; m];
        for j in 0..m {
            cols[j][j] = 4.0 + (j % 3) as f64;
            if j + 1 < m {
                cols[j][j + 1] = -1.0;
            }
            if j >= 1 {
                cols[j][j - 1] = -0.5;
            }
            cols[j][m - 1] += 0.25; // arrow row
        }
        let mut lu = LuFactors::factorize(m, &dense_cols(&cols)).unwrap();
        let rhs: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x = rhs.clone();
        lu.ftran(&mut x);
        let back = mat_vec(&cols, &x);
        for (a, e) in back.iter().zip(rhs.iter()) {
            assert!((a - e).abs() < 1e-8, "{back:?}");
        }
        let mut y = rhs.clone();
        lu.btran(&mut y);
        let back = vec_mat(&cols, &y);
        for (a, e) in back.iter().zip(rhs.iter()) {
            assert!((a - e).abs() < 1e-8, "{back:?}");
        }
        // Fill stays near-linear for a banded matrix — the symbolic reach did
        // not densify the factors.
        assert!(
            lu.fill_nnz() < 8 * m,
            "unexpected fill-in: {} nnz for a banded {m}x{m} basis",
            lu.fill_nnz()
        );
    }

    #[test]
    fn refactor_trigger_is_fill_aware() {
        // Identity basis: factor_nnz = 2m. Dense etas accumulate nnz fast, so
        // the fill-aware trigger must fire long before the pivot backstop.
        let m = 8;
        let eye: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..m).map(|i| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let mut lu = LuFactors::factorize(m, &dense_cols(&eye)).unwrap();
        assert_eq!(lu.fill_nnz(), 2 * m);
        assert!(!lu.needs_refactor());
        let mut pivots = 0usize;
        while !lu.needs_refactor() {
            let w: Vec<f64> = (0..m).map(|i| 1.0 + i as f64 * 0.01).collect();
            lu.update(&w, pivots % m).unwrap();
            pivots += 1;
            assert!(pivots <= ETA_PIVOT_BACKSTOP, "trigger never fired");
        }
        // Dense etas carry m nnz each; the fill trigger fires after about
        // ETA_FILL_FACTOR * 2m / m = 2 * ETA_FILL_FACTOR pivots.
        assert!(
            pivots <= 2 * ETA_FILL_FACTOR + 1,
            "fill-aware trigger fired late: {pivots} pivots"
        );
        assert_eq!(lu.eta_nnz(), pivots * m);
        // Sparse (single-entry) etas carry 1 nnz each, so the fill trigger
        // lets them run ETA_FILL_FACTOR * factor_nnz pivots — far longer than
        // the dense case above, which is the whole point of the fill-aware
        // trigger.
        let mut lu2 = LuFactors::factorize(m, &dense_cols(&eye)).unwrap();
        let mut sparse_pivots = 0usize;
        while !lu2.needs_refactor() {
            let mut w = vec![0.0; m];
            w[sparse_pivots % m] = 1.5;
            lu2.update(&w, sparse_pivots % m).unwrap();
            sparse_pivots += 1;
            assert!(sparse_pivots <= ETA_PIVOT_BACKSTOP, "trigger never fired");
        }
        assert_eq!(sparse_pivots, ETA_FILL_FACTOR * 2 * m + 1);
        assert!(sparse_pivots > pivots * 4);
    }
}
