//! Conversion of a [`Model`] into the computational standard form used by the
//! bounded-variable simplex:
//!
//! ```text
//! minimize    c' x
//! subject to  A x = b
//!             l <= x <= u
//! ```
//!
//! Every constraint receives a slack column: `<=` gets a slack in `[0, +inf)`,
//! `>=` gets a slack in `(-inf, 0]`, and `==` gets a slack fixed to `[0, 0]`.
//! Maximization objectives are negated (and the sign restored when reporting).

use crate::model::{ConstraintOp, Model, Sense};
use crate::sparse::SparseMatrix;

/// A model in computational standard form.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Constraint matrix (m rows, n columns = structural + slack).
    pub a: SparseMatrix,
    /// Right-hand side (length m).
    pub b: Vec<f64>,
    /// Minimization objective (length n).
    pub c: Vec<f64>,
    /// Lower bounds (length n).
    pub lb: Vec<f64>,
    /// Upper bounds (length n).
    pub ub: Vec<f64>,
    /// Number of structural (original model) columns; columns `>=` this index
    /// are slacks, in constraint order.
    pub num_structural: usize,
    /// `-1.0` if the original model maximizes (objective was negated), else `1.0`.
    pub obj_sign: f64,
}

impl StandardForm {
    /// Number of rows (constraints).
    pub fn num_rows(&self) -> usize {
        self.b.len()
    }

    /// Number of columns (structural + slack).
    pub fn num_cols(&self) -> usize {
        self.c.len()
    }

    /// Builds the standard form of a model.
    pub fn from_model(model: &Model) -> Self {
        let m = model.cons.len();
        let n_struct = model.vars.len();
        let obj_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        let mut c = Vec::with_capacity(n_struct + m);
        let mut lb = Vec::with_capacity(n_struct + m);
        let mut ub = Vec::with_capacity(n_struct + m);

        // One triplet pass over the constraints covers the structural columns
        // and the per-constraint slack columns (column `n_struct + row`).
        let nnz: usize = model.cons.iter().map(|c| c.terms.len()).sum();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(nnz + m);
        for (row, cons) in model.cons.iter().enumerate() {
            for (vid, coef) in &cons.terms {
                if *coef != 0.0 {
                    triplets.push((row, vid.0, *coef));
                }
            }
            triplets.push((row, n_struct + row, 1.0));
        }
        let a = SparseMatrix::from_triplets(m, n_struct + m, &triplets);

        for var in &model.vars {
            c.push(obj_sign * var.obj);
            lb.push(var.lb);
            ub.push(var.ub);
        }

        // Slack bounds, one per constraint.
        let mut b = Vec::with_capacity(m);
        for cons in &model.cons {
            let (slb, sub) = match cons.op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            c.push(0.0);
            lb.push(slb);
            ub.push(sub);
            b.push(cons.rhs);
        }

        StandardForm {
            a,
            b,
            c,
            lb,
            ub,
            num_structural: n_struct,
            obj_sign,
        }
    }

    /// Converts an objective value of the (minimization) standard form back
    /// into the original model's sense.
    pub fn original_objective(&self, min_value: f64) -> f64 {
        self.obj_sign * min_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn sample_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
        m.add_cons("le", &[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 14.0);
        m.add_cons("ge", &[(x, 3.0), (y, -1.0)], ConstraintOp::Ge, 0.0);
        m.add_cons("eq", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 6.0);
        m
    }

    #[test]
    fn dimensions_and_slack_bounds() {
        let sf = StandardForm::from_model(&sample_model());
        assert_eq!(sf.num_rows(), 3);
        assert_eq!(sf.num_cols(), 2 + 3);
        assert_eq!(sf.num_structural, 2);
        // Slack bounds by constraint type.
        assert_eq!((sf.lb[2], sf.ub[2]), (0.0, f64::INFINITY)); // <=
        assert_eq!(sf.lb[3], f64::NEG_INFINITY); // >=
        assert_eq!(sf.ub[3], 0.0);
        assert_eq!((sf.lb[4], sf.ub[4]), (0.0, 0.0)); // ==
    }

    #[test]
    fn maximization_negates_objective() {
        let sf = StandardForm::from_model(&sample_model());
        assert_eq!(sf.obj_sign, -1.0);
        assert_eq!(sf.c[0], -3.0);
        assert_eq!(sf.c[1], -2.0);
        assert_eq!(sf.original_objective(-10.0), 10.0);
    }

    #[test]
    fn matrix_columns_match_constraints() {
        let sf = StandardForm::from_model(&sample_model());
        // Column for x appears in rows 0, 1, 2 with coefficients 1, 3, 1.
        let col_x = sf.a.col(0);
        assert_eq!(col_x.indices, vec![0, 1, 2]);
        assert_eq!(col_x.values, vec![1.0, 3.0, 1.0]);
        // Column for y: rows 0, 1, 2 with 2, -1, 1.
        let col_y = sf.a.col(1);
        assert_eq!(col_y.values, vec![2.0, -1.0, 1.0]);
        // Slack columns are unit columns.
        for (k, row) in (2..5).zip(0..3) {
            assert_eq!(sf.a.col(k).indices, vec![row]);
            assert_eq!(sf.a.col(k).values, vec![1.0]);
        }
        assert_eq!(sf.b, vec![14.0, 0.0, 6.0]);
    }

    #[test]
    fn minimize_keeps_sign() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 5.0);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Ge, 1.0);
        let sf = StandardForm::from_model(&m);
        assert_eq!(sf.obj_sign, 1.0);
        assert_eq!(sf.c[0], 5.0);
        assert_eq!(sf.original_objective(5.0), 5.0);
    }

    #[test]
    fn duplicate_terms_in_constraint_are_summed() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        m.add_cons("c", &[(x, 1.0), (x, 2.0)], ConstraintOp::Le, 5.0);
        let sf = StandardForm::from_model(&m);
        assert_eq!(sf.a.col(0).values, vec![3.0]);
    }
}
