//! Branch-and-bound MILP solver built on the LP relaxation.
//!
//! Mirrors the Gurobi features the TE-CCL paper relies on:
//!
//! * a **time limit** (the paper stops Gurobi after 2 hours and keeps the
//!   incumbent),
//! * a **relative-gap early stop** (the paper's "early stop at 30%" variant
//!   used for ALLGATHER),
//! * deterministic behaviour (best-bound node selection with stable
//!   tie-breaking, most-fractional branching with lowest-index ties),
//! * a rounding heuristic that quickly produces incumbents for the highly
//!   structured 0/1 flow models TE-CCL generates,
//! * **warm-started node re-solves**: presolve and the standard form are
//!   built *once* at the root; every child node re-solves with only a bound
//!   override list and its parent's optimal basis, so the simplex repairs a
//!   single bound violation instead of re-running phase 1 from the
//!   all-artificial basis (see [`crate::simplex::solve_standard_form_from`]),
//! * **per-node presolve**: before each node's LP re-solve, a lightweight
//!   bound-propagation pass (row-activity implied bounds, integer rounding,
//!   and light probing on binary variables) tightens the node's override
//!   list — or proves the node infeasible without any LP work. The root
//!   presolve is layout-preserving, so the propagated bounds feed straight
//!   into the dual simplex's bound-override path with the shared basis.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::basis::SimplexBasis;
use crate::error::LpError;
use crate::model::{Model, Sense};
use crate::par;
use crate::presolve;
use crate::simplex;
use crate::solution::{Solution, SolveStats, SolveStatus};
use crate::standard::StandardForm;
use crate::INT_TOL;
use teccl_util::SolveBudget;

/// Configuration for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Wall-clock limit; the best incumbent found so far is returned when it
    /// expires (status [`SolveStatus::Feasible`]).
    pub time_limit: Option<Duration>,
    /// Stop as soon as the relative gap between the incumbent and the best
    /// bound drops below this value (`0.0` = prove optimality, `0.3` = the
    /// paper's 30% early stop).
    pub rel_gap: f64,
    /// Maximum number of branch-and-bound nodes to explore.
    pub node_limit: usize,
    /// Whether to run the rounding heuristic at every node.
    pub rounding_heuristic: bool,
    /// Whether child nodes re-solve from their parent's optimal basis
    /// (disable to force cold phase-1 starts at every node, e.g. for
    /// benchmarking the warm-start win).
    pub warm_start: bool,
    /// Whether to run the per-node presolve (bound propagation + light
    /// probing) before each node's LP re-solve. Disable only to measure its
    /// effect — it never changes the reported optimum.
    pub node_presolve: bool,
    /// Cooperative budget (deadline / cancel / iteration cap) checked once
    /// per simplex pivot and once per branch-and-bound node. On exhaustion
    /// the best incumbent found so far is returned with
    /// [`SolveStats::budget_stop`] set; with no incumbent the solve fails
    /// with [`LpError::Budget`].
    pub budget: Option<SolveBudget>,
    /// Worker threads exploring the branch-and-bound tree (and racers in the
    /// pure-LP portfolio race). `1` (the default) runs the sequential path,
    /// byte-identical to the solver before parallelism existed; higher
    /// values share the open-node pool across that many threads. The
    /// *answer* is thread-count invariant (identical statuses, objectives
    /// equal to tolerance); the exploration order, node counts, and which of
    /// several equally-optimal vertices is reported may differ.
    pub threads: usize,
}

impl Default for MilpConfig {
    fn default() -> Self {
        Self {
            time_limit: None,
            rel_gap: 1e-6,
            node_limit: 200_000,
            rounding_heuristic: true,
            warm_start: true,
            node_presolve: true,
            budget: None,
            threads: 1,
        }
    }
}

impl MilpConfig {
    /// Configuration matching the paper's "early stop" mode (30% gap).
    pub fn early_stop(gap: f64) -> Self {
        Self {
            rel_gap: gap,
            ..Default::default()
        }
    }

    /// Configuration with a wall-clock time limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            ..Default::default()
        }
    }
}

/// A branch-and-bound node: the bound overrides accumulated along the path
/// from the root (in *reduced-model column* space), the parent's relaxation
/// objective (for best-bound selection and pruning), and the parent's optimal
/// basis for warm starting.
#[derive(Debug, Clone)]
struct Node {
    overrides: Vec<(usize, f64, f64)>,
    parent_bound: f64,
    id: usize,
    warm: Option<Arc<SimplexBasis>>,
}

/// Heap ordering wrapper: best bound first (max for maximization problems —
/// the objective is normalized so larger is always better inside the solver).
struct HeapNode {
    score: f64,
    node: Node,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.node.id == other.node.id
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher score first; ties broken by lower id (older node) for
        // determinism.
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.id.cmp(&self.node.id))
    }
}

/// The branch-and-bound solver.
#[derive(Debug, Clone)]
pub struct MilpSolver {
    config: MilpConfig,
}

impl MilpSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: MilpConfig) -> Self {
        Self { config }
    }

    /// Solves a mixed-integer model.
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        self.solve_from(model, None)
    }

    /// Solves a mixed-integer model, optionally warm-starting the **root**
    /// relaxation from a basis carried over from a previous solve of an
    /// identically-shaped model (the A* cross-round case). The returned
    /// [`Solution::basis`] is the root relaxation's final basis (in the
    /// presolved standard-form space), ready to be carried into the next
    /// round; a stale or mismatched basis silently falls back to a cold root.
    pub fn solve_from(
        &self,
        model: &Model,
        root_warm: Option<&SimplexBasis>,
    ) -> Result<Solution, LpError> {
        let start = Instant::now();
        let maximize = model.sense == Sense::Maximize;
        // `better(a, b)` returns true if objective a is strictly better than b.
        let better = |a: f64, b: f64| if maximize { a > b + 1e-9 } else { a < b - 1e-9 };

        // Presolve ONCE; the whole tree shares the tightened model's standard
        // form and only varies bounds. The presolve is layout-preserving
        // (fixings are `lb == ub` pins, freed rows get relaxed slacks), so
        // the column space is identical to the raw model's — any basis from
        // any node, round, or differently-presolved sibling solve stays
        // valid. Bound tightenings from branching only shrink domains, so
        // the root reductions hold at every node.
        let (red, post) = presolve::presolve(model)?;
        if let Some(early) = post.trivial_outcome() {
            let mut sol = post.recover(early, model);
            sol.stats.solve_time = start.elapsed();
            return Ok(sol);
        }
        let mut sf = StandardForm::from_model(&red);
        post.relax_free_rows(&mut sf);
        let sf = sf;
        let num_red_vars = red.num_vars();
        // Per-node presolve shares the same row view for the whole tree.
        let mut node_presolver = self
            .config
            .node_presolve
            .then(|| presolve::NodePresolver::new(&red, &post));
        // Original-model integer variables and their reduced columns.
        let int_vars: Vec<usize> = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| i)
            .collect();

        let mut stats = SolveStats {
            presolved_vars: post.original_vars - post.cols_fixed,
            presolved_cons: post.original_cons - post.rows_freed,
            cols_fixed: post.cols_fixed,
            rows_freed: post.rows_freed,
            ..Default::default()
        };

        let budget = self.config.budget.as_ref();

        // Root relaxation (dual re-optimized from the carried basis, when one
        // is provided and still fits the standard form's shape). A budget
        // stop here without a primal-feasible point propagates as an error —
        // there is nothing to degrade to yet.
        let root_red =
            simplex::solve_standard_form_budgeted(&sf, num_red_vars, &[], root_warm, budget)?;
        stats.absorb(&root_red.stats);
        // A budget-stopped root is a feasible point, not a dual bound; the
        // final gap/bound report must not treat its objective as proved.
        let root_budget_stopped = stats.budget_stop.is_some();
        // The root basis is what the next same-shaped solve warm-starts from.
        let carried_basis = root_red.basis.clone();
        let root = post.recover(root_red, model);
        match root.status {
            SolveStatus::Infeasible | SolveStatus::Unbounded => {
                let mut sol = root;
                sol.values = vec![0.0; model.num_vars()];
                sol.objective = f64::NAN;
                sol.duals = Vec::new();
                sol.basis = None;
                stats.solve_time = start.elapsed();
                sol.stats = stats;
                return Ok(sol);
            }
            _ => {}
        }

        // Multi-core path: share the open-node pool across `threads` workers.
        // Requires a cleanly-solved root (a budget-stopped root carries a
        // feasible point the sequential harvest below must get to see, and
        // there is no budget left to parallelize with anyway).
        if self.config.threads > 1 && !root_budget_stopped {
            return self.branch_parallel(
                model,
                &red,
                &post,
                &sf,
                num_red_vars,
                &int_vars,
                root,
                carried_basis,
                stats,
                start,
            );
        }

        let mut incumbent: Option<Solution> = None;
        let mut best_bound = root.objective;

        let mut heap = BinaryHeap::new();
        let mut next_id = 0usize;
        let score = |obj: f64| if maximize { obj } else { -obj };
        let root_basis = root.basis.clone().map(Arc::new);
        heap.push(HeapNode {
            score: score(root.objective),
            node: Node {
                overrides: Vec::new(),
                parent_bound: root.objective,
                id: next_id,
                warm: root_basis,
            },
        });
        next_id += 1;

        let mut hit_limit = false;
        // The root relaxation is already solved; hand it to the first pop.
        let mut root_relax = Some(root);

        while let Some(HeapNode { mut node, .. }) = heap.pop() {
            // Global bound = best over the open nodes and the node being
            // processed (the heap is ordered by bound).
            best_bound = node.parent_bound;
            if let Some(inc) = &incumbent {
                if gap(best_bound, inc.objective) <= self.config.rel_gap {
                    // Good enough: the paper's early-stop behaviour.
                    break;
                }
                if !better(node.parent_bound, inc.objective) {
                    continue; // prune by bound
                }
            }
            if stats.nodes_explored >= self.config.node_limit {
                hit_limit = true;
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() > limit {
                    hit_limit = true;
                    break;
                }
            }
            // Cooperative budget, checked between nodes as well as inside
            // each node's pivots (catches a cancel while the tree is hot but
            // the LPs are cheap). Skipped while the already-solved root
            // relaxation is pending: a budget-stopped root still carries a
            // feasible point the harvest below must get to see.
            if root_relax.is_none() {
                if let Some(b) = budget {
                    if let Some(cause) = b.exceeded() {
                        stats.budget_stop = stats.budget_stop.or(Some(cause));
                        hit_limit = true;
                        break;
                    }
                }
            }
            stats.nodes_explored += 1;

            // Solve this node's relaxation: shared standard form + this
            // node's bound overrides, warm-started from the parent's basis.
            let relax = match root_relax.take() {
                Some(r) => r,
                None => {
                    // Per-node presolve: propagate the branching bounds
                    // through the rows (plus light probing) before paying for
                    // the LP. The tightenings land in the override list the
                    // dual simplex consumes; a propagation-proven infeasible
                    // node is pruned with no LP work at all.
                    if let Some(np) = node_presolver.as_mut() {
                        match np.tighten(&mut node.overrides) {
                            None => continue, // infeasible by propagation
                            Some(t) => stats.node_tightenings += t,
                        }
                    }
                    let warm = if self.config.warm_start {
                        node.warm.as_deref()
                    } else {
                        None
                    };
                    let red_sol = match simplex::solve_standard_form_budgeted(
                        &sf,
                        num_red_vars,
                        &node.overrides,
                        warm,
                        budget,
                    ) {
                        Ok(s) => s,
                        // Budget exhausted with no feasible point at this
                        // node: keep whatever incumbent the tree already
                        // produced; fail only if there is none.
                        Err(LpError::Budget(cause)) => {
                            if incumbent.is_some() {
                                stats.budget_stop = stats.budget_stop.or(Some(cause));
                                hit_limit = true;
                                break;
                            }
                            return Err(LpError::Budget(cause));
                        }
                        Err(e) => return Err(e),
                    };
                    stats.absorb(&red_sol.stats);
                    post.recover(red_sol, model)
                }
            };
            if !relax.status.has_solution() {
                continue; // infeasible branch
            }
            // A budget stop *inside* this node's LP left a feasible point
            // that is not a valid bound: harvest it as an incumbent when it
            // is integral (the common pure-LP case), then stop the search.
            if stats.budget_stop.is_some() {
                hit_limit = true;
                let integral = int_vars
                    .iter()
                    .all(|&j| (relax.values[j] - relax.values[j].round()).abs() <= INT_TOL);
                if integral {
                    let mut cand = relax.clone();
                    round_integrals(&mut cand, &int_vars);
                    cand.objective = model.eval_objective(&cand.values);
                    cand.basis = None;
                    if incumbent
                        .as_ref()
                        .is_none_or(|inc| better(cand.objective, inc.objective))
                    {
                        incumbent = Some(cand);
                    }
                }
                break;
            }
            if let Some(inc) = &incumbent {
                if !better(relax.objective, inc.objective) {
                    continue; // prune by bound
                }
            }

            // Find the most fractional integer variable (original space; a
            // presolve-fixed integer variable is never fractional).
            let mut branch_var: Option<(usize, f64)> = None;
            for &j in &int_vars {
                let v = relax.values[j];
                let frac = (v - v.round()).abs();
                if frac > INT_TOL {
                    let distance_to_half = (frac - 0.5).abs();
                    match branch_var {
                        Some((_, best)) if distance_to_half >= best => {}
                        _ => branch_var = Some((j, distance_to_half)),
                    }
                }
            }

            match branch_var {
                None => {
                    // Integral relaxation → candidate incumbent.
                    let mut cand = relax.clone();
                    round_integrals(&mut cand, &int_vars);
                    cand.objective = model.eval_objective(&cand.values);
                    cand.basis = None;
                    if incumbent
                        .as_ref()
                        .is_none_or(|inc| better(cand.objective, inc.objective))
                    {
                        incumbent = Some(cand);
                    }
                }
                Some((j, _)) => {
                    // Rounding heuristic: try snapping every integer variable.
                    if self.config.rounding_heuristic {
                        if let Some(h) = rounding_heuristic(model, &relax, &int_vars) {
                            if incumbent
                                .as_ref()
                                .is_none_or(|inc| better(h.objective, inc.objective))
                            {
                                incumbent = Some(h);
                            }
                        }
                    }
                    // Branch on variable j. Presolve preserves the column
                    // layout, so the model index IS the standard-form column.
                    let red_j = j;
                    let v = relax.values[j];
                    let floor = v.floor();
                    let ceil = v.ceil();
                    let (cur_lb, cur_ub) = current_bounds(&red, &node.overrides, red_j);
                    let warm = relax.basis.map(Arc::new);

                    let mut down = node.overrides.clone();
                    down.push((red_j, cur_lb, floor.min(cur_ub)));
                    let mut up = node.overrides.clone();
                    up.push((red_j, ceil.max(cur_lb), cur_ub));

                    for overrides in [down, up] {
                        let (_, lo, hi) = overrides.last().copied().unwrap();
                        if lo > hi + 1e-9 {
                            continue; // empty branch
                        }
                        heap.push(HeapNode {
                            score: score(relax.objective),
                            node: Node {
                                overrides,
                                parent_bound: relax.objective,
                                id: next_id,
                                warm: warm.clone(),
                            },
                        });
                        next_id += 1;
                    }
                }
            }
        }

        // If the heap drained, the bound collapses to the incumbent.
        if heap.is_empty() && !hit_limit {
            if let Some(inc) = &incumbent {
                best_bound = inc.objective;
            }
        } else if let Some(top) = heap.peek() {
            best_bound = top.node.parent_bound;
        }

        stats.solve_time = start.elapsed();
        stats.best_bound = if root_budget_stopped {
            f64::NAN
        } else {
            best_bound
        };

        match incumbent {
            Some(mut inc) => {
                let g = if root_budget_stopped {
                    f64::INFINITY
                } else {
                    gap(best_bound, inc.objective)
                };
                stats.mip_gap = g;
                inc.status = if g <= self.config.rel_gap.max(1e-6) && !hit_limit {
                    SolveStatus::Optimal
                } else if hit_limit || g > self.config.rel_gap.max(1e-6) {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                inc.duals = Vec::new();
                inc.stats = stats;
                inc.basis = carried_basis;
                Ok(inc)
            }
            None => {
                // Budget exhausted with nothing to show: a typed error, so
                // callers can tell "ran out of time" from "proved
                // infeasible" and degrade accordingly.
                if let Some(cause) = stats.budget_stop {
                    return Err(LpError::Budget(cause));
                }
                stats.mip_gap = f64::INFINITY;
                Ok(Solution {
                    status: if hit_limit {
                        SolveStatus::LimitReached
                    } else {
                        SolveStatus::Infeasible
                    },
                    objective: f64::NAN,
                    values: vec![0.0; model.num_vars()],
                    duals: Vec::new(),
                    stats,
                    basis: carried_basis,
                })
            }
        }
    }

    /// The multi-core branch-and-bound driver: the already-solved root is
    /// expanded inline, its children seeded into a shared best-first
    /// [`par::NodePool`], and `threads` scoped workers pop/solve/branch until
    /// the pool drains or a stop cause (gap, limit, budget, error) lands.
    /// Workers prune against a [`par::SharedBest`] incumbent whose score is
    /// one atomic load, re-solve warm from their parent's `Arc`'d basis like
    /// the sequential path, and charge the same shared [`SolveBudget`].
    ///
    /// Termination: each popped node is either finished (children pushed
    /// before `finish`, so the pool can never look drained while a worker
    /// may still add work) or ends the worker with a sticky stop cause that
    /// wakes everyone. The global bound is the max over open and in-flight
    /// node scores — valid because a child's bound never beats its parent's.
    #[allow(clippy::too_many_arguments)]
    fn branch_parallel(
        &self,
        model: &Model,
        red: &Model,
        post: &presolve::PostSolve,
        sf: &StandardForm,
        num_red_vars: usize,
        int_vars: &[usize],
        root: Solution,
        carried_basis: Option<SimplexBasis>,
        mut stats: SolveStats,
        start: Instant,
    ) -> Result<Solution, LpError> {
        let maximize = model.sense == Sense::Maximize;
        let score = |obj: f64| if maximize { obj } else { -obj };
        let budget = self.config.budget.as_ref();
        let rel_gap = self.config.rel_gap;
        let time_limit = self.config.time_limit;
        // The root consumed one node of the limit before the pool existed.
        let node_limit = self.config.node_limit.saturating_sub(1);
        let rounding = self.config.rounding_heuristic;
        let warm_enabled = self.config.warm_start;
        let use_node_presolve = self.config.node_presolve;

        let pool: par::NodePool<Node> = par::NodePool::new();
        let best: par::SharedBest<Solution> = par::SharedBest::new();
        let first_err: par::FirstWin<LpError> = par::FirstWin::new();
        let next_id = AtomicUsize::new(1);

        let root_obj = root.objective;
        expand_relaxation(
            model,
            red,
            int_vars,
            rounding,
            maximize,
            &root,
            &[],
            &pool,
            &best,
            &next_id,
        );

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.config.threads)
                .map(|_| {
                    let (pool, best, first_err, next_id) = (&pool, &best, &first_err, &next_id);
                    s.spawn(move || {
                        let mut local = SolveStats::default();
                        let mut np =
                            use_node_presolve.then(|| presolve::NodePresolver::new(red, post));
                        loop {
                            // Between-node budget and wall-clock checks, the
                            // same cooperative points the sequential loop
                            // has; `pop` re-checks `exceeded(` while waiting.
                            if let Some(b) = budget {
                                if let Some(cause) = b.exceeded() {
                                    pool.stop(par::PoolStop::Budget(cause));
                                }
                            }
                            if let Some(limit) = time_limit {
                                if start.elapsed() > limit {
                                    pool.stop(par::PoolStop::Limit);
                                }
                            }
                            let popped = match pool.pop(node_limit, budget) {
                                par::Popped::Node(n) => n,
                                par::Popped::Drained | par::Popped::Stopped(_) => break,
                            };
                            let node_score = popped.score;
                            let mut node = popped.item;

                            let inc_score = best.score();
                            if inc_score.is_finite() {
                                // Scores are sign-normalized, so the gap in
                                // score space equals the gap in objective
                                // space (both numerator and denominator are
                                // absolute values).
                                let bound =
                                    pool.global_bound().unwrap_or(node_score).max(node_score);
                                if gap(bound, inc_score) <= rel_gap {
                                    pool.stop(par::PoolStop::GapReached);
                                    pool.finish(node_score);
                                    break;
                                }
                                if node_score <= inc_score + 1e-9 {
                                    pool.finish(node_score); // prune by bound
                                    continue;
                                }
                            }

                            if let Some(np) = np.as_mut() {
                                match np.tighten(&mut node.overrides) {
                                    None => {
                                        pool.finish(node_score); // infeasible by propagation
                                        continue;
                                    }
                                    Some(t) => local.node_tightenings += t,
                                }
                            }
                            let warm = if warm_enabled {
                                node.warm.as_deref()
                            } else {
                                None
                            };
                            let red_sol = match simplex::solve_standard_form_budgeted(
                                sf,
                                num_red_vars,
                                &node.overrides,
                                warm,
                                budget,
                            ) {
                                Ok(sol) => sol,
                                Err(LpError::Budget(cause)) => {
                                    pool.stop(par::PoolStop::Budget(cause));
                                    pool.finish(node_score);
                                    break;
                                }
                                Err(e) => {
                                    first_err.set_if_empty(e);
                                    pool.stop(par::PoolStop::Error);
                                    pool.finish(node_score);
                                    break;
                                }
                            };
                            local.absorb(&red_sol.stats);
                            let budget_stopped = red_sol.stats.budget_stop;
                            let relax = post.recover(red_sol, model);
                            if let Some(cause) = budget_stopped {
                                // A budget stop inside the LP left a feasible
                                // point that is not a valid bound: harvest it
                                // when integral (the sequential behaviour),
                                // then stop the search.
                                if relax.status.has_solution() {
                                    let integral = int_vars.iter().all(|&j| {
                                        (relax.values[j] - relax.values[j].round()).abs() <= INT_TOL
                                    });
                                    if integral {
                                        let mut cand = relax.clone();
                                        round_integrals(&mut cand, int_vars);
                                        cand.objective = model.eval_objective(&cand.values);
                                        cand.basis = None;
                                        best.offer(score(cand.objective), cand);
                                    }
                                }
                                pool.stop(par::PoolStop::Budget(cause));
                                pool.finish(node_score);
                                break;
                            }
                            if !relax.status.has_solution() {
                                pool.finish(node_score); // infeasible branch
                                continue;
                            }
                            if score(relax.objective) <= best.score() + 1e-9 {
                                pool.finish(node_score); // prune on fresh bound
                                continue;
                            }
                            expand_relaxation(
                                model,
                                red,
                                int_vars,
                                rounding,
                                maximize,
                                &relax,
                                &node.overrides,
                                pool,
                                best,
                                next_id,
                            );
                            pool.finish(node_score);
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => stats.absorb(&local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let stop = pool.stop_cause();
        if matches!(stop, Some(par::PoolStop::Error)) {
            if let Some(e) = first_err.take() {
                return Err(e);
            }
        }
        let hit_limit = matches!(stop, Some(par::PoolStop::Limit | par::PoolStop::Budget(_)));
        if let Some(par::PoolStop::Budget(cause)) = stop {
            stats.budget_stop = stats.budget_stop.or(Some(cause));
        }
        stats.nodes_explored += 1 + pool.popped();

        // Final global bound: pool max while open nodes remain (gap stop,
        // limits), collapsing to the incumbent on a full drain — the same
        // rule the sequential heap applies.
        let unscore = |s: f64| if maximize { s } else { -s };
        let pool_bound = pool.global_bound().map(unscore);
        let incumbent = best.take();
        let best_bound = match pool_bound {
            Some(b) => b,
            None => incumbent.as_ref().map_or(root_obj, |inc| inc.objective),
        };

        stats.solve_time = start.elapsed();
        stats.best_bound = best_bound;

        match incumbent {
            Some(mut inc) => {
                let g = gap(best_bound, inc.objective);
                stats.mip_gap = g;
                inc.status = if g <= self.config.rel_gap.max(1e-6) && !hit_limit {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::Feasible
                };
                inc.duals = Vec::new();
                inc.stats = stats;
                inc.basis = carried_basis;
                Ok(inc)
            }
            None => {
                if let Some(cause) = stats.budget_stop {
                    return Err(LpError::Budget(cause));
                }
                stats.mip_gap = f64::INFINITY;
                Ok(Solution {
                    status: if hit_limit {
                        SolveStatus::LimitReached
                    } else {
                        SolveStatus::Infeasible
                    },
                    objective: f64::NAN,
                    values: vec![0.0; model.num_vars()],
                    duals: Vec::new(),
                    stats,
                    basis: carried_basis,
                })
            }
        }
    }
}

/// Processes one solved node relaxation for the parallel driver: harvests an
/// integral point (or a rounding-heuristic point) into the shared incumbent
/// and pushes the two branching children into the pool. Mirrors the
/// branching arm of the sequential loop exactly — most-fractional variable,
/// lowest index on ties, children warm-started from this relaxation's basis.
#[allow(clippy::too_many_arguments)]
fn expand_relaxation(
    model: &Model,
    red: &Model,
    int_vars: &[usize],
    rounding: bool,
    maximize: bool,
    relax: &Solution,
    overrides: &[(usize, f64, f64)],
    pool: &par::NodePool<Node>,
    best: &par::SharedBest<Solution>,
    next_id: &AtomicUsize,
) {
    let score = |obj: f64| if maximize { obj } else { -obj };
    let mut branch_var: Option<(usize, f64)> = None;
    for &j in int_vars {
        let v = relax.values[j];
        let frac = (v - v.round()).abs();
        if frac > INT_TOL {
            let distance_to_half = (frac - 0.5).abs();
            match branch_var {
                Some((_, best_d)) if distance_to_half >= best_d => {}
                _ => branch_var = Some((j, distance_to_half)),
            }
        }
    }
    match branch_var {
        None => {
            // Integral relaxation → candidate incumbent.
            let mut cand = relax.clone();
            round_integrals(&mut cand, int_vars);
            cand.objective = model.eval_objective(&cand.values);
            cand.basis = None;
            best.offer(score(cand.objective), cand);
        }
        Some((j, _)) => {
            if rounding {
                if let Some(h) = rounding_heuristic(model, relax, int_vars) {
                    best.offer(score(h.objective), h);
                }
            }
            // Presolve preserves the column layout, so the model index IS
            // the standard-form column.
            let red_j = j;
            let v = relax.values[j];
            let floor = v.floor();
            let ceil = v.ceil();
            let (cur_lb, cur_ub) = current_bounds(red, overrides, red_j);
            let warm = relax.basis.clone().map(Arc::new);

            let mut down = overrides.to_vec();
            down.push((red_j, cur_lb, floor.min(cur_ub)));
            let mut up = overrides.to_vec();
            up.push((red_j, ceil.max(cur_lb), cur_ub));

            for child in [down, up] {
                let (_, lo, hi) = child.last().copied().unwrap();
                if lo > hi + 1e-9 {
                    continue; // empty branch
                }
                pool.push(
                    score(relax.objective),
                    Node {
                        overrides: child,
                        parent_bound: relax.objective,
                        id: next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        warm: warm.clone(),
                    },
                );
            }
        }
    }
}

/// Relative MIP gap.
fn gap(bound: f64, incumbent: f64) -> f64 {
    (bound - incumbent).abs() / incumbent.abs().max(1.0)
}

/// Snaps near-integral values exactly onto integers.
fn round_integrals(sol: &mut Solution, int_vars: &[usize]) {
    for &j in int_vars {
        sol.values[j] = sol.values[j].round();
    }
}

/// Rounds every integer variable of the relaxation to the nearest integer and
/// keeps the result if it is feasible for the full model.
fn rounding_heuristic(model: &Model, relax: &Solution, int_vars: &[usize]) -> Option<Solution> {
    let mut values = relax.values.clone();
    for &j in int_vars {
        let v = values[j].round();
        values[j] = v.clamp(model.vars[j].lb, model.vars[j].ub);
    }
    if model.is_feasible(&values, 1e-6) {
        let objective = model.eval_objective(&values);
        Some(Solution {
            status: SolveStatus::Feasible,
            objective,
            values,
            duals: Vec::new(),
            stats: Default::default(),
            basis: None,
        })
    } else {
        None
    }
}

/// Effective bounds of reduced column `j` at a node (reduced-model bounds plus
/// overrides).
fn current_bounds(red: &Model, overrides: &[(usize, f64, f64)], j: usize) -> (f64, f64) {
    let mut lb = red.vars[j].lb;
    let mut ub = red.vars[j].ub;
    for (k, lo, hi) in overrides {
        if *k == j {
            lb = *lo;
            ub = *hi;
        }
    }
    (lb, ub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack_small() {
        // Classic 0/1 knapsack: values [60, 100, 120], weights [10, 20, 30], cap 50.
        // Optimal: items 2 and 3 → 220.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = [60.0, 100.0, 120.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary_var(format!("x{i}"), v))
            .collect();
        m.add_cons(
            "cap",
            &[(x[0], 10.0), (x[1], 20.0), (x[2], 30.0)],
            ConstraintOp::Le,
            50.0,
        );
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 220.0, 1e-6);
        assert_eq!(sol.int_value(x[0]), 0);
        assert_eq!(sol.int_value(x[1]), 1);
        assert_eq!(sol.int_value(x[2]), 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x <= 5, x integer → x = 2 (LP relaxation 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_cons("c", &[(x, 2.0)], ConstraintOp::Le, 5.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective, 2.0, 1e-9);
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var("x", 1.0);
        let y = m.add_binary_var("y", 1.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x integer <= 2.5 constraint-wise, y continuous <= 1.3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 2.0, true);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_cons("cx", &[(x, 1.0)], ConstraintOp::Le, 2.5);
        m.add_cons("cy", &[(y, 1.0)], ConstraintOp::Le, 1.3);
        let sol = m.solve().unwrap();
        assert_close(sol.objective, 2.0 * 2.0 + 1.3, 1e-6);
        assert_close(sol.value(x), 2.0, 1e-9);
        assert_close(sol.value(y), 1.3, 1e-6);
    }

    #[test]
    fn early_stop_returns_feasible_status_or_optimal() {
        // With a huge allowed gap the solver may stop at the first incumbent.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..8)
            .map(|i| m.add_binary_var(format!("x{i}"), (i + 1) as f64))
            .collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
        m.add_cons("cap", &terms, ConstraintOp::Le, 4.0);
        let sol = m.solve_with(&MilpConfig::early_stop(0.5)).unwrap();
        assert!(sol.has_solution());
        // Any solution must respect the cardinality constraint.
        let count: f64 = xs.iter().map(|&x| sol.value(x)).sum();
        assert!(count <= 4.0 + 1e-6);
    }

    #[test]
    fn equality_constrained_mip() {
        // x + y == 3, x,y binary-ish integers in [0, 2]; max x → x=2, y=1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 1.0, true);
        let y = m.add_var("y", 0.0, 2.0, 0.0, true);
        m.add_cons("e", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.value(x), 2.0, 1e-9);
        assert_close(sol.value(y), 1.0, 1e-9);
    }

    #[test]
    fn minimization_mip() {
        // Set covering: choose min number of sets covering {a, b, c}.
        // Sets: {a,b}, {b,c}, {a,c}, {a,b,c}. Optimal = 1 (last set).
        let mut m = Model::new(Sense::Minimize);
        let s: Vec<_> = (0..4)
            .map(|i| m.add_binary_var(format!("s{i}"), 1.0))
            .collect();
        m.add_cons(
            "a",
            &[(s[0], 1.0), (s[2], 1.0), (s[3], 1.0)],
            ConstraintOp::Ge,
            1.0,
        );
        m.add_cons(
            "b",
            &[(s[0], 1.0), (s[1], 1.0), (s[3], 1.0)],
            ConstraintOp::Ge,
            1.0,
        );
        m.add_cons(
            "c",
            &[(s[1], 1.0), (s[2], 1.0), (s[3], 1.0)],
            ConstraintOp::Ge,
            1.0,
        );
        let sol = m.solve().unwrap();
        assert_close(sol.objective, 1.0, 1e-6);
    }

    #[test]
    fn node_limit_yields_feasible_or_limit() {
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..10)
            .map(|i| m.add_binary_var(format!("x{i}"), ((i * 7) % 5 + 1) as f64))
            .collect();
        let terms: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, ((i * 3) % 4 + 1) as f64))
            .collect();
        m.add_cons("cap", &terms, ConstraintOp::Le, 7.0);
        let cfg = MilpConfig {
            node_limit: 1,
            ..Default::default()
        };
        let sol = m.solve_with(&cfg).unwrap();
        assert!(matches!(
            sol.status,
            SolveStatus::Feasible | SolveStatus::LimitReached | SolveStatus::Optimal
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut m = Model::new(Sense::Maximize);
            let xs: Vec<_> = (0..6)
                .map(|i| m.add_binary_var(format!("x{i}"), (i % 3 + 1) as f64))
                .collect();
            let terms: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
            m.add_cons("cap", &terms, ConstraintOp::Le, 3.0);
            m
        };
        let s1 = build().solve().unwrap();
        let s2 = build().solve().unwrap();
        assert_eq!(s1.values, s2.values);
        assert_eq!(s1.objective, s2.objective);
    }

    #[test]
    fn pure_lp_dispatch_through_solve() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.0, 1.0, false);
        let _ = x;
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 3.0, 1e-9);
    }

    #[test]
    fn mip_gap_reported_zero_at_optimality() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var("x", 5.0);
        let y = m.add_binary_var("y", 4.0);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.stats.mip_gap <= 1e-6);
        assert_close(sol.objective, 5.0, 1e-9);
    }

    /// A knapsack MILP whose LP relaxation is fractional at the root and in
    /// several children, forcing real branching.
    fn branching_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let w: Vec<f64> = (0..10).map(|i| (5 + i) as f64).collect();
        let xs: Vec<_> = w
            .iter()
            .enumerate()
            .map(|(i, &wi)| m.add_binary_var(format!("x{i}"), wi + 1.0))
            .collect();
        let terms: Vec<_> = xs.iter().zip(w.iter()).map(|(&x, &wi)| (x, wi)).collect();
        m.add_cons("cap", &terms, ConstraintOp::Le, 23.0);
        m
    }

    #[test]
    fn warm_start_agrees_with_cold_and_saves_phase1_solves() {
        let m = branching_model();
        let cfg_warm = MilpConfig {
            rounding_heuristic: false,
            ..Default::default()
        };
        let cfg_cold = MilpConfig {
            rounding_heuristic: false,
            warm_start: false,
            ..Default::default()
        };
        let warm = m.solve_with(&cfg_warm).unwrap();
        let cold = m.solve_with(&cfg_cold).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-6);
        assert!(warm.stats.nodes_explored > 1, "model must branch");
        // Warm-started runs replace per-node cold phase-1 solves.
        assert!(
            warm.stats.warm_starts > 0 && warm.stats.cold_starts <= 1,
            "warm {} cold {}",
            warm.stats.warm_starts,
            warm.stats.cold_starts
        );
        assert_eq!(cold.stats.warm_starts, 0);
        assert!(cold.stats.cold_starts >= cold.stats.nodes_explored.min(2));
        // Cold per-node solves now run a dual phase 1 from the slack basis —
        // on a one-row knapsack that is nearly as good as a parent-basis warm
        // start, so warm no longer wins the raw iteration count outright; it
        // must stay in the same ballpark (the structural win it keeps is
        // skipping the per-node state rebuild, asserted via the
        // warm/cold-start counters above).
        assert!(
            warm.stats.simplex_iterations <= 2 * cold.stats.simplex_iterations,
            "warm {} vs cold {}",
            warm.stats.simplex_iterations,
            cold.stats.simplex_iterations
        );
    }
}
