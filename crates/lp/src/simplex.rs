//! Two-phase bounded-variable primal revised simplex.
//!
//! The implementation keeps a dense basis inverse `B^{-1}` (the TE-CCL
//! formulations solved in the benchmarks stay in the low-thousands of rows, so
//! an `m x m` dense inverse is the simplest robust representation) and updates
//! it with product-form pivots. Pricing is Dantzig's rule with an automatic
//! switch to Bland's rule when the objective stalls, which guarantees
//! termination on degenerate problems.
//!
//! Phase 1 minimizes the sum of artificial variables (one per row, signed so
//! their initial value is non-negative); phase 2 minimizes the real objective
//! with all artificials fixed to zero.

use crate::error::LpError;
use crate::model::Model;
use crate::solution::{Solution, SolveStats, SolveStatus};
use crate::sparse::{DenseMatrix, SparseMatrix, SparseVec};
use crate::standard::StandardForm;

/// Non-basic variable status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    /// Non-basic free variable sitting at value 0.
    Free,
}

/// Outcome of a single simplex phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Internal simplex working state over the standard form plus artificials.
struct SimplexState {
    /// Constraint matrix including artificial columns (the last `m` columns).
    a: SparseMatrix,
    b: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Current value of every column.
    x: Vec<f64>,
    /// Status of every column.
    status: Vec<VarStatus>,
    /// Basic column for each row.
    basis: Vec<usize>,
    /// Dense basis inverse.
    binv: DenseMatrix,
    /// Total iterations performed (both phases).
    iterations: usize,
}

/// Solves the LP relaxation of `model` (integrality ignored) with the
/// two-phase simplex and returns the solution in the model's variable space.
pub fn solve_lp(model: &Model) -> Result<Solution, LpError> {
    let sf = StandardForm::from_model(model);
    solve_standard_form(&sf, model.num_vars())
}

/// Solves a prepared [`StandardForm`]. `num_model_vars` is the number of
/// structural variables to report back (the first columns of the form).
pub fn solve_standard_form(sf: &StandardForm, num_model_vars: usize) -> Result<Solution, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();

    // Trivial case: no constraints. Each variable independently moves to the
    // bound that minimizes its cost.
    if m == 0 {
        return Ok(solve_unconstrained(sf, num_model_vars));
    }

    let mut state = build_initial_state(sf);
    let max_iters = 200 * (m + n) + 20_000;

    // ---- Phase 1: drive artificials to zero. ----
    let mut phase1_cost = vec![0.0; n + m];
    for j in n..n + m {
        phase1_cost[j] = 1.0;
    }
    let outcome = run_phase(&mut state, &phase1_cost, max_iters)?;
    // Phase 1 objective is bounded below by zero, so "unbounded" here is a
    // numerical failure.
    if outcome == PhaseOutcome::Unbounded {
        return Err(LpError::Numerical("phase 1 reported unbounded".into()));
    }
    let infeas: f64 = (n..n + m).map(|j| state.x[j].abs()).sum();
    if infeas > 1e-6 {
        return Ok(Solution {
            status: SolveStatus::Infeasible,
            objective: f64::NAN,
            values: vec![0.0; num_model_vars],
            duals: Vec::new(),
            stats: SolveStats {
                simplex_iterations: state.iterations,
                ..Default::default()
            },
        });
    }
    // Fix artificials at zero so they cannot re-enter with a non-zero value.
    for j in n..n + m {
        state.lb[j] = 0.0;
        state.ub[j] = 0.0;
        if state.status[j] != VarStatus::Basic {
            state.x[j] = 0.0;
            state.status[j] = VarStatus::AtLower;
        }
    }

    // ---- Phase 2: real objective. ----
    let mut phase2_cost = vec![0.0; n + m];
    phase2_cost[..n].copy_from_slice(&sf.c);
    let outcome = run_phase(&mut state, &phase2_cost, max_iters)?;
    if outcome == PhaseOutcome::Unbounded {
        return Ok(Solution {
            status: SolveStatus::Unbounded,
            objective: f64::NAN,
            values: vec![0.0; num_model_vars],
            duals: Vec::new(),
            stats: SolveStats {
                simplex_iterations: state.iterations,
                ..Default::default()
            },
        });
    }

    // Extract the solution.
    let min_obj: f64 = (0..n).map(|j| sf.c[j] * state.x[j]).sum();
    let objective = sf.original_objective(min_obj);
    let values: Vec<f64> = (0..num_model_vars).map(|j| clamp_bound_noise(state.x[j], sf.lb[j], sf.ub[j])).collect();

    // Dual values: y = c_B * B^{-1}, reported in the original sense.
    let cb: Vec<f64> = state.basis.iter().map(|&j| phase2_cost[j]).collect();
    let y = state.binv.left_mul_dense(&cb);
    let duals: Vec<f64> = y.iter().map(|v| sf.obj_sign * v).collect();

    Ok(Solution {
        status: SolveStatus::Optimal,
        objective,
        values,
        duals,
        stats: SolveStats {
            simplex_iterations: state.iterations,
            best_bound: objective,
            ..Default::default()
        },
    })
}

/// Rounds values that drifted a hair outside their bounds back onto the bound.
fn clamp_bound_noise(x: f64, lb: f64, ub: f64) -> f64 {
    if x < lb {
        lb
    } else if x > ub {
        ub
    } else if (x - lb).abs() < 1e-11 {
        lb
    } else if ub.is_finite() && (x - ub).abs() < 1e-11 {
        ub
    } else {
        x
    }
}

/// Solves the degenerate "no constraints" case.
fn solve_unconstrained(sf: &StandardForm, num_model_vars: usize) -> Solution {
    let n = sf.num_cols();
    let mut values = vec![0.0; n];
    for j in 0..n {
        let c = sf.c[j];
        if c > 0.0 {
            if sf.lb[j].is_finite() {
                values[j] = sf.lb[j];
            } else {
                return unbounded_solution(num_model_vars);
            }
        } else if c < 0.0 {
            if sf.ub[j].is_finite() {
                values[j] = sf.ub[j];
            } else {
                return unbounded_solution(num_model_vars);
            }
        } else {
            values[j] = if sf.lb[j].is_finite() {
                sf.lb[j]
            } else if sf.ub[j].is_finite() {
                sf.ub[j]
            } else {
                0.0
            };
        }
    }
    let min_obj: f64 = (0..n).map(|j| sf.c[j] * values[j]).sum();
    Solution {
        status: SolveStatus::Optimal,
        objective: sf.original_objective(min_obj),
        values: values[..num_model_vars].to_vec(),
        duals: Vec::new(),
        stats: Default::default(),
    }
}

fn unbounded_solution(num_model_vars: usize) -> Solution {
    Solution {
        status: SolveStatus::Unbounded,
        objective: f64::NAN,
        values: vec![0.0; num_model_vars],
        duals: Vec::new(),
        stats: Default::default(),
    }
}

/// Builds the initial simplex state: non-basic structural/slack columns at a
/// finite bound (or 0 if free) and an all-artificial basis absorbing the
/// residual.
fn build_initial_state(sf: &StandardForm) -> SimplexState {
    let m = sf.num_rows();
    let n = sf.num_cols();

    let mut a = sf.a.clone();
    let mut lb = sf.lb.clone();
    let mut ub = sf.ub.clone();
    let mut x = vec![0.0; n + m];
    let mut status = vec![VarStatus::AtLower; n + m];

    for j in 0..n {
        if sf.lb[j].is_finite() {
            x[j] = sf.lb[j];
            status[j] = VarStatus::AtLower;
        } else if sf.ub[j].is_finite() {
            x[j] = sf.ub[j];
            status[j] = VarStatus::AtUpper;
        } else {
            x[j] = 0.0;
            status[j] = VarStatus::Free;
        }
    }

    // Residual the artificial basis must absorb.
    let ax = a.mul_dense(&x[..n]);
    let mut basis = Vec::with_capacity(m);
    for i in 0..m {
        let r = sf.b[i] - ax[i];
        let sign = if r >= 0.0 { 1.0 } else { -1.0 };
        let col = SparseVec::from_pairs(&[(i, sign)]);
        let j = a.push_col(col);
        lb.push(0.0);
        ub.push(f64::INFINITY);
        x[j] = r.abs();
        status[j] = VarStatus::Basic;
        basis.push(j);
    }

    // With a signed-identity artificial basis the inverse is the signed
    // identity itself.
    let mut binv = DenseMatrix::identity(m);
    for (i, &j) in basis.iter().enumerate() {
        let sign = a.col(j).values[0];
        if sign < 0.0 {
            binv.set(i, i, -1.0);
        }
    }

    SimplexState { a, b: sf.b.clone(), lb, ub, x, status, basis, binv, iterations: 0 }
}

/// Runs simplex iterations for one phase with the given cost vector.
fn run_phase(state: &mut SimplexState, cost: &[f64], max_iters: usize) -> Result<PhaseOutcome, LpError> {
    let m = state.basis.len();
    let ncols = state.a.ncols();
    let dtol = 1e-9;
    let piv_tol = 1e-9;

    let mut use_bland = false;
    let mut stall_count = 0usize;
    let mut last_obj = f64::INFINITY;
    let mut local_iters = 0usize;

    loop {
        if local_iters > max_iters {
            return Err(LpError::IterationLimit(max_iters));
        }
        local_iters += 1;
        state.iterations += 1;

        // Periodically recompute the basic values from the inverse to limit
        // accumulated floating-point drift.
        if local_iters % 256 == 0 {
            recompute_basic_values(state);
        }

        // Pricing: y = c_B B^{-1}, reduced cost d_j = c_j - y A_j.
        let cb: Vec<f64> = state.basis.iter().map(|&j| cost[j]).collect();
        let y = state.binv.left_mul_dense(&cb);

        let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, direction)
        for j in 0..ncols {
            match state.status[j] {
                VarStatus::Basic => continue,
                _ => {}
            }
            // Fixed columns can never usefully enter.
            if state.ub[j] - state.lb[j] < dtol {
                continue;
            }
            let d = cost[j] - state.a.col(j).dot_dense(&y);
            let (eligible, dir) = match state.status[j] {
                VarStatus::AtLower => (d < -dtol, 1.0),
                VarStatus::AtUpper => (d > dtol, -1.0),
                VarStatus::Free => {
                    if d < -dtol {
                        (true, 1.0)
                    } else if d > dtol {
                        (true, -1.0)
                    } else {
                        (false, 1.0)
                    }
                }
                VarStatus::Basic => (false, 1.0),
            };
            if !eligible {
                continue;
            }
            if use_bland {
                // Bland: first eligible index.
                entering = Some((j, d.abs(), dir));
                break;
            }
            match entering {
                Some((_, best, _)) if d.abs() <= best => {}
                _ => entering = Some((j, d.abs(), dir)),
            }
        }

        let (enter, _, dir) = match entering {
            None => return Ok(PhaseOutcome::Optimal),
            Some(e) => e,
        };

        // Transformed column w = B^{-1} A_enter.
        let w = state.binv.mul_sparse_col(state.a.col(enter));

        // Ratio test. The entering variable moves by `t >= 0` in direction
        // `dir`; basic variable in row r changes at rate `-dir * w[r]`.
        let own_range = state.ub[enter] - state.lb[enter]; // may be inf
        let mut t_best = own_range;
        let mut leave_row: Option<usize> = None;
        for r in 0..m {
            let rate = -dir * w[r];
            if rate < -piv_tol {
                let bvar = state.basis[r];
                if state.lb[bvar].is_finite() {
                    let room = state.x[bvar] - state.lb[bvar];
                    let t = (room.max(0.0)) / -rate;
                    if t < t_best - 1e-12
                        || (t < t_best + 1e-12
                            && better_pivot(&w, r, leave_row, use_bland, &state.basis))
                    {
                        t_best = t;
                        leave_row = Some(r);
                    }
                }
            } else if rate > piv_tol {
                let bvar = state.basis[r];
                if state.ub[bvar].is_finite() {
                    let room = state.ub[bvar] - state.x[bvar];
                    let t = (room.max(0.0)) / rate;
                    if t < t_best - 1e-12
                        || (t < t_best + 1e-12
                            && better_pivot(&w, r, leave_row, use_bland, &state.basis))
                    {
                        t_best = t;
                        leave_row = Some(r);
                    }
                }
            }
        }

        if !t_best.is_finite() && leave_row.is_none() {
            return Ok(PhaseOutcome::Unbounded);
        }
        let t = t_best.max(0.0);

        // Apply the step to all basic variables and the entering variable.
        for r in 0..m {
            let bvar = state.basis[r];
            state.x[bvar] += -dir * w[r] * t;
        }
        state.x[enter] += dir * t;

        match leave_row {
            None => {
                // Bound flip: the entering variable traversed its whole range.
                state.status[enter] = if dir > 0.0 { VarStatus::AtUpper } else { VarStatus::AtLower };
                state.x[enter] = if dir > 0.0 { state.ub[enter] } else { state.lb[enter] };
            }
            Some(r) => {
                let leaving = state.basis[r];
                let rate = -dir * w[r];
                if leaving != enter {
                    // Snap the leaving variable onto the bound it reached.
                    if rate < 0.0 {
                        state.x[leaving] = state.lb[leaving];
                        state.status[leaving] = VarStatus::AtLower;
                    } else {
                        state.x[leaving] = state.ub[leaving];
                        state.status[leaving] = VarStatus::AtUpper;
                    }
                    state.basis[r] = enter;
                    state.status[enter] = VarStatus::Basic;
                    state.binv.pivot_update_copy(&w, r);
                } else {
                    // The entering variable limits itself (can happen when it
                    // is already basic-adjacent numerically); treat as flip.
                    state.status[enter] = if dir > 0.0 { VarStatus::AtUpper } else { VarStatus::AtLower };
                }
            }
        }

        // Anti-cycling: if the phase objective stops improving for a long
        // stretch (heavy degeneracy), switch to Bland's rule.
        let obj: f64 = state
            .basis
            .iter()
            .map(|&j| cost[j] * state.x[j])
            .sum::<f64>()
            + (0..ncols)
                .filter(|&j| state.status[j] != VarStatus::Basic)
                .map(|j| cost[j] * state.x[j])
                .sum::<f64>();
        if obj < last_obj - 1e-10 {
            last_obj = obj;
            stall_count = 0;
        } else {
            stall_count += 1;
            if stall_count > 2 * (m + 16) {
                use_bland = true;
            }
        }
    }
}

/// Tie-breaking helper for the ratio test: prefer pivots with larger |w[r]|
/// for numerical stability, or the lowest basis index under Bland's rule.
fn better_pivot(w: &[f64], candidate: usize, current: Option<usize>, bland: bool, basis: &[usize]) -> bool {
    match current {
        None => true,
        Some(cur) => {
            if bland {
                basis[candidate] < basis[cur]
            } else {
                w[candidate].abs() > w[cur].abs()
            }
        }
    }
}

/// Recomputes the values of the basic variables as `B^{-1}(b - A_N x_N)`.
fn recompute_basic_values(state: &mut SimplexState) {
    let m = state.basis.len();
    let ncols = state.a.ncols();
    let mut rhs = state.b.clone();
    for j in 0..ncols {
        if state.status[j] == VarStatus::Basic {
            continue;
        }
        let xj = state.x[j];
        if xj == 0.0 {
            continue;
        }
        for (i, v) in state.a.col(j).iter() {
            rhs[i] -= v * xj;
        }
    }
    // x_B = Binv * rhs.
    for r in 0..m {
        let mut acc = 0.0;
        let row = state.binv.row(r);
        for i in 0..m {
            acc += row[i] * rhs[i];
        }
        state.x[state.basis[r]] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → obj 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 36.0, 1e-6);
        assert_close(sol.value(x), 2.0, 1e-6);
        assert_close(sol.value(y), 6.0, 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → x=7,y=3 → 23.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 2.0);
        let y = m.add_nonneg_var("y", 3.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        m.add_cons("c2", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.add_cons("c3", &[(y, 1.0)], ConstraintOp::Ge, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 23.0, 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x = 2, y = 1 → 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        m.add_cons("e1", &[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        m.add_cons("e2", &[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.value(x), 2.0, 1e-6);
        assert_close(sol.value(y), 1.0, 1e-6);
        assert_close(sol.objective, 3.0, 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 0.0);
        m.add_cons("c", &[(y, 1.0)], ConstraintOp::Le, 5.0);
        let _ = x;
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn bounded_variables_and_bound_flips() {
        // max x + y with 0 <= x <= 2, 0 <= y <= 3, x + y <= 4 → 4.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 4.0, 1e-6);
        assert!(sol.value(x) <= 2.0 + 1e-9);
        assert!(sol.value(y) <= 3.0 + 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + y = 0, y <= 3 → x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 0.0, false);
        m.add_cons("e", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 0.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), -3.0, 1e-6);
        assert_close(sol.objective, -3.0, 1e-6);
    }

    #[test]
    fn free_variable_support() {
        // min x + 2y, x free, y >= 0, x + y >= 3, x >= -10 via constraint.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0, false);
        let y = m.add_nonneg_var("y", 2.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        m.add_cons("c2", &[(x, 1.0)], ConstraintOp::Ge, -10.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Optimal: y = 0, x = 3?? No: x has cost 1 > 0 so we want x small, but
        // x + y >= 3 and y costs 2: cheapest is x = 3, y = 0 → 3... but x can go
        // to -10 only if y rises to 13 costing 26. So optimum is 3.
        assert_close(sol.objective, 3.0, 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        for i in 0..20 {
            let w = 1.0 + (i as f64) * 1e-9;
            m.add_cons(format!("c{i}"), &[(x, w), (y, 1.0)], ConstraintOp::Le, 10.0);
        }
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 10.0, 1e-5);
    }

    #[test]
    fn transportation_problem() {
        // Classic 2x3 transportation problem with known optimum.
        // Supplies: 20, 30. Demands: 10, 25, 15.
        // Costs: [[2, 3, 1], [5, 4, 8]].
        // Optimal cost: ship s0->d2:15 (15), s0->d0:5 (10), s1->d0:5 (25), s1->d1:25 (100) = 150.
        let mut m = Model::new(Sense::Minimize);
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let mut xs = [[crate::model::VarId(0); 3]; 2];
        for s in 0..2 {
            for d in 0..3 {
                xs[s][d] = m.add_nonneg_var(format!("x{s}{d}"), costs[s][d]);
            }
        }
        let supplies = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        for s in 0..2 {
            let terms: Vec<_> = (0..3).map(|d| (xs[s][d], 1.0)).collect();
            m.add_cons(format!("s{s}"), &terms, ConstraintOp::Le, supplies[s]);
        }
        for d in 0..3 {
            let terms: Vec<_> = (0..2).map(|s| (xs[s][d], 1.0)).collect();
            m.add_cons(format!("d{d}"), &terms, ConstraintOp::Ge, demands[d]);
        }
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 150.0, 1e-5);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_simple_lp() {
        // max 3x + 5y (same as textbook test): primal obj == b'y at optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        let b = [4.0, 12.0, 18.0];
        let dual_obj: f64 = sol.duals.iter().zip(b.iter()).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, sol.objective, 1e-5);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 2.0, 1e-9);
        assert_close(sol.value(y), 3.0, 1e-6);
    }

    #[test]
    fn no_constraints_goes_to_best_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 7.0, 2.0, false);
        let y = m.add_var("y", -3.0, 4.0, -1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 7.0, 1e-9);
        assert_close(sol.value(y), -3.0, 1e-9);
        assert_close(sol.objective, 17.0, 1e-9);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }
}
