//! Bounded-variable primal revised simplex on a sparse LU basis, with a
//! dual-simplex phase 1 and dual warm re-solves.
//!
//! The basis is held as a sparse LU factorization with product-form (eta)
//! updates ([`crate::basis`], Gilbert–Peierls symbolic column solves): each
//! iteration performs one FTRAN (transformed entering column), one or two
//! BTRANs (the pivot row, plus `B⁻ᵀw` for the steepest-edge update), and an
//! `O(nnz)` eta append, with a **fill-aware refactorization** (the eta file is
//! folded back in when its accumulated non-zeros exceed a multiple of the
//! frozen factor size, not after a fixed pivot count).
//!
//! Pricing is **projected steepest edge** (Forrest & Goldfarb): reference
//! weights `γ_j ≈ 1 + ‖B⁻¹a_j‖²` start at 1 when a phase begins and are then
//! maintained *exactly* through every basis change, so the entering column
//! maximizes `d_j²/γ_j` — the best rate of objective change per unit of
//! *edge* length rather than per unit of the entering variable. Reduced costs
//! are maintained incrementally and recomputed at every refresh; optimality
//! is only ever declared after a scan over freshly recomputed reduced costs,
//! so correctness does not rest on the incremental updates. On numerical
//! trouble (a non-finite weight or step) the weights devex-reset to 1 and the
//! reduced costs are recomputed. [`PricingRule::Devex`] keeps the classic
//! devex update as a cross-check mode (the fuzz suite runs both and demands
//! agreement).
//!
//! The primal ratio test is **EXPAND-style** (Gill, Murray, Saunders &
//! Wright): a working feasibility tolerance grows by a tiny increment each
//! iteration, a Harris-style two-pass test picks the numerically largest
//! pivot among the rows blocking within the expanded tolerance, and every
//! pivot takes a strictly positive minimum step. Degenerate vertices therefore
//! cannot cycle and plateau traversal is fast; the accumulated bound drift is
//! bounded by the working tolerance and wiped at every periodic
//! refactorization (bound shifting with periodic reset). The minimum step is
//! the termination guarantee, so there is no Bland fallback any more — on the
//! big ALLTOALL LPs Bland's first-eligible pricing was the stall (1.45M of
//! 1.5M iterations before it was removed).
//!
//! Cold solves run a **dual-simplex phase 1 with cost shifting**: every row's
//! slack starts basic at the row residual (`B = I`, trivially factorizable,
//! artificials pinned at zero), [`crate::dual::make_dual_feasible`] flips or
//! cost-shifts the wrong-signed reduced costs, and the dual simplex walks the
//! out-of-bounds slacks back inside their bounds — reaching a primal-feasible,
//! shifted-dual-optimal vertex that the true-cost phase 2 then certifies.
//! Compared to the artificial-variable primal phase 1 this starts from the
//! feasibility problem's *own* geometry instead of an artificial objective and
//! typically lands next to the optimum. The artificial primal phase 1 is kept
//! as a fallback for numerical failures, and dual unboundedness (a
//! cost-independent Farkas certificate) reports primal infeasibility directly.
//! Warm starts ([`solve_standard_form_from`]) rebuild the caller's basis and
//! re-optimize with the same dual machinery — the hot path for
//! branch-and-bound children.

use crate::basis::{LuFactors, SimplexBasis, VarStatus};
use crate::dual::{self, DualOutcome};
use crate::error::LpError;
use crate::model::Model;
use crate::solution::{Solution, SolveStats, SolveStatus};
use crate::sparse::SparseVec;
use crate::standard::StandardForm;
use teccl_util::budget::{BudgetExceeded, ChargeBatcher, SolveBudget};

/// Outcome of a single simplex phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Reduced-cost tolerance.
pub(crate) const DTOL: f64 = 1e-9;
/// Ratio-test pivot tolerance.
pub(crate) const PIV_TOL: f64 = 1e-9;
/// Bound-feasibility tolerance.
pub(crate) const FEAS_TOL: f64 = 1e-9;
/// Iterations between basic-value / objective refreshes.
pub(crate) const REFRESH_INTERVAL: usize = 256;

/// Entering-column pricing rule for the primal phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Projected steepest edge (Forrest–Goldfarb): reference weights start at
    /// 1 per phase and are maintained exactly through basis changes. The
    /// default; measurably fewer pivots on the degenerate ALLTOALL LPs.
    #[default]
    SteepestEdge,
    /// Classic devex reference weights (the pre-steepest-edge rule), kept as
    /// an independent cross-check for the fuzz agreement suite.
    Devex,
}

/// Tuning knobs for the simplex solve entry points. [`Default`] is what every
/// production caller uses; tests and benches override individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplexOptions {
    /// Entering-column pricing rule.
    pub pricing: PricingRule,
    /// Minimum row count before the anti-degeneracy perturbed phase-2
    /// pre-pass engages on cold solves. Small LPs never stall on degeneracy,
    /// so perturbing them would only add a second (pointless) pass;
    /// `usize::MAX` disables the pre-pass entirely.
    pub perturb_min_rows: usize,
    /// Seed mixed into the deterministic perturbation pattern of the phase-2
    /// pre-pass. `0` reproduces the historical pattern exactly; the LP
    /// portfolio race gives each racer a different seed so they walk
    /// different tie-breaking paths across the same degenerate plateau.
    /// Correctness never rests on the perturbation (the true-cost pass
    /// certifies), so any seed yields the same certified optimum.
    pub perturb_seed: u64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            pricing: PricingRule::SteepestEdge,
            perturb_min_rows: 64,
            perturb_seed: 0,
        }
    }
}
/// EXPAND: per-iteration growth of the working feasibility tolerance, and the
/// scale of the guaranteed minimum step. The tolerance is reset at every
/// refresh, so the accumulated drift stays below
/// `FEAS_TOL + REFRESH_INTERVAL * EXPAND_DELTA` (≈ 2.7e-8), well inside the
/// 1e-6/1e-7 tolerances the rest of the solver uses.
const EXPAND_DELTA: f64 = 1e-10;

/// Internal simplex working state over a standard form plus `m` artificials.
///
/// Columns `0..n` are the standard form's structural + slack columns (accessed
/// by reference — the matrix is never copied per solve); columns `n..n+m` are
/// the artificials, represented implicitly as `art_sign[row] * e_row`.
pub(crate) struct SimplexState<'a> {
    pub(crate) sf: &'a StandardForm,
    pub(crate) n: usize,
    pub(crate) m: usize,
    pub(crate) art_sign: Vec<f64>,
    pub(crate) b: Vec<f64>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) x: Vec<f64>,
    pub(crate) status: Vec<VarStatus>,
    pub(crate) basis: Vec<usize>,
    pub(crate) lu: LuFactors,
    pub(crate) iterations: usize,
    pub(crate) dual_iterations: usize,
    pub(crate) factorizations: usize,
    /// Pricing reference weights, one per column (steepest-edge `γ_j` or
    /// devex weights depending on the active [`PricingRule`]).
    weights: Vec<f64>,
    /// Row-major copy of `sf.a` — for each row, the `(column, value)` pairs
    /// over the structural + slack columns (artificials stay implicit). Built
    /// lazily at the first primal pivot: the per-pivot reduced-cost/weight
    /// update accumulates the pivot row `α = ρᵀA` over the non-zeros of `ρ`
    /// in O(touched entries) instead of dotting `ρ` against every column —
    /// the difference between O(nnz(pivot rows)) and O(ncols · nnz/col) per
    /// iteration, which dominates wall clock on the big ALLTOALL forms.
    /// Pivot-free solves (warm re-certifications) never pay the build.
    rows_a: Option<Vec<Vec<(u32, f64)>>>,
}

/// Solves the LP relaxation of `model` (integrality ignored) with the
/// two-phase simplex and returns the solution in the model's variable space.
pub fn solve_lp(model: &Model) -> Result<Solution, LpError> {
    let sf = StandardForm::from_model(model);
    solve_standard_form(&sf, model.num_vars())
}

/// Solves a prepared [`StandardForm`] from a cold (all-artificial) start.
/// `num_model_vars` is the number of structural variables to report back.
pub fn solve_standard_form(sf: &StandardForm, num_model_vars: usize) -> Result<Solution, LpError> {
    solve_standard_form_from(sf, num_model_vars, &[], None)
}

/// Solves a [`StandardForm`] with per-column bound overrides, optionally
/// warm-started from a previous solve's basis.
///
/// * `overrides` — `(column, lb, ub)` triples replacing the form's bounds
///   (columns are standard-form indices; branch-and-bound uses structural
///   columns only). The matrix and objective are shared, so branch-and-bound
///   never rebuilds the form.
/// * `warm` — a basis returned in [`Solution::basis`] by an earlier solve of
///   the *same* form. The solve then skips phase 1: the basis is
///   refactorized and the **dual simplex** re-optimizes it under the new
///   bounds (boxed columns with wrong-signed reduced costs are flipped, the
///   rest cost-shifted, then dual pivots restore primal feasibility), and a
///   true-cost primal pass certifies. If the basis is stale (wrong shape) or
///   numerically unusable, the solver falls back to a cold start — the
///   result is always correct.
pub fn solve_standard_form_from(
    sf: &StandardForm,
    num_model_vars: usize,
    overrides: &[(usize, f64, f64)],
    warm: Option<&SimplexBasis>,
) -> Result<Solution, LpError> {
    solve_standard_form_budgeted(sf, num_model_vars, overrides, warm, None)
}

/// [`solve_standard_form_from`] with a cooperative [`SolveBudget`] checked
/// once per pivot. When the budget trips mid-phase-2 the solver extracts the
/// current primal-feasible vertex as a `Feasible` solution with
/// [`SolveStats::budget_stop`] set; a budget stop before primal feasibility
/// exists (phase 1, warm dual re-solve) returns [`LpError::Budget`].
pub fn solve_standard_form_budgeted(
    sf: &StandardForm,
    num_model_vars: usize,
    overrides: &[(usize, f64, f64)],
    warm: Option<&SimplexBasis>,
    budget: Option<&SolveBudget>,
) -> Result<Solution, LpError> {
    solve_standard_form_with_options(
        sf,
        num_model_vars,
        overrides,
        warm,
        budget,
        &SimplexOptions::default(),
    )
}

/// [`solve_standard_form_budgeted`] with explicit [`SimplexOptions`]. The
/// other entry points all funnel here with the default options.
pub fn solve_standard_form_with_options(
    sf: &StandardForm,
    num_model_vars: usize,
    overrides: &[(usize, f64, f64)],
    warm: Option<&SimplexBasis>,
    budget: Option<&SolveBudget>,
    opts: &SimplexOptions,
) -> Result<Solution, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();

    let mut lb = sf.lb.clone();
    let mut ub = sf.ub.clone();
    for &(j, lo, hi) in overrides {
        lb[j] = lo;
        ub[j] = hi;
        if lo > hi + FEAS_TOL {
            return Ok(infeasible(num_model_vars, 0));
        }
    }

    // Trivial case: no constraints. Each variable independently moves to the
    // bound that minimizes its cost.
    if m == 0 {
        return Ok(solve_unconstrained(sf, &lb, &ub, num_model_vars));
    }

    let mut wasted = WarmFallback::default();
    if let Some(wb) = warm {
        if wb.basic.len() == m && wb.status.len() == n {
            match try_warm_solve(sf, &lb, &ub, wb, num_model_vars, budget, opts) {
                Ok(sol) => return Ok(sol),
                // A budget stop inside the warm attempt must not silently
                // escalate into a (more expensive) cold start.
                Err(fb) => {
                    if let Some(e) = fb.hard {
                        return Err(e);
                    }
                    // Fall through to a cold start, but keep the work the
                    // failed warm attempt burned so the counters stay honest.
                    wasted = fb;
                }
            }
        }
    }
    let mut sol = cold_solve(sf, &lb, &ub, num_model_vars, budget, opts)?;
    sol.stats.simplex_iterations += wasted.iterations;
    sol.stats.dual_iterations += wasted.dual_iterations;
    sol.stats.factorizations += wasted.factorizations;
    Ok(sol)
}

/// Work performed by a warm-start attempt that had to be abandoned
/// (stale/singular basis or a numerical failure mid-re-solve). A `hard`
/// error (budget exhaustion) aborts the solve instead of going cold.
#[derive(Debug, Default)]
struct WarmFallback {
    iterations: usize,
    dual_iterations: usize,
    factorizations: usize,
    hard: Option<LpError>,
}

fn infeasible(num_model_vars: usize, iterations: usize) -> Solution {
    Solution {
        status: SolveStatus::Infeasible,
        objective: f64::NAN,
        values: vec![0.0; num_model_vars],
        duals: Vec::new(),
        stats: SolveStats {
            simplex_iterations: iterations,
            ..Default::default()
        },
        basis: None,
    }
}

// ---------------------------------------------------------------------------
// Cold path
// ---------------------------------------------------------------------------

fn cold_solve(
    sf: &StandardForm,
    lb: &[f64],
    ub: &[f64],
    num_model_vars: usize,
    budget: Option<&SolveBudget>,
    opts: &SimplexOptions,
) -> Result<Solution, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();
    let max_iters = 200 * (m + n) + 20_000;

    // ---- Dual phase 1 from the forced slack basis. ----
    //
    // Every row's slack starts basic at the row residual, so B = I (always
    // factorizable) and the only infeasibilities are slacks outside their
    // bounds. `make_dual_feasible` absorbs wrong-signed reduced costs by
    // flipping boxed columns / shifting the rest, and the dual simplex then
    // repairs primal feasibility against the *true* (shifted) objective — so
    // it exits next to the real optimum instead of wherever the artificial
    // phase-1 objective happened to land. Dual unboundedness is a
    // cost-independent Farkas certificate of primal infeasibility. Any other
    // failure falls back to the artificial primal phase 1 below, carrying the
    // burned work so the counters stay honest.
    let mut burned = WarmFallback::default();
    match dual_phase1(sf, lb, ub, num_model_vars, budget, opts, max_iters) {
        Ok(Some(sol)) => return Ok(sol),
        Ok(None) => {}
        Err(fb) => {
            if let Some(e) = fb.hard {
                return Err(e);
            }
            burned = fb;
        }
    }

    // ---- Fallback: artificial primal phase 1, then phase 2. ----
    let mut state = build_initial_state(sf, lb, ub, false)?;
    state.iterations += burned.iterations;
    state.dual_iterations += burned.dual_iterations;
    state.factorizations += burned.factorizations;

    // A budget stop here propagates as an error: no primal-feasible point
    // exists yet, so there is no incumbent to hand back.
    let mut phase1_cost = vec![0.0; n + m];
    phase1_cost[n..].fill(1.0);
    let outcome = run_phase(&mut state, &phase1_cost, max_iters, budget, opts.pricing)?;
    // Phase 1 objective is bounded below by zero, so "unbounded" here is a
    // numerical failure.
    if outcome == PhaseOutcome::Unbounded {
        return Err(LpError::Numerical("phase 1 reported unbounded".into()));
    }
    let infeas: f64 = (n..n + m).map(|j| state.x[j].abs()).sum();
    if infeas > 1e-6 {
        let mut sol = infeasible(num_model_vars, state.iterations);
        sol.stats.factorizations = state.factorizations;
        sol.stats.cold_starts = 1;
        return Ok(sol);
    }
    // Fix artificials at zero so they cannot re-enter with a non-zero value.
    for j in n..n + m {
        state.lb[j] = 0.0;
        state.ub[j] = 0.0;
        if state.status[j] != VarStatus::Basic {
            state.x[j] = 0.0;
            state.status[j] = VarStatus::AtLower;
        }
    }

    let mut sol = finish_phase2(&mut state, max_iters, num_model_vars, true, budget, opts)?;
    sol.stats.cold_starts = 1;
    Ok(sol)
}

/// The dual-simplex cold phase 1. `Ok(Some(sol))` is a finished solve
/// (optimal, budget-stopped feasible, or proven infeasible), `Ok(None)` /
/// `Err` without a hard error sends the caller to the artificial primal
/// phase 1 (`Err` carries the work burned here), and a hard error (budget
/// exhaustion mid-dual) aborts the solve.
fn dual_phase1(
    sf: &StandardForm,
    lb: &[f64],
    ub: &[f64],
    num_model_vars: usize,
    budget: Option<&SolveBudget>,
    opts: &SimplexOptions,
    max_iters: usize,
) -> Result<Option<Solution>, WarmFallback> {
    let n = sf.num_cols();
    let m = sf.num_rows();
    let mut state = match build_initial_state(sf, lb, ub, true) {
        Ok(s) => s,
        Err(_) => return Err(WarmFallback::default()),
    };
    let fallback = |state: &SimplexState| WarmFallback {
        iterations: state.iterations,
        dual_iterations: state.dual_iterations,
        factorizations: state.factorizations,
        hard: None,
    };
    let mut cost = vec![0.0; n + m];
    cost[..n].copy_from_slice(&sf.c);
    let d = match dual::make_dual_feasible(&mut state, &mut cost) {
        Ok(d) => d,
        Err(_) => return Err(fallback(&state)),
    };
    // The dual simplex excels at *repairing* primal feasibility — few rows
    // out of bounds, each fixed in a handful of pivots. When the flips above
    // push a large fraction of the rows out of bounds at once (the shape of
    // every big ALLTOALL LP form: masses of boxed columns whose costs all
    // pull the same way), the dual walk is so degenerate it can stall for
    // hundreds of thousands of iterations while the primal fallback finishes
    // in thousands. Gate on the infeasibility count, and cap the pivots the
    // dual may burn before conceding, so the detour stays O(m) either way.
    let infeasible_rows = (0..m)
        .filter(|&r| {
            let bvar = state.basis[r];
            state.x[bvar] < state.lb[bvar] - dual::PRIMAL_FEAS_TOL
                || state.x[bvar] > state.ub[bvar] + dual::PRIMAL_FEAS_TOL
        })
        .count();
    if infeasible_rows * 4 > m {
        return Err(fallback(&state));
    }
    let dual_cap = (4 * m + 1_000).min(max_iters);
    let dual_res = dual::dual_simplex(&mut state, &cost, d, dual_cap, budget);
    if std::env::var_os("TECCL_LP_TRACE").is_some() {
        eprintln!(
            "[lp-trace] dual phase1: infeas_rows={infeasible_rows}/{m} iters={} dual={} err={}",
            state.iterations,
            state.dual_iterations,
            dual_res.is_err()
        );
    }
    match dual_res {
        Ok(DualOutcome::Optimal) => {}
        Ok(DualOutcome::Infeasible) => {
            let mut sol = infeasible(num_model_vars, state.iterations);
            sol.stats.dual_iterations = state.dual_iterations;
            sol.stats.factorizations = state.factorizations;
            sol.stats.cold_starts = 1;
            return Ok(Some(sol));
        }
        // A budget stop mid-dual has no primal-feasible point to hand back,
        // and restarting with artificials would only burn more of an
        // exhausted budget — abort the solve.
        Err(e @ LpError::Budget(_)) => {
            let mut fb = fallback(&state);
            fb.hard = Some(e);
            return Err(fb);
        }
        Err(_) => return Err(fallback(&state)),
    }
    match finish_phase2(&mut state, max_iters, num_model_vars, true, budget, opts) {
        Ok(mut sol) => {
            sol.stats.cold_starts = 1;
            Ok(Some(sol))
        }
        Err(LpError::Budget(e)) => {
            let mut fb = fallback(&state);
            fb.hard = Some(LpError::Budget(e));
            Err(fb)
        }
        Err(_) => Err(fallback(&state)),
    }
}

/// Builds the initial cold-start state: non-basic structural columns at a
/// finite bound (or 0 if free) and a **crash slack basis** — each row whose
/// residual fits inside its slack's bounds starts with the slack basic (no
/// phase-1 work at all for that row); only rows the slack cannot absorb get a
/// basic artificial. Freed rows (presolve relaxes their slack to
/// `(-inf, +inf)`) therefore never contribute phase-1 infeasibility.
///
/// With `force_slack` set, *every* row's slack starts basic at the residual —
/// even outside its own bounds — and every artificial is pinned at zero. The
/// basis is then exactly the identity (always factorizable) and the
/// out-of-bounds slacks are the primal infeasibilities the dual phase 1
/// repairs.
fn build_initial_state<'a>(
    sf: &'a StandardForm,
    lb_in: &[f64],
    ub_in: &[f64],
    force_slack: bool,
) -> Result<SimplexState<'a>, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();

    let mut lb = lb_in.to_vec();
    let mut ub = ub_in.to_vec();
    let mut x = vec![0.0; n + m];
    let mut status = vec![VarStatus::AtLower; n + m];

    for j in 0..n {
        if lb[j].is_finite() {
            x[j] = lb[j];
            status[j] = VarStatus::AtLower;
        } else if ub[j].is_finite() {
            x[j] = ub[j];
            status[j] = VarStatus::AtUpper;
        } else {
            x[j] = 0.0;
            status[j] = VarStatus::Free;
        }
    }

    // Residual each row's basic column must absorb. Slack columns sit at 0 in
    // `x` here; a slack chosen as the crash basic column is moved off its
    // bound to the residual below, which keeps `A x = b` exact.
    let ax = sf.a.mul_dense(&x[..n]);
    let mut art_sign = vec![1.0; m];
    let mut basis = Vec::with_capacity(m);
    for i in 0..m {
        let r = sf.b[i] - ax[i];
        let slack = sf.num_structural + i;
        let j = n + i;
        // The slack column is exactly `e_i`, so putting it basic with value
        // `x[slack] + r` keeps the start point consistent; admissible when
        // that value respects the slack's bounds. (The slack of a `<=` row
        // absorbs any r >= 0, a freed row's slack absorbs anything.)
        let crash = x[slack] + r;
        if force_slack || (crash >= lb[slack] - FEAS_TOL && crash <= ub[slack] + FEAS_TOL) {
            x[slack] = crash;
            status[slack] = VarStatus::Basic;
            basis.push(slack);
            // The artificial is never needed: pin it at zero, non-basic.
            lb.push(0.0);
            ub.push(0.0);
            x[j] = 0.0;
            status[j] = VarStatus::AtLower;
        } else {
            art_sign[i] = if r >= 0.0 { 1.0 } else { -1.0 };
            lb.push(0.0);
            ub.push(f64::INFINITY);
            x[j] = r.abs();
            status[j] = VarStatus::Basic;
            basis.push(j);
        }
    }

    let mut state = SimplexState {
        sf,
        n,
        m,
        art_sign,
        b: sf.b.clone(),
        lb,
        ub,
        x,
        status,
        basis,
        lu: LuFactors::factorize(0, &[])?,
        iterations: 0,
        dual_iterations: 0,
        factorizations: 0,
        weights: vec![1.0; n + m],
        rows_a: None,
    };
    state.refactorize()?;
    Ok(state)
}

// ---------------------------------------------------------------------------
// Warm path
// ---------------------------------------------------------------------------

fn try_warm_solve(
    sf: &StandardForm,
    lb_in: &[f64],
    ub_in: &[f64],
    warm: &SimplexBasis,
    num_model_vars: usize,
    budget: Option<&SolveBudget>,
    opts: &SimplexOptions,
) -> Result<Solution, WarmFallback> {
    let m = sf.num_rows();
    let n = sf.num_cols();
    let max_iters = 200 * (m + n) + 20_000;

    // Validate the warm basis: m distinct columns in range.
    let mut seen = vec![false; n + m];
    for &j in &warm.basic {
        if j >= n + m || seen[j] {
            return Err(WarmFallback::default()); // stale basis, no work done
        }
        seen[j] = true;
    }

    let mut lb = lb_in.to_vec();
    let mut ub = ub_in.to_vec();
    // Artificial columns: reconstructed with sign +1 and pinned to zero (they
    // only linger in degenerate bases; pinning keeps them out of pricing).
    lb.extend(std::iter::repeat_n(0.0, m));
    ub.extend(std::iter::repeat_n(0.0, m));

    let mut x = vec![0.0; n + m];
    let mut status = vec![VarStatus::AtLower; n + m];
    for (st, &ws) in status.iter_mut().zip(warm.status.iter()) {
        *st = match ws {
            VarStatus::Basic => VarStatus::AtLower, // fixed up from `basic` below
            s => s,
        };
    }
    for &j in &warm.basic {
        status[j] = VarStatus::Basic;
    }
    // Place non-basic columns on a bound consistent with the (possibly
    // changed) bounds.
    for j in 0..n + m {
        if status[j] == VarStatus::Basic {
            continue;
        }
        let (lo, hi) = (lb[j], ub[j]);
        let s = match status[j] {
            VarStatus::AtLower if lo.is_finite() => VarStatus::AtLower,
            VarStatus::AtUpper if hi.is_finite() => VarStatus::AtUpper,
            _ if lo.is_finite() => VarStatus::AtLower,
            _ if hi.is_finite() => VarStatus::AtUpper,
            _ => VarStatus::Free,
        };
        status[j] = s;
        x[j] = match s {
            VarStatus::AtLower => lo,
            VarStatus::AtUpper => hi,
            _ => 0.0,
        };
    }

    let empty_lu = LuFactors::factorize(0, &[]).map_err(|_| WarmFallback::default())?;
    let mut state = SimplexState {
        sf,
        n,
        m,
        art_sign: vec![1.0; m],
        b: sf.b.clone(),
        lb,
        ub,
        x,
        status,
        basis: warm.basic.clone(),
        lu: empty_lu,
        iterations: 0,
        dual_iterations: 0,
        factorizations: 0,
        weights: vec![1.0; n + m],
        rows_a: None,
    };
    let fallback = |state: &SimplexState| WarmFallback {
        iterations: state.iterations,
        dual_iterations: state.dual_iterations,
        factorizations: state.factorizations,
        hard: None,
    };
    if state.refactorize().is_err() {
        // Singular warm basis -> caller goes cold.
        return Err(fallback(&state));
    }
    state.recompute_basic_values();

    // ---- Dual re-optimization (replaces phase 1 / primal repair). ----
    //
    // A parent-optimal basis stays *dual* feasible when only bounds changed,
    // so the dual simplex drives the (few) out-of-bound basic variables back
    // inside their bounds while keeping reduced costs correctly signed. Costs
    // that did change (cross-round warm starts) are absorbed by bound-flipping
    // boxed columns and temporarily shifting the rest; the final primal pass
    // below re-certifies against the true objective either way.
    // Fast path: if no basic variable violates its (new) bounds beyond the
    // tolerance the dual itself enforces, the basis is already primal
    // feasible — the true-cost primal pass below re-certifies (or finishes)
    // directly, with no dual pricing scan at all. This is the common B&B
    // case of tightening a bound the optimum was not sitting on.
    let primal_feasible = state.basis.iter().all(|&j| {
        state.x[j] >= state.lb[j] - dual::PRIMAL_FEAS_TOL
            && state.x[j] <= state.ub[j] + dual::PRIMAL_FEAS_TOL
    });
    if !primal_feasible {
        let mut cost = vec![0.0; n + m];
        cost[..n].copy_from_slice(&sf.c);
        let d = match dual::make_dual_feasible(&mut state, &mut cost) {
            Ok(d) => d,
            Err(_) => return Err(fallback(&state)),
        };
        match dual::dual_simplex(&mut state, &cost, d, max_iters, budget) {
            Ok(DualOutcome::Optimal) => {}
            Ok(DualOutcome::Infeasible) => {
                let mut sol = infeasible(num_model_vars, state.iterations);
                sol.stats.factorizations = state.factorizations;
                sol.stats.dual_iterations = state.dual_iterations;
                sol.stats.warm_starts = 1;
                return Ok(sol);
            }
            // A budget stop mid-dual has no primal-feasible point to hand
            // back, and a cold restart would only burn more of an exhausted
            // budget — abort the solve instead of falling back.
            Err(e @ LpError::Budget(_)) => {
                let mut fb = fallback(&state);
                fb.hard = Some(e);
                return Err(fb);
            }
            Err(_) => return Err(fallback(&state)),
        }
    }

    // Certify with the true costs (the dual may have run against shifted
    // costs; the basis it leaves behind is primal feasible, so phase 2 needs
    // no perturbation pre-pass and typically terminates in one pricing scan).
    match finish_phase2(&mut state, max_iters, num_model_vars, false, budget, opts) {
        Ok(mut sol) => {
            sol.stats.warm_starts = 1;
            Ok(sol)
        }
        Err(_) => Err(fallback(&state)),
    }
}

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

/// Runs phase 2 on a primal-feasible state and extracts the solution.
///
/// `perturb` enables the anti-degeneracy perturbed pre-pass on large LPs;
/// warm re-solves arriving from the dual simplex pass `false` (they are
/// already at or next to the optimum, so tie-breaking would only cost time).
fn finish_phase2(
    state: &mut SimplexState,
    max_iters: usize,
    num_model_vars: usize,
    perturb: bool,
    budget: Option<&SolveBudget>,
    opts: &SimplexOptions,
) -> Result<Solution, LpError> {
    let sf = state.sf;
    let n = state.n;
    let m = state.m;
    let mut iteration_limit_hit = false;
    let mut budget_stop: Option<BudgetExceeded> = None;
    let mut phase2_cost = vec![0.0; n + m];
    phase2_cost[..n].copy_from_slice(&sf.c);
    // Large TE-CCL objectives are near-degenerate (masses of alternate
    // optima), which stalls pricing for thousands of iterations. A first pass
    // against deterministically perturbed costs breaks those ties; the pass
    // with the true costs then certifies optimality, so correctness never
    // rests on the perturbation. (Phase 1 is left unperturbed: its artificial
    // objective is what drives feasibility.)
    if perturb && m > opts.perturb_min_rows {
        let mut pcost = phase2_cost.clone();
        for (j, c) in pcost.iter_mut().enumerate().take(n) {
            // XOR keeps seed 0 byte-identical to the historical pattern.
            let h = ((j as u64) ^ opts.perturb_seed).wrapping_mul(0x9e3779b97f4a7c15);
            let r = 1.0 + (h >> 40) as f64 / (1u64 << 24) as f64;
            *c += 1e-7 * r * (1.0 + c.abs());
        }
        // The pre-pass is purely an accelerator: a perturbed "unbounded" ray
        // may not be profitable under the real costs, and even an iteration
        // limit here just means the true-cost pass starts from wherever the
        // perturbed walk got to (still primal feasible). An exhausted budget
        // is still recorded so callers can flag the row as uncertified.
        match run_phase(state, &pcost, max_iters, budget, opts.pricing) {
            Ok(_) => {}
            Err(LpError::IterationLimit(_)) => iteration_limit_hit = true,
            Err(LpError::Budget(cause)) => budget_stop = Some(cause),
            Err(e) => return Err(e),
        }
    }
    // Phase 2 preserves primal feasibility, so a budget stop anywhere past
    // this point still has a feasible vertex to hand back: skip (or abandon)
    // the true-cost pass and extract the incumbent as `Feasible`. The
    // skipped certify pass still charges the budget for the extraction work
    // below (refactorize + recompute), so an exhausted-budget walk cannot
    // exit the solver without its cleanup being accounted for.
    let outcome = if budget_stop.is_some() {
        if let Some(b) = budget {
            let _ = b.charge(1);
        }
        PhaseOutcome::Optimal
    } else {
        match run_phase(state, &phase2_cost, max_iters, budget, opts.pricing) {
            Ok(o) => o,
            Err(LpError::Budget(cause)) => {
                budget_stop = Some(cause);
                PhaseOutcome::Optimal
            }
            Err(e) => return Err(e),
        }
    };
    // Restore an exactly consistent vertex: the EXPAND ratio test lets basic
    // values drift within the working tolerance; recomputing them from the
    // (exactly on-bound) non-basic values wipes that drift before extraction.
    // A non-empty eta file is the witness that pivots happened since the last
    // refactorization — pivot-free solves (warm re-certifications) skip the
    // extra factorization entirely.
    if state.lu.eta_count() > 0 {
        state.refactorize()?;
        state.recompute_basic_values();
    }
    let stats = SolveStats {
        simplex_iterations: state.iterations,
        dual_iterations: state.dual_iterations,
        factorizations: state.factorizations,
        iteration_limit_hit,
        budget_stop,
        ..Default::default()
    };
    if outcome == PhaseOutcome::Unbounded {
        return Ok(Solution {
            status: SolveStatus::Unbounded,
            objective: f64::NAN,
            values: vec![0.0; num_model_vars],
            duals: Vec::new(),
            stats,
            basis: None,
        });
    }

    // Extract the solution.
    let min_obj: f64 = (0..n).map(|j| sf.c[j] * state.x[j]).sum();
    let objective = sf.original_objective(min_obj);
    let values: Vec<f64> = (0..num_model_vars)
        .map(|j| clamp_bound_noise(state.x[j], state.lb[j], state.ub[j]))
        .collect();

    // Dual values: y = c_B * B^{-1}, reported in the original sense.
    let mut y: Vec<f64> = state.basis.iter().map(|&j| phase2_cost[j]).collect();
    state.lu.btran(&mut y);
    let duals: Vec<f64> = y.iter().map(|v| sf.obj_sign * v).collect();

    let basis = SimplexBasis {
        basic: state.basis.clone(),
        status: state.status[..n].to_vec(),
    };

    // A budget-stopped extraction is a feasible vertex, not a certified
    // optimum: report `Feasible` and claim no dual bound.
    let (status, best_bound) = if budget_stop.is_some() {
        (SolveStatus::Feasible, f64::NAN)
    } else {
        (SolveStatus::Optimal, objective)
    };
    Ok(Solution {
        status,
        objective,
        values,
        duals,
        stats: SolveStats {
            best_bound,
            ..stats
        },
        basis: Some(basis),
    })
}

/// Rounds values that drifted a hair outside their bounds back onto the bound.
fn clamp_bound_noise(x: f64, lb: f64, ub: f64) -> f64 {
    if x < lb {
        lb
    } else if x > ub {
        ub
    } else if (x - lb).abs() < 1e-11 {
        lb
    } else if ub.is_finite() && (x - ub).abs() < 1e-11 {
        ub
    } else {
        x
    }
}

/// Solves the degenerate "no constraints" case.
fn solve_unconstrained(
    sf: &StandardForm,
    lb: &[f64],
    ub: &[f64],
    num_model_vars: usize,
) -> Solution {
    let n = sf.num_cols();
    let mut values = vec![0.0; n];
    for j in 0..n {
        let c = sf.c[j];
        if c > 0.0 {
            if lb[j].is_finite() {
                values[j] = lb[j];
            } else {
                return unbounded_solution(num_model_vars);
            }
        } else if c < 0.0 {
            if ub[j].is_finite() {
                values[j] = ub[j];
            } else {
                return unbounded_solution(num_model_vars);
            }
        } else {
            values[j] = if lb[j].is_finite() {
                lb[j]
            } else if ub[j].is_finite() {
                ub[j]
            } else {
                0.0
            };
        }
    }
    let min_obj: f64 = (0..n).map(|j| sf.c[j] * values[j]).sum();
    Solution {
        status: SolveStatus::Optimal,
        objective: sf.original_objective(min_obj),
        values: values[..num_model_vars].to_vec(),
        duals: Vec::new(),
        stats: Default::default(),
        basis: None,
    }
}

fn unbounded_solution(num_model_vars: usize) -> Solution {
    Solution {
        status: SolveStatus::Unbounded,
        objective: f64::NAN,
        values: vec![0.0; num_model_vars],
        duals: Vec::new(),
        stats: Default::default(),
        basis: None,
    }
}

impl<'a> SimplexState<'a> {
    /// Reduced-cost helper: `cost[j] - y · A_j` without materializing columns.
    pub(crate) fn price_col(&self, j: usize, cost_j: f64, y: &[f64]) -> f64 {
        if j < self.n {
            cost_j - self.sf.a.col(j).dot_dense(y)
        } else {
            cost_j - y[j - self.n] * self.art_sign[j - self.n]
        }
    }

    /// `w = B⁻¹ A_j` for any column (structural, slack, or artificial),
    /// written into the caller's reusable buffer.
    pub(crate) fn ftran_col_into(&mut self, j: usize, w: &mut Vec<f64>) {
        w.clear();
        w.resize(self.m, 0.0);
        if j < self.n {
            for (i, v) in self.sf.a.col(j).iter() {
                w[i] += v;
            }
        } else {
            w[j - self.n] += self.art_sign[j - self.n];
        }
        self.lu.ftran(w);
    }

    /// Builds the row-major copy of the constraint matrix on first use (see
    /// the field docs on [`SimplexState::rows_a`]).
    pub(crate) fn ensure_row_major(&mut self) {
        if self.rows_a.is_some() {
            return;
        }
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.m];
        for (j, col) in self.sf.a.cols.iter().enumerate() {
            for (i, v) in col.iter() {
                rows[i].push((j as u32, v));
            }
        }
        self.rows_a = Some(rows);
    }

    /// `rho · A_j` — one entry of a tableau row, given `rho = B⁻ᵀ e_r`.
    pub(crate) fn row_dot_col(&self, j: usize, rho: &[f64]) -> f64 {
        if j < self.n {
            self.sf.a.col(j).dot_dense(rho)
        } else {
            rho[j - self.n] * self.art_sign[j - self.n]
        }
    }

    /// `(rho · A_j, tau · A_j)` in one traversal of the column's entries —
    /// the steepest-edge pivot update needs both, and loading each index
    /// pair once instead of twice matters on the big dense-ρ pivots.
    pub(crate) fn row_dot_col2(&self, j: usize, rho: &[f64], tau: &[f64]) -> (f64, f64) {
        if j < self.n {
            let mut a = 0.0;
            let mut g = 0.0;
            for (i, v) in self.sf.a.cols[j].iter() {
                a += rho[i] * v;
                g += tau[i] * v;
            }
            (a, g)
        } else {
            let i = j - self.n;
            (rho[i] * self.art_sign[i], tau[i] * self.art_sign[i])
        }
    }

    /// A materialized basis column (used only when refactorizing).
    fn basis_col(&self, j: usize) -> SparseVec {
        if j < self.n {
            self.sf.a.col(j).clone()
        } else {
            SparseVec::from_pairs(&[(j - self.n, self.art_sign[j - self.n])])
        }
    }

    pub(crate) fn refactorize(&mut self) -> Result<(), LpError> {
        let cols: Vec<SparseVec> = self.basis.iter().map(|&j| self.basis_col(j)).collect();
        self.lu = LuFactors::factorize(self.m, &cols)?;
        self.factorizations += 1;
        Ok(())
    }

    /// Recomputes the values of the basic variables as `B⁻¹ (b - A_N x_N)`.
    pub(crate) fn recompute_basic_values(&mut self) {
        let mut rhs = self.b.clone();
        for j in 0..self.n + self.m {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let xj = self.x[j];
            if xj == 0.0 {
                continue;
            }
            if j < self.n {
                for (i, v) in self.sf.a.col(j).iter() {
                    rhs[i] -= v * xj;
                }
            } else {
                rhs[j - self.n] -= self.art_sign[j - self.n] * xj;
            }
        }
        self.lu.ftran(&mut rhs);
        for (r, &v) in rhs.iter().enumerate() {
            self.x[self.basis[r]] = v;
        }
    }

    /// Eligibility of a non-basic column under reduced cost `d`: the movement
    /// direction if profitable, `None` otherwise.
    fn eligible_dir(&self, j: usize, d: f64) -> Option<f64> {
        if self.ub[j] - self.lb[j] < DTOL {
            return None; // fixed columns can never usefully enter
        }
        match self.status[j] {
            VarStatus::Basic => None,
            VarStatus::AtLower => (d < -DTOL).then_some(1.0),
            VarStatus::AtUpper => (d > DTOL).then_some(-1.0),
            VarStatus::Free => {
                if d < -DTOL {
                    Some(1.0)
                } else if d > DTOL {
                    Some(-1.0)
                } else {
                    None
                }
            }
        }
    }
}

/// Runs simplex iterations for one phase with the given cost vector.
fn run_phase(
    state: &mut SimplexState,
    cost: &[f64],
    max_iters: usize,
    budget: Option<&SolveBudget>,
    pricing: PricingRule,
) -> Result<PhaseOutcome, LpError> {
    let m = state.m;
    let ncols = state.n + state.m;

    // No Bland fallback and no stall heuristics: the EXPAND minimum step
    // makes every pivot strictly improving, which is the anti-cycling
    // guarantee Bland used to provide — without its glacial first-eligible
    // pricing (measured on internal1(2) ALLTOALL 16 MB: the Bland fallback
    // burned 1.45M of 1.5M iterations before this change).
    let mut local_iters = 0usize;
    // EXPAND working tolerance: grows every iteration, reset at each refresh
    // (the refresh recomputes the basic values, wiping accumulated drift).
    let mut tol_work = FEAS_TOL;

    // Fresh pricing reference framework per phase: γ_j = 1 says "the current
    // basis is the reference" — the steepest-edge updates below then keep
    // each γ_j exactly equal to 1 + ‖B⁻¹a_j‖² measured in that reference.
    for g in state.weights.iter_mut() {
        *g = 1.0;
    }

    // Reduced costs over all columns, maintained incrementally across pivots
    // and recomputed from scratch (`d_fresh`) at every refresh and before
    // optimality can be declared.
    let mut d = vec![0.0; ncols];
    let mut y: Vec<f64> = Vec::with_capacity(m);
    let recompute_d = |state: &mut SimplexState, d: &mut [f64], y: &mut Vec<f64>| {
        y.clear();
        y.extend(state.basis.iter().map(|&j| cost[j]));
        state.lu.btran(y);
        for j in 0..ncols {
            d[j] = if state.status[j] == VarStatus::Basic {
                0.0
            } else {
                state.price_col(j, cost[j], y)
            };
        }
    };
    recompute_d(state, &mut d, &mut y);
    let mut d_fresh = true;

    // Hot-loop buffers, allocated once per phase and reused every iteration.
    let mut w: Vec<f64> = Vec::with_capacity(m);
    let mut rho: Vec<f64> = Vec::with_capacity(m);
    let mut tau: Vec<f64> = Vec::with_capacity(m);
    // Sparse pivot-row scratch: dense accumulators indexed by column plus the
    // list of columns actually touched this pivot (cleared after each use, so
    // the per-pivot cost is proportional to the touched set, not ncols).
    let mut alpha: Vec<f64> = vec![0.0; ncols];
    let mut amark: Vec<bool> = vec![false; ncols];
    let mut touched: Vec<u32> = Vec::with_capacity(256);
    // Pricing candidates: every non-basic column that can move (see the scan
    // below for the maintenance protocol).
    let mut active: Vec<u32> = (0..ncols)
        .filter(|&j| state.status[j] != VarStatus::Basic && state.ub[j] - state.lb[j] >= DTOL)
        .map(|j| j as u32)
        .collect();

    let trace = std::env::var_os("TECCL_LP_TRACE").is_some();
    let mut rescans = 0usize;
    let mut flip_iters = 0usize;
    let mut degen_iters = 0usize;
    // Per-component wall clock (trace only): where an iteration's time goes.
    let clk = |on: bool| on.then(std::time::Instant::now);
    let lap = |acc: &mut f64, t0: Option<std::time::Instant>| {
        if let Some(t0) = t0 {
            *acc += t0.elapsed().as_secs_f64();
        }
    };
    let (mut t_refresh, mut t_scan, mut t_ftran, mut t_ratio, mut t_btran, mut t_upd, mut t_eta) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);

    // Batched budget accounting: the shared counter's `fetch_add` would
    // serialize every parallel worker's pivot loop on one cache line, so
    // pivots are tallied locally and flushed every 64 (early when the
    // iteration cap is near). The batcher still loads the cancel flag on
    // every pivot — cancellation latency is unchanged; only deadline trips
    // coarsen to the flush granularity.
    let mut charge_batch = ChargeBatcher::new(budget);

    loop {
        if local_iters > max_iters {
            if trace {
                eprintln!(
                    "[lp-trace] ITERLIMIT: iters={local_iters} rescans={rescans} \
flips={flip_iters} degen={degen_iters} m={m} ncols={ncols}"
                );
                eprintln!(
                    "[lp-trace] timers: refresh={t_refresh:.2}s scan={t_scan:.2}s \
ftran={t_ftran:.2}s ratio={t_ratio:.2}s btran={t_btran:.2}s upd={t_upd:.2}s eta={t_eta:.2}s"
                );
            }
            let _ = charge_batch.flush();
            return Err(LpError::IterationLimit(max_iters));
        }
        // Cooperative cancellation: one check per pivot, so a cancel or an
        // expired deadline interrupts the solve within a single iteration.
        if let Err(cause) = charge_batch.charge() {
            return Err(LpError::Budget(cause));
        }
        local_iters += 1;
        state.iterations += 1;
        tol_work += EXPAND_DELTA;

        // Periodic refresh: refactorize (folding the eta file back in) and
        // recompute the basic values from the fresh factors — bounding
        // floating-point drift and resetting the EXPAND tolerance expansion.
        // The reduced costs are recomputed too, wiping incremental drift.
        if local_iters.is_multiple_of(REFRESH_INTERVAL) || state.lu.needs_refactor() {
            let t0 = clk(trace);
            state.refactorize()?;
            state.recompute_basic_values();
            recompute_d(state, &mut d, &mut y);
            d_fresh = true;
            tol_work = FEAS_TOL;
            // Leaving columns append at the tail, so over thousands of pivots
            // the pricing list drifts out of ascending order and the scan's
            // `d`/`weights` loads lose their sequential prefetch. Restoring
            // sorted order here costs ~O(n log n) once per refresh.
            active.sort_unstable();
            lap(&mut t_refresh, t0);
        }

        // ---- Pricing: full scan over the maintained reduced costs, best
        // d²/γ wins. Optimality is only ever declared on *fresh* reduced
        // costs, so correctness never rests on the incremental updates.
        //
        // The scan walks the maintained `active` list — every non-basic
        // column whose range clears DTOL — instead of all of `ncols`, so
        // basic and presolve-pinned columns never cost a bounds load.
        // Columns that entered the basis since the last scan are compacted
        // out in place; leaving columns are pushed back at pivot time.
        // Bounds are immutable within a phase, so list membership only ever
        // changes through basis status. ----
        let scan =
            |state: &SimplexState, d: &[f64], active: &mut Vec<u32>| -> Option<(usize, f64, f64)> {
                let mut best: Option<(usize, f64, f64, f64)> = None; // (j, d, dir, score)
                let mut keep = 0usize;
                for idx in 0..active.len() {
                    let j = active[idx] as usize;
                    if state.status[j] == VarStatus::Basic {
                        continue; // entered the basis since the last scan
                    }
                    active[keep] = active[idx];
                    keep += 1;
                    let dj = d[j];
                    if let Some(dir) = state.eligible_dir(j, dj) {
                        let score = dj * dj / state.weights[j];
                        // Ties break toward the lowest column index — the list is
                        // not kept sorted (leaving columns append at the tail),
                        // and without the explicit tie-break the pivot sequence
                        // would depend on list order.
                        if best.is_none_or(|(bj, _, _, bs)| score > bs || (score == bs && j < bj)) {
                            best = Some((j, dj, dir, score));
                        }
                    }
                }
                active.truncate(keep);
                best.map(|(j, dj, dir, _)| (j, dj, dir))
            };
        let t0 = clk(trace);
        let mut entering = scan(state, &d, &mut active);
        if entering.is_none() && !d_fresh {
            rescans += 1;
            recompute_d(state, &mut d, &mut y);
            d_fresh = true;
            entering = scan(state, &d, &mut active);
        }
        lap(&mut t_scan, t0);

        let (enter, d_enter, dir) = match entering {
            None => {
                if trace {
                    eprintln!(
                        "[lp-trace] phase done: iters={local_iters} rescans={rescans} \
flips={flip_iters} degen={degen_iters} m={m} ncols={ncols}"
                    );
                    eprintln!(
                        "[lp-trace] timers: refresh={t_refresh:.2}s scan={t_scan:.2}s \
ftran={t_ftran:.2}s ratio={t_ratio:.2}s btran={t_btran:.2}s upd={t_upd:.2}s eta={t_eta:.2}s"
                    );
                }
                let _ = charge_batch.flush();
                return Ok(PhaseOutcome::Optimal);
            }
            Some(e) => e,
        };

        // Transformed column w = B⁻¹ A_enter.
        let t0 = clk(trace);
        state.ftran_col_into(enter, &mut w);
        lap(&mut t_ftran, t0);

        // EXPAND / Harris two-pass ratio test. The entering variable moves by
        // `t >= 0` in direction `dir`; the basic variable in row r changes at
        // rate `-dir * w[r]`.
        //
        // Pass 1 computes the largest step `t_exp` at which every blocking
        // basic variable stays within `tol_work` of its bound. Pass 2 picks,
        // among the rows whose *true* ratio fits under `t_exp`, the one with
        // the numerically largest pivot.
        // The chosen step is bounded below by `EXPAND_DELTA / |pivot|`, so
        // every iteration strictly improves the objective — degenerate
        // vertices cannot cycle — at the price of bound drift that stays
        // under `tol_work` and is wiped at the next refresh.
        let t0 = clk(trace);
        let own_range = state.ub[enter] - state.lb[enter]; // may be inf
                                                           // Room a blocking row has before its bound in the movement direction,
                                                           // `None` when the row does not block (shared by both passes so the
                                                           // expanded and true ratio tests can never desynchronize).
        let blocking_room = |r: usize, w: &[f64]| -> Option<(f64, f64)> {
            let rate = -dir * w[r];
            let bvar = state.basis[r];
            if rate < -PIV_TOL {
                state.lb[bvar]
                    .is_finite()
                    .then(|| (state.x[bvar] - state.lb[bvar], rate))
            } else if rate > PIV_TOL {
                state.ub[bvar]
                    .is_finite()
                    .then(|| (state.ub[bvar] - state.x[bvar], rate))
            } else {
                None
            }
        };
        let mut t_exp = if own_range.is_finite() {
            own_range + tol_work
        } else {
            f64::INFINITY
        };
        for r in 0..m {
            if let Some((room, rate)) = blocking_room(r, &w) {
                let t = (room + tol_work).max(0.0) / rate.abs();
                if t < t_exp {
                    t_exp = t;
                }
            }
        }

        let mut leave_row: Option<(usize, f64)> = None; // (row, true ratio)
        if t_exp.is_finite() {
            for r in 0..m {
                if let Some((room, rate)) = blocking_room(r, &w) {
                    let t = room.max(0.0) / rate.abs();
                    if t <= t_exp && leave_row.is_none_or(|(cur, _)| w[r].abs() > w[cur].abs()) {
                        leave_row = Some((r, t));
                    }
                }
            }
        }

        // Decide between a basis pivot and a bound flip of the entering
        // column; an unbounded ray is the remaining case.
        let (t, pivot_row) = match leave_row {
            Some((r, t_true)) => {
                // Strictly positive minimum step (the EXPAND anti-cycling
                // guarantee), capped at `t_exp`: past that cap, rows outside
                // the pass-2 set would overshoot their bounds by more than
                // the working tolerance (a near-PIV_TOL pivot would otherwise
                // inflate the minimum step arbitrarily and break the drift
                // bound the module documents).
                let t = t_true
                    .max(EXPAND_DELTA / w[r].abs().max(PIV_TOL))
                    .min(t_exp);
                if own_range <= t {
                    (own_range, None) // the entering column flips first
                } else {
                    (t, Some(r))
                }
            }
            None => {
                if !own_range.is_finite() {
                    let _ = charge_batch.flush();
                    return Ok(PhaseOutcome::Unbounded);
                }
                (own_range, None)
            }
        };

        // Apply the step to all basic variables and the entering variable.
        for (r, &wr) in w.iter().enumerate().take(m) {
            let bvar = state.basis[r];
            state.x[bvar] += -dir * wr * t;
        }
        state.x[enter] += dir * t;
        lap(&mut t_ratio, t0);
        if t < 1e-9 {
            degen_iters += 1;
        }

        match pivot_row {
            None => {
                flip_iters += 1;
                // Bound flip: the entering variable traversed its whole range.
                state.status[enter] = if dir > 0.0 {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                state.x[enter] = if dir > 0.0 {
                    state.ub[enter]
                } else {
                    state.lb[enter]
                };
            }
            Some(r) => {
                let leaving = state.basis[r];
                debug_assert_ne!(leaving, enter);
                let rate = -dir * w[r];
                // Snap the leaving variable onto the bound it reached (any
                // overshoot from the minimum step lands on the other basic
                // variables, bounded by `tol_work`).
                if rate < 0.0 {
                    state.x[leaving] = state.lb[leaving];
                    state.status[leaving] = VarStatus::AtLower;
                } else {
                    state.x[leaving] = state.ub[leaving];
                    state.status[leaving] = VarStatus::AtUpper;
                }
                state.basis[r] = enter;
                state.status[enter] = VarStatus::Basic;
                // The leaving column is non-basic again: put it back in the
                // pricing list (the entering one is compacted out lazily at
                // the next scan). A zero-range column can never re-enter.
                if state.ub[leaving] - state.lb[leaving] >= DTOL {
                    active.push(leaving as u32);
                }

                // ---- Weight + reduced-cost updates (one pass over the
                // non-basic columns, all against the *pre-pivot* factors).
                //
                // ρ = B⁻ᵀe_r gives the pivot row α_j = ρ·a_j, which drives
                // both the incremental reduced costs (d_j ← d_j − θ_d α_j
                // with θ_d = d_q/α_q) and the weight updates. For steepest
                // edge, τ = B⁻ᵀw additionally gives g_j = a_j·τ =
                // (B⁻¹a_j)·(B⁻¹a_q), and the exact Forrest–Goldfarb update
                // with η = α_j/α_q is
                //     γ_j ← γ_j − 2·η·g_j + η²·(‖w‖² + 1),
                // clamped below by 1 + η² (the exact value when the old
                // B⁻¹a_j had no component besides the pivot row). The
                // leaving column's exact new weight (‖w‖² + 1)/α_q² is set
                // directly — its stale nonbasic γ would poison the formula.
                let mut need_reset = false;
                let alpha_q = w[r];
                let theta_d = d_enter / alpha_q;
                let wnorm2: f64 = w.iter().map(|v| v * v).sum();
                if alpha_q.abs() > PIV_TOL && theta_d.is_finite() && wnorm2.is_finite() {
                    let gamma_q = state.weights[enter].max(1.0);
                    let t0 = clk(trace);
                    rho.clear();
                    rho.resize(m, 0.0);
                    rho[r] = 1.0;
                    let se = pricing == PricingRule::SteepestEdge;
                    if se {
                        tau.clear();
                        tau.extend_from_slice(&w);
                        // One lockstep pass over the factors for both solves.
                        state.lu.btran2(&mut rho, &mut tau);
                    } else {
                        state.lu.btran(&mut rho);
                    }
                    lap(&mut t_btran, t0);
                    let t0 = clk(trace);
                    // The pivot row α = ρᵀA (and for SE, g_j = a_j·τ) has two
                    // evaluation strategies keyed on the density of ρ = B⁻ᵀe_r:
                    //
                    // * ρ sparse (common in phase 1 and right after a refresh):
                    //   gather α over the non-zeros of ρ via the row-major copy
                    //   of A — cost ∝ entries of the rows ρ touches, and g_j is
                    //   computed per *touched* column only (η = 0 leaves γ_j
                    //   unchanged, so untouched columns need nothing).
                    // * ρ dense (deep degenerate phase-2 walks fill it in):
                    //   the direct per-column loop, skipping basic and
                    //   presolve-pinned columns before any arithmetic and
                    //   computing α_j and g_j in a single traversal of each
                    //   column. A gather would pay list bookkeeping on every
                    //   one of nnz(A) entries for no skip.
                    let rho_nnz = rho.iter().filter(|v| **v != 0.0).count();
                    if rho_nnz * 8 <= m {
                        state.ensure_row_major();
                        {
                            let rows = state.rows_a.as_ref().expect("just built");
                            let nstruct = state.n;
                            for (i, &ri) in rho.iter().enumerate() {
                                if ri == 0.0 {
                                    continue;
                                }
                                for &(j, v) in &rows[i] {
                                    let j = j as usize;
                                    if !amark[j] {
                                        amark[j] = true;
                                        touched.push(j as u32);
                                    }
                                    alpha[j] += ri * v;
                                }
                                // Row i's implicit artificial column sits at
                                // nstruct + i with the single entry art_sign[i].
                                let ja = nstruct + i;
                                if !amark[ja] {
                                    amark[ja] = true;
                                    touched.push(ja as u32);
                                }
                                alpha[ja] += ri * state.art_sign[i];
                            }
                        }
                        // Scatter: apply the reduced-cost and weight updates
                        // to the touched non-basic columns, clearing the
                        // scratch accumulators as we go.
                        for &ju in &touched {
                            let j = ju as usize;
                            let alpha_j = alpha[j];
                            alpha[j] = 0.0;
                            amark[j] = false;
                            if state.status[j] == VarStatus::Basic
                                || state.ub[j] - state.lb[j] < DTOL
                                || alpha_j == 0.0
                            {
                                continue;
                            }
                            d[j] -= theta_d * alpha_j;
                            let eta = alpha_j / alpha_q;
                            if se {
                                let g_j = state.row_dot_col(j, &tau);
                                let cand =
                                    state.weights[j] - 2.0 * eta * g_j + eta * eta * (wnorm2 + 1.0);
                                state.weights[j] = cand.max(1.0 + eta * eta);
                            } else {
                                let cand = eta * eta * gamma_q;
                                if cand > state.weights[j] {
                                    state.weights[j] = cand;
                                }
                            }
                        }
                        touched.clear();
                    } else {
                        // The pricing list is exactly the set of columns this
                        // pass can affect (stale Basic entries fall to the
                        // status check), so iterate it instead of 0..ncols.
                        for &ju in &active {
                            let j = ju as usize;
                            if state.status[j] == VarStatus::Basic
                                || state.ub[j] - state.lb[j] < DTOL
                            {
                                continue;
                            }
                            if se {
                                let (alpha_j, g_j) = state.row_dot_col2(j, &rho, &tau);
                                if alpha_j == 0.0 {
                                    continue;
                                }
                                d[j] -= theta_d * alpha_j;
                                let eta = alpha_j / alpha_q;
                                let cand =
                                    state.weights[j] - 2.0 * eta * g_j + eta * eta * (wnorm2 + 1.0);
                                state.weights[j] = cand.max(1.0 + eta * eta);
                            } else {
                                let alpha_j = state.row_dot_col(j, &rho);
                                if alpha_j == 0.0 {
                                    continue;
                                }
                                d[j] -= theta_d * alpha_j;
                                let eta = alpha_j / alpha_q;
                                let cand = eta * eta * gamma_q;
                                if cand > state.weights[j] {
                                    state.weights[j] = cand;
                                }
                            }
                        }
                    }
                    lap(&mut t_upd, t0);
                    d[enter] = 0.0;
                    // The leaving column has α = 1 exactly (B⁻¹a_leav = e_r
                    // under the old basis), so the pass above already set
                    // d[leaving] = −θ_d; only its weight needs the exact
                    // override.
                    state.weights[leaving] = if se {
                        ((wnorm2 + 1.0) / (alpha_q * alpha_q)).max(1.0 + 1.0 / (alpha_q * alpha_q))
                    } else {
                        (gamma_q / (alpha_q * alpha_q)).max(1.0)
                    };
                    d_fresh = false;
                    // Devex-style reset on numerical trouble: a non-finite
                    // weight means the exact recurrence broke down — restart
                    // the reference framework at the current basis.
                    if !state.weights[leaving].is_finite() {
                        need_reset = true;
                    }
                } else {
                    // Un-updatable pivot (tiny α_q slipped through the ratio
                    // test, or a non-finite step): the maintained weights and
                    // reduced costs are no longer trustworthy — reset both.
                    need_reset = true;
                }

                // Fold the pivot into the eta file; on numerical trouble
                // rebuild the factorization from scratch.
                let t0 = clk(trace);
                if state.lu.update(&w, r).is_err() {
                    state.refactorize()?;
                    state.recompute_basic_values();
                    need_reset = true;
                }
                lap(&mut t_eta, t0);
                // Resets run *after* the factors reflect the pivot, so the
                // recomputed reduced costs match the new basis.
                if need_reset {
                    for g in state.weights.iter_mut() {
                        *g = 1.0;
                    }
                    recompute_d(state, &mut d, &mut y);
                    d_fresh = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → obj 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 36.0, 1e-6);
        assert_close(sol.value(x), 2.0, 1e-6);
        assert_close(sol.value(y), 6.0, 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → x=7,y=3 → 23.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 2.0);
        let y = m.add_nonneg_var("y", 3.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        m.add_cons("c2", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.add_cons("c3", &[(y, 1.0)], ConstraintOp::Ge, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 23.0, 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x = 2, y = 1 → 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        m.add_cons("e1", &[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        m.add_cons("e2", &[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.value(x), 2.0, 1e-6);
        assert_close(sol.value(y), 1.0, 1e-6);
        assert_close(sol.objective, 3.0, 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 0.0);
        m.add_cons("c", &[(y, 1.0)], ConstraintOp::Le, 5.0);
        let _ = x;
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn bounded_variables_and_bound_flips() {
        // max x + y with 0 <= x <= 2, 0 <= y <= 3, x + y <= 4 → 4.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 4.0, 1e-6);
        assert!(sol.value(x) <= 2.0 + 1e-9);
        assert!(sol.value(y) <= 3.0 + 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + y = 0, y <= 3 → x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 0.0, false);
        m.add_cons("e", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 0.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), -3.0, 1e-6);
        assert_close(sol.objective, -3.0, 1e-6);
    }

    #[test]
    fn free_variable_support() {
        // min x + 2y, x free, y >= 0, x + y >= 3, x >= -10 via constraint.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0, false);
        let y = m.add_nonneg_var("y", 2.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        m.add_cons("c2", &[(x, 1.0)], ConstraintOp::Ge, -10.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Optimum: y = 0, x = 3 → 3 (driving x to -10 costs 26 in y).
        assert_close(sol.objective, 3.0, 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        for i in 0..20 {
            let w = 1.0 + (i as f64) * 1e-9;
            m.add_cons(format!("c{i}"), &[(x, w), (y, 1.0)], ConstraintOp::Le, 10.0);
        }
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 10.0, 1e-5);
    }

    #[test]
    fn transportation_problem() {
        // Classic 2x3 transportation problem with known optimum.
        // Supplies: 20, 30. Demands: 10, 25, 15.
        // Costs: [[2, 3, 1], [5, 4, 8]] → optimal cost 150.
        let mut m = Model::new(Sense::Minimize);
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let mut xs = [[crate::model::VarId(0); 3]; 2];
        for s in 0..2 {
            for d in 0..3 {
                xs[s][d] = m.add_nonneg_var(format!("x{s}{d}"), costs[s][d]);
            }
        }
        let supplies = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        for s in 0..2 {
            let terms: Vec<_> = (0..3).map(|d| (xs[s][d], 1.0)).collect();
            m.add_cons(format!("s{s}"), &terms, ConstraintOp::Le, supplies[s]);
        }
        for d in 0..3 {
            let terms: Vec<_> = (0..2).map(|s| (xs[s][d], 1.0)).collect();
            m.add_cons(format!("d{d}"), &terms, ConstraintOp::Ge, demands[d]);
        }
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 150.0, 1e-5);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_simple_lp() {
        // max 3x + 5y (same as textbook test): primal obj == b'y at optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        let b = [4.0, 12.0, 18.0];
        let dual_obj: f64 = sol.duals.iter().zip(b.iter()).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, sol.objective, 1e-5);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 2.0, 1e-9);
        assert_close(sol.value(y), 3.0, 1e-6);
    }

    #[test]
    fn no_constraints_goes_to_best_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 7.0, 2.0, false);
        let y = m.add_var("y", -3.0, 4.0, -1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 7.0, 1e-9);
        assert_close(sol.value(y), -3.0, 1e-9);
        assert_close(sol.objective, 17.0, 1e-9);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    // ---- Warm-start path ---------------------------------------------------

    #[test]
    fn warm_start_reproduces_cold_optimum() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, 2).unwrap();
        let basis = cold.basis.clone().unwrap();
        // Unchanged bounds: the warm re-solve must find the same optimum
        // nearly instantly.
        let warm = solve_standard_form_from(&sf, 2, &[], Some(&basis)).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-9);
        assert_eq!(warm.stats.warm_starts, 1);
        assert_eq!(warm.stats.cold_starts, 0);
        assert!(
            warm.stats.simplex_iterations <= 2,
            "{}",
            warm.stats.simplex_iterations
        );
    }

    #[test]
    fn warm_start_after_bound_tightening_matches_cold() {
        // min -x - 2y s.t. x + y <= 10, x <= 6, y <= 7 (as bounds).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 6.0, -1.0, false);
        let y = m.add_var("y", 0.0, 7.0, -2.0, false);
        m.add_cons("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, 2).unwrap();
        let basis = cold.basis.clone().unwrap();
        // Tighten x's upper bound below its optimal value (3) → re-solve.
        let overrides = [(0usize, 0.0, 1.5)];
        let warm = solve_standard_form_from(&sf, 2, &overrides, Some(&basis)).unwrap();
        let cold2 = solve_standard_form_from(&sf, 2, &overrides, None).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold2.objective, 1e-8);
        assert!(warm.values[0] <= 1.5 + 1e-9);
    }

    #[test]
    fn warm_start_detects_infeasible_bound_change() {
        // x + y >= 8 with x <= 6, y <= 7 is feasible; tightening y <= 1 and
        // x <= 1 makes it infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 6.0, 1.0, false);
        let y = m.add_var("y", 0.0, 7.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 8.0);
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, 2).unwrap();
        let basis = cold.basis.clone().unwrap();
        let overrides = [(0usize, 0.0, 1.0), (1usize, 0.0, 1.0)];
        let warm = solve_standard_form_from(&sf, 2, &overrides, Some(&basis)).unwrap();
        assert_eq!(warm.status, SolveStatus::Infeasible);
        let cold2 = solve_standard_form_from(&sf, 2, &overrides, None).unwrap();
        assert_eq!(cold2.status, SolveStatus::Infeasible);
    }

    /// An `n`×`n` transportation-style LP (2n rows, n² columns) whose cold
    /// solve needs real primal phase-2 work even after the dual phase 1.
    fn transportation_lp(n: usize) -> StandardForm {
        let mut m = Model::new(Sense::Minimize);
        let mut xs = Vec::new();
        for s in 0..n {
            for d in 0..n {
                let cost = ((s * 7 + d * 13) % 17 + 1) as f64;
                xs.push(m.add_var(format!("x{s}_{d}"), 0.0, 50.0, cost, false));
            }
        }
        for s in 0..n {
            let terms: Vec<_> = (0..n).map(|d| (xs[s * n + d], 1.0)).collect();
            m.add_cons(format!("s{s}"), &terms, ConstraintOp::Le, 30.0);
        }
        for d in 0..n {
            let terms: Vec<_> = (0..n).map(|s| (xs[s * n + d], 1.0)).collect();
            m.add_cons(format!("d{d}"), &terms, ConstraintOp::Ge, 20.0);
        }
        StandardForm::from_model(&m)
    }

    #[test]
    fn warm_resolve_is_much_cheaper_than_cold() {
        // A 20x20 transportation-style LP: the cold solve needs dozens of
        // iterations even with the dual phase 1; after tightening one
        // non-binding bound the warm re-solve must take < 10% of the cold
        // iteration count.
        let n = 20;
        let sf = transportation_lp(n);
        let cold = solve_standard_form(&sf, n * n).unwrap();
        assert_eq!(cold.status, SolveStatus::Optimal);
        let cold_iters = cold.stats.simplex_iterations;
        assert!(
            cold_iters >= 20,
            "cold solve unexpectedly cheap: {cold_iters}"
        );
        // Tighten the bound of a variable that is at 0 in the optimum.
        let idle = (0..n * n).find(|&j| cold.values[j] < 1e-9).unwrap();
        let overrides = [(idle, 0.0, 10.0)];
        let warm = solve_standard_form_from(&sf, n * n, &overrides, cold.basis.as_ref()).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-6);
        assert!(
            warm.stats.simplex_iterations * 10 < cold_iters,
            "warm {} vs cold {cold_iters}",
            warm.stats.simplex_iterations
        );
    }

    #[test]
    fn exhausted_perturbed_walk_still_charges_the_certify_pass() {
        // Force the perturbed phase-2 pre-pass on (the transportation LP has
        // m = 40 rows, above the lowered threshold) and sweep iteration caps
        // upward. Caps that trip before primal feasibility are hard budget
        // errors; the first cap that comes back `Ok` with `budget_stop` set
        // tripped inside the perturbed walk, which skips the true-cost
        // certify pass — and that skip must still charge the budget for the
        // extraction work (the PR-5 bug class: silent uncharged exits).
        let n = 20;
        let sf = transportation_lp(n);
        let opts = SimplexOptions {
            perturb_min_rows: 16,
            ..Default::default()
        };
        let mut verified = false;
        for cap in 1..5000u64 {
            let budget = SolveBudget::with_iteration_cap(cap);
            match solve_standard_form_with_options(&sf, n * n, &[], None, Some(&budget), &opts) {
                Err(LpError::Budget(_)) => continue, // tripped before feasibility
                Err(e) => panic!("unexpected error at cap {cap}: {e:?}"),
                Ok(sol) => {
                    let Some(_) = sol.stats.budget_stop else {
                        // The budget was big enough to finish: nothing larger
                        // will trip either.
                        break;
                    };
                    assert_eq!(sol.status, SolveStatus::Feasible);
                    // The tripping pivot lands on `cap + 1`; anything beyond
                    // proves the skipped certify pass charged its cleanup.
                    assert!(
                        budget.iterations_used() >= cap + 2,
                        "certify pass exited uncharged: cap {cap}, used {}",
                        budget.iterations_used()
                    );
                    verified = true;
                    break;
                }
            }
        }
        assert!(verified, "no cap tripped inside the perturbed pre-pass");
    }

    #[test]
    fn stale_warm_basis_falls_back_to_cold() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Le, 3.0);
        let sf = StandardForm::from_model(&m);
        // A basis with the wrong shape is rejected and the cold path runs.
        let stale = SimplexBasis {
            basic: vec![0, 1, 2],
            status: vec![VarStatus::AtLower],
        };
        let sol = solve_standard_form_from(&sf, 1, &[], Some(&stale)).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 3.0, 1e-9);
        assert_eq!(sol.stats.cold_starts, 1);
    }
}
