//! Two-phase bounded-variable primal revised simplex on a sparse LU basis.
//!
//! The basis is held as a sparse LU factorization with product-form (eta)
//! updates ([`crate::basis`]): each iteration performs one BTRAN (pricing
//! multipliers), one FTRAN (transformed entering column), and an `O(nnz)` eta
//! append, with a full refactorization every ~100 pivots. Pricing is **devex**
//! over a bounded candidate list (partial pricing): a full scan refills the
//! list and is the only place optimality is declared, so correctness does not
//! depend on the candidate heuristics. Bland's rule takes over when the
//! objective stalls (heavy degeneracy), guaranteeing termination.
//!
//! Cold solves run phase 1 (minimize the sum of signed artificials) then
//! phase 2. Warm starts ([`solve_standard_form_from`]) rebuild the caller's
//! basis, repair any bound violations introduced by changed bounds with a
//! sequence of single-variable feasibility LPs (no artificials), and go
//! straight to phase 2 — the hot path for branch-and-bound children, where a
//! single branched bound changed.

use crate::basis::{LuFactors, SimplexBasis, VarStatus};
use crate::error::LpError;
use crate::model::Model;
use crate::solution::{Solution, SolveStats, SolveStatus};
use crate::sparse::SparseVec;
use crate::standard::StandardForm;

/// Outcome of a single simplex phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Reduced-cost tolerance.
const DTOL: f64 = 1e-9;
/// Ratio-test pivot tolerance.
const PIV_TOL: f64 = 1e-9;
/// Bound-feasibility tolerance.
const FEAS_TOL: f64 = 1e-9;
/// Size of the devex candidate list.
const CAND_LIST: usize = 64;
/// Iterations between basic-value / objective refreshes.
const REFRESH_INTERVAL: usize = 256;

/// Internal simplex working state over a standard form plus `m` artificials.
///
/// Columns `0..n` are the standard form's structural + slack columns (accessed
/// by reference — the matrix is never copied per solve); columns `n..n+m` are
/// the artificials, represented implicitly as `art_sign[row] * e_row`.
struct SimplexState<'a> {
    sf: &'a StandardForm,
    n: usize,
    m: usize,
    art_sign: Vec<f64>,
    b: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    x: Vec<f64>,
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    lu: LuFactors,
    iterations: usize,
    factorizations: usize,
    /// Devex reference weights, one per column.
    devex: Vec<f64>,
    /// Current pricing candidate list (column indices).
    candidates: Vec<usize>,
}

/// Solves the LP relaxation of `model` (integrality ignored) with the
/// two-phase simplex and returns the solution in the model's variable space.
pub fn solve_lp(model: &Model) -> Result<Solution, LpError> {
    let sf = StandardForm::from_model(model);
    solve_standard_form(&sf, model.num_vars())
}

/// Solves a prepared [`StandardForm`] from a cold (all-artificial) start.
/// `num_model_vars` is the number of structural variables to report back.
pub fn solve_standard_form(sf: &StandardForm, num_model_vars: usize) -> Result<Solution, LpError> {
    solve_standard_form_from(sf, num_model_vars, &[], None)
}

/// Solves a [`StandardForm`] with per-column bound overrides, optionally
/// warm-started from a previous solve's basis.
///
/// * `overrides` — `(column, lb, ub)` triples replacing the form's bounds
///   (columns are standard-form indices; branch-and-bound uses structural
///   columns only). The matrix and objective are shared, so branch-and-bound
///   never rebuilds the form.
/// * `warm` — a basis returned in [`Solution::basis`] by an earlier solve of
///   the *same* form. The solve then skips phase 1: the basis is
///   refactorized, bound violations are repaired in place, and phase 2 runs
///   directly. If the basis is stale (wrong shape) or numerically unusable,
///   the solver falls back to a cold start — the result is always correct.
pub fn solve_standard_form_from(
    sf: &StandardForm,
    num_model_vars: usize,
    overrides: &[(usize, f64, f64)],
    warm: Option<&SimplexBasis>,
) -> Result<Solution, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();

    let mut lb = sf.lb.clone();
    let mut ub = sf.ub.clone();
    for &(j, lo, hi) in overrides {
        lb[j] = lo;
        ub[j] = hi;
        if lo > hi + FEAS_TOL {
            return Ok(infeasible(num_model_vars, 0));
        }
    }

    // Trivial case: no constraints. Each variable independently moves to the
    // bound that minimizes its cost.
    if m == 0 {
        return Ok(solve_unconstrained(sf, &lb, &ub, num_model_vars));
    }

    let mut wasted = WarmFallback::default();
    if let Some(wb) = warm {
        if wb.basic.len() == m && wb.status.len() == n {
            match try_warm_solve(sf, &lb, &ub, wb, num_model_vars) {
                Ok(sol) => return Ok(sol),
                // Fall through to a cold start, but keep the work the failed
                // warm attempt burned so the counters stay honest.
                Err(fb) => wasted = fb,
            }
        }
    }
    let mut sol = cold_solve(sf, &lb, &ub, num_model_vars)?;
    sol.stats.simplex_iterations += wasted.iterations;
    sol.stats.factorizations += wasted.factorizations;
    Ok(sol)
}

/// Work performed by a warm-start attempt that had to be abandoned
/// (stale/singular basis or a numerical failure mid-repair).
#[derive(Debug, Default)]
struct WarmFallback {
    iterations: usize,
    factorizations: usize,
}

fn infeasible(num_model_vars: usize, iterations: usize) -> Solution {
    Solution {
        status: SolveStatus::Infeasible,
        objective: f64::NAN,
        values: vec![0.0; num_model_vars],
        duals: Vec::new(),
        stats: SolveStats {
            simplex_iterations: iterations,
            ..Default::default()
        },
        basis: None,
    }
}

// ---------------------------------------------------------------------------
// Cold path
// ---------------------------------------------------------------------------

fn cold_solve(
    sf: &StandardForm,
    lb: &[f64],
    ub: &[f64],
    num_model_vars: usize,
) -> Result<Solution, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();
    let mut state = build_initial_state(sf, lb, ub)?;
    let max_iters = 200 * (m + n) + 20_000;

    // ---- Phase 1: drive artificials to zero. ----
    let mut phase1_cost = vec![0.0; n + m];
    phase1_cost[n..].fill(1.0);
    let outcome = run_phase(&mut state, &phase1_cost, max_iters)?;
    // Phase 1 objective is bounded below by zero, so "unbounded" here is a
    // numerical failure.
    if outcome == PhaseOutcome::Unbounded {
        return Err(LpError::Numerical("phase 1 reported unbounded".into()));
    }
    let infeas: f64 = (n..n + m).map(|j| state.x[j].abs()).sum();
    if infeas > 1e-6 {
        let mut sol = infeasible(num_model_vars, state.iterations);
        sol.stats.factorizations = state.factorizations;
        sol.stats.cold_starts = 1;
        return Ok(sol);
    }
    // Fix artificials at zero so they cannot re-enter with a non-zero value.
    for j in n..n + m {
        state.lb[j] = 0.0;
        state.ub[j] = 0.0;
        if state.status[j] != VarStatus::Basic {
            state.x[j] = 0.0;
            state.status[j] = VarStatus::AtLower;
        }
    }

    let mut sol = finish_phase2(&mut state, max_iters, num_model_vars)?;
    sol.stats.cold_starts = 1;
    Ok(sol)
}

/// Builds the initial cold-start state: non-basic structural/slack columns at
/// a finite bound (or 0 if free) and an all-artificial basis absorbing the
/// residual.
fn build_initial_state<'a>(
    sf: &'a StandardForm,
    lb_in: &[f64],
    ub_in: &[f64],
) -> Result<SimplexState<'a>, LpError> {
    let m = sf.num_rows();
    let n = sf.num_cols();

    let mut lb = lb_in.to_vec();
    let mut ub = ub_in.to_vec();
    let mut x = vec![0.0; n + m];
    let mut status = vec![VarStatus::AtLower; n + m];

    for j in 0..n {
        if lb[j].is_finite() {
            x[j] = lb[j];
            status[j] = VarStatus::AtLower;
        } else if ub[j].is_finite() {
            x[j] = ub[j];
            status[j] = VarStatus::AtUpper;
        } else {
            x[j] = 0.0;
            status[j] = VarStatus::Free;
        }
    }

    // Residual the artificial basis must absorb.
    let ax = sf.a.mul_dense(&x[..n]);
    let mut art_sign = vec![1.0; m];
    let mut basis = Vec::with_capacity(m);
    for i in 0..m {
        let r = sf.b[i] - ax[i];
        art_sign[i] = if r >= 0.0 { 1.0 } else { -1.0 };
        let j = n + i;
        lb.push(0.0);
        ub.push(f64::INFINITY);
        x[j] = r.abs();
        status[j] = VarStatus::Basic;
        basis.push(j);
    }

    let mut state = SimplexState {
        sf,
        n,
        m,
        art_sign,
        b: sf.b.clone(),
        lb,
        ub,
        x,
        status,
        basis,
        lu: LuFactors::factorize(0, &[])?,
        iterations: 0,
        factorizations: 0,
        devex: vec![1.0; n + m],
        candidates: Vec::new(),
    };
    state.refactorize()?;
    Ok(state)
}

// ---------------------------------------------------------------------------
// Warm path
// ---------------------------------------------------------------------------

fn try_warm_solve(
    sf: &StandardForm,
    lb_in: &[f64],
    ub_in: &[f64],
    warm: &SimplexBasis,
    num_model_vars: usize,
) -> Result<Solution, WarmFallback> {
    let m = sf.num_rows();
    let n = sf.num_cols();
    let max_iters = 200 * (m + n) + 20_000;

    // Validate the warm basis: m distinct columns in range.
    let mut seen = vec![false; n + m];
    for &j in &warm.basic {
        if j >= n + m || seen[j] {
            return Err(WarmFallback::default()); // stale basis, no work done
        }
        seen[j] = true;
    }

    let mut lb = lb_in.to_vec();
    let mut ub = ub_in.to_vec();
    // Artificial columns: reconstructed with sign +1 and pinned to zero (they
    // only linger in degenerate bases; pinning keeps them out of pricing).
    lb.extend(std::iter::repeat_n(0.0, m));
    ub.extend(std::iter::repeat_n(0.0, m));

    let mut x = vec![0.0; n + m];
    let mut status = vec![VarStatus::AtLower; n + m];
    for (st, &ws) in status.iter_mut().zip(warm.status.iter()) {
        *st = match ws {
            VarStatus::Basic => VarStatus::AtLower, // fixed up from `basic` below
            s => s,
        };
    }
    for &j in &warm.basic {
        status[j] = VarStatus::Basic;
    }
    // Place non-basic columns on a bound consistent with the (possibly
    // changed) bounds.
    for j in 0..n + m {
        if status[j] == VarStatus::Basic {
            continue;
        }
        let (lo, hi) = (lb[j], ub[j]);
        let s = match status[j] {
            VarStatus::AtLower if lo.is_finite() => VarStatus::AtLower,
            VarStatus::AtUpper if hi.is_finite() => VarStatus::AtUpper,
            _ if lo.is_finite() => VarStatus::AtLower,
            _ if hi.is_finite() => VarStatus::AtUpper,
            _ => VarStatus::Free,
        };
        status[j] = s;
        x[j] = match s {
            VarStatus::AtLower => lo,
            VarStatus::AtUpper => hi,
            _ => 0.0,
        };
    }

    let empty_lu = LuFactors::factorize(0, &[]).map_err(|_| WarmFallback::default())?;
    let mut state = SimplexState {
        sf,
        n,
        m,
        art_sign: vec![1.0; m],
        b: sf.b.clone(),
        lb,
        ub,
        x,
        status,
        basis: warm.basic.clone(),
        lu: empty_lu,
        iterations: 0,
        factorizations: 0,
        devex: vec![1.0; n + m],
        candidates: Vec::new(),
    };
    let fallback = |state: &SimplexState| WarmFallback {
        iterations: state.iterations,
        factorizations: state.factorizations,
    };
    if state.refactorize().is_err() {
        // Singular warm basis -> caller goes cold.
        return Err(fallback(&state));
    }
    state.recompute_basic_values();

    // ---- Feasibility repair (replaces phase 1). ----
    match repair_feasibility(&mut state, max_iters) {
        Ok(true) => {}
        Ok(false) => {
            let mut sol = infeasible(num_model_vars, state.iterations);
            sol.stats.factorizations = state.factorizations;
            sol.stats.warm_starts = 1;
            return Ok(sol);
        }
        Err(_) => return Err(fallback(&state)),
    }

    match finish_phase2(&mut state, max_iters, num_model_vars) {
        Ok(mut sol) => {
            sol.stats.warm_starts = 1;
            Ok(sol)
        }
        Err(_) => Err(fallback(&state)),
    }
}

/// Drives all out-of-bound variables back inside their bounds, one target at a
/// time: the target's bound is temporarily set so that its own true bound is
/// the finish line, every other violated variable is relaxed to include its
/// current value, and a single-variable objective (min/max the target) runs
/// through the ordinary simplex machinery. Returns `false` if some violation
/// is unrepairable (the LP is infeasible).
fn repair_feasibility(state: &mut SimplexState, max_iters: usize) -> Result<bool, LpError> {
    let total = state.n + state.m;
    for _round in 0..state.m + 2 {
        // Collect variables outside their true bounds.
        let violated: Vec<usize> = (0..total)
            .filter(|&j| state.x[j] < state.lb[j] - FEAS_TOL || state.x[j] > state.ub[j] + FEAS_TOL)
            .collect();
        let Some(&target) = violated.iter().max_by(|&&a, &&b| {
            let va = violation(state, a);
            let vb = violation(state, b);
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            return Ok(true);
        };

        // Relax bounds: the target races toward its true bound; other
        // violated variables are parked in a range that includes where they
        // currently are.
        let saved: Vec<(usize, f64, f64)> = violated
            .iter()
            .map(|&j| (j, state.lb[j], state.ub[j]))
            .collect();
        let below = state.x[target] < state.lb[target];
        for &j in &violated {
            if j == target {
                if below {
                    state.ub[j] = state.lb[j]; // finish line
                    state.lb[j] = state.x[j];
                } else {
                    state.lb[j] = state.ub[j];
                    state.ub[j] = state.x[j];
                }
            } else {
                state.lb[j] = state.lb[j].min(state.x[j]);
                state.ub[j] = state.ub[j].max(state.x[j]);
            }
        }

        let mut cost = vec![0.0; total];
        cost[target] = if below { -1.0 } else { 1.0 };
        let outcome = run_phase(state, &cost, max_iters)?;

        // Restore true bounds and re-snap statuses of variables that are now
        // feasible.
        for &(j, lo, hi) in &saved {
            state.lb[j] = lo;
            state.ub[j] = hi;
            if state.status[j] != VarStatus::Basic {
                if (state.x[j] - lo).abs() <= FEAS_TOL {
                    state.x[j] = lo;
                    state.status[j] = VarStatus::AtLower;
                } else if hi.is_finite() && (state.x[j] - hi).abs() <= FEAS_TOL {
                    state.x[j] = hi;
                    state.status[j] = VarStatus::AtUpper;
                }
            }
        }
        if outcome == PhaseOutcome::Unbounded {
            return Err(LpError::Numerical(
                "feasibility repair reported unbounded".into(),
            ));
        }
        let still_violated =
            state.x[target] < state.lb[target] - 1e-7 || state.x[target] > state.ub[target] + 1e-7;
        if still_violated {
            // The target was optimized toward its bound over a *relaxation* of
            // the feasible set and still could not reach it: infeasible.
            return Ok(false);
        }
    }
    Err(LpError::Numerical(
        "feasibility repair did not converge".into(),
    ))
}

fn violation(state: &SimplexState, j: usize) -> f64 {
    (state.lb[j] - state.x[j])
        .max(state.x[j] - state.ub[j])
        .max(0.0)
}

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

/// Runs phase 2 on a primal-feasible state and extracts the solution.
fn finish_phase2(
    state: &mut SimplexState,
    max_iters: usize,
    num_model_vars: usize,
) -> Result<Solution, LpError> {
    let sf = state.sf;
    let n = state.n;
    let m = state.m;
    let mut phase2_cost = vec![0.0; n + m];
    phase2_cost[..n].copy_from_slice(&sf.c);
    // Large TE-CCL objectives are near-degenerate (masses of alternate
    // optima), which stalls pricing for thousands of iterations. A first pass
    // against deterministically perturbed costs breaks those ties; the pass
    // with the true costs then certifies optimality, so correctness never
    // rests on the perturbation. (Phase 1 is left unperturbed: its artificial
    // objective is what drives feasibility.)
    if m > 64 {
        let mut pcost = phase2_cost.clone();
        for (j, c) in pcost.iter_mut().enumerate().take(n) {
            let h = (j as u64).wrapping_mul(0x9e3779b97f4a7c15);
            let r = 1.0 + (h >> 40) as f64 / (1u64 << 24) as f64;
            *c += 1e-7 * r * (1.0 + c.abs());
        }
        // The pre-pass is purely an accelerator: a perturbed "unbounded" ray
        // may not be profitable under the real costs, and even an iteration
        // limit here just means the true-cost pass starts from wherever the
        // perturbed walk got to (still primal feasible).
        match run_phase(state, &pcost, max_iters) {
            Ok(_) | Err(LpError::IterationLimit(_)) => {}
            Err(e) => return Err(e),
        }
    }
    let outcome = run_phase(state, &phase2_cost, max_iters)?;
    let stats = SolveStats {
        simplex_iterations: state.iterations,
        factorizations: state.factorizations,
        ..Default::default()
    };
    if outcome == PhaseOutcome::Unbounded {
        return Ok(Solution {
            status: SolveStatus::Unbounded,
            objective: f64::NAN,
            values: vec![0.0; num_model_vars],
            duals: Vec::new(),
            stats,
            basis: None,
        });
    }

    // Extract the solution.
    let min_obj: f64 = (0..n).map(|j| sf.c[j] * state.x[j]).sum();
    let objective = sf.original_objective(min_obj);
    let values: Vec<f64> = (0..num_model_vars)
        .map(|j| clamp_bound_noise(state.x[j], state.lb[j], state.ub[j]))
        .collect();

    // Dual values: y = c_B * B^{-1}, reported in the original sense.
    let mut y: Vec<f64> = state.basis.iter().map(|&j| phase2_cost[j]).collect();
    state.lu.btran(&mut y);
    let duals: Vec<f64> = y.iter().map(|v| sf.obj_sign * v).collect();

    let basis = SimplexBasis {
        basic: state.basis.clone(),
        status: state.status[..n].to_vec(),
    };

    Ok(Solution {
        status: SolveStatus::Optimal,
        objective,
        values,
        duals,
        stats: SolveStats {
            best_bound: objective,
            ..stats
        },
        basis: Some(basis),
    })
}

/// Rounds values that drifted a hair outside their bounds back onto the bound.
fn clamp_bound_noise(x: f64, lb: f64, ub: f64) -> f64 {
    if x < lb {
        lb
    } else if x > ub {
        ub
    } else if (x - lb).abs() < 1e-11 {
        lb
    } else if ub.is_finite() && (x - ub).abs() < 1e-11 {
        ub
    } else {
        x
    }
}

/// Solves the degenerate "no constraints" case.
fn solve_unconstrained(
    sf: &StandardForm,
    lb: &[f64],
    ub: &[f64],
    num_model_vars: usize,
) -> Solution {
    let n = sf.num_cols();
    let mut values = vec![0.0; n];
    for j in 0..n {
        let c = sf.c[j];
        if c > 0.0 {
            if lb[j].is_finite() {
                values[j] = lb[j];
            } else {
                return unbounded_solution(num_model_vars);
            }
        } else if c < 0.0 {
            if ub[j].is_finite() {
                values[j] = ub[j];
            } else {
                return unbounded_solution(num_model_vars);
            }
        } else {
            values[j] = if lb[j].is_finite() {
                lb[j]
            } else if ub[j].is_finite() {
                ub[j]
            } else {
                0.0
            };
        }
    }
    let min_obj: f64 = (0..n).map(|j| sf.c[j] * values[j]).sum();
    Solution {
        status: SolveStatus::Optimal,
        objective: sf.original_objective(min_obj),
        values: values[..num_model_vars].to_vec(),
        duals: Vec::new(),
        stats: Default::default(),
        basis: None,
    }
}

fn unbounded_solution(num_model_vars: usize) -> Solution {
    Solution {
        status: SolveStatus::Unbounded,
        objective: f64::NAN,
        values: vec![0.0; num_model_vars],
        duals: Vec::new(),
        stats: Default::default(),
        basis: None,
    }
}

impl<'a> SimplexState<'a> {
    /// Reduced-cost helper: `cost[j] - y · A_j` without materializing columns.
    fn price_col(&self, j: usize, cost_j: f64, y: &[f64]) -> f64 {
        if j < self.n {
            cost_j - self.sf.a.col(j).dot_dense(y)
        } else {
            cost_j - y[j - self.n] * self.art_sign[j - self.n]
        }
    }

    /// `w = B⁻¹ A_j` for any column (structural, slack, or artificial).
    fn ftran_col(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        if j < self.n {
            for (i, v) in self.sf.a.col(j).iter() {
                w[i] += v;
            }
        } else {
            w[j - self.n] += self.art_sign[j - self.n];
        }
        self.lu.ftran(&mut w);
        w
    }

    /// A materialized basis column (used only when refactorizing).
    fn basis_col(&self, j: usize) -> SparseVec {
        if j < self.n {
            self.sf.a.col(j).clone()
        } else {
            SparseVec::from_pairs(&[(j - self.n, self.art_sign[j - self.n])])
        }
    }

    fn refactorize(&mut self) -> Result<(), LpError> {
        let cols: Vec<SparseVec> = self.basis.iter().map(|&j| self.basis_col(j)).collect();
        self.lu = LuFactors::factorize(self.m, &cols)?;
        self.factorizations += 1;
        Ok(())
    }

    /// Recomputes the values of the basic variables as `B⁻¹ (b - A_N x_N)`.
    fn recompute_basic_values(&mut self) {
        let mut rhs = self.b.clone();
        for j in 0..self.n + self.m {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let xj = self.x[j];
            if xj == 0.0 {
                continue;
            }
            if j < self.n {
                for (i, v) in self.sf.a.col(j).iter() {
                    rhs[i] -= v * xj;
                }
            } else {
                rhs[j - self.n] -= self.art_sign[j - self.n] * xj;
            }
        }
        self.lu.ftran(&mut rhs);
        for (r, &v) in rhs.iter().enumerate() {
            self.x[self.basis[r]] = v;
        }
    }

    /// Eligibility of a non-basic column under reduced cost `d`: the movement
    /// direction if profitable, `None` otherwise.
    fn eligible_dir(&self, j: usize, d: f64) -> Option<f64> {
        if self.ub[j] - self.lb[j] < DTOL {
            return None; // fixed columns can never usefully enter
        }
        match self.status[j] {
            VarStatus::Basic => None,
            VarStatus::AtLower => (d < -DTOL).then_some(1.0),
            VarStatus::AtUpper => (d > DTOL).then_some(-1.0),
            VarStatus::Free => {
                if d < -DTOL {
                    Some(1.0)
                } else if d > DTOL {
                    Some(-1.0)
                } else {
                    None
                }
            }
        }
    }
}

/// Current total objective for `cost` (used at phase start and on refresh).
fn exact_objective(state: &SimplexState, cost: &[f64]) -> f64 {
    (0..state.n + state.m).map(|j| cost[j] * state.x[j]).sum()
}

/// Runs simplex iterations for one phase with the given cost vector.
fn run_phase(
    state: &mut SimplexState,
    cost: &[f64],
    max_iters: usize,
) -> Result<PhaseOutcome, LpError> {
    let m = state.m;
    let ncols = state.n + state.m;

    let mut use_bland = false;
    let mut bland_exits = 0usize;
    // Entering Bland's rule breaks degenerate cycles but prices glacially; as
    // soon as the objective strictly improves the cycle is broken and devex
    // resumes. The exit budget keeps the guarantee: after it is exhausted
    // Bland stays on, which terminates unconditionally.
    const BLAND_EXIT_BUDGET: usize = 64;
    let stall_limit = (m + 16).min(512);
    let mut stall_count = 0usize;
    // The objective is tracked incrementally from the step size and reduced
    // cost and re-synced on the periodic refresh; stall detection reads the
    // tracked value instead of an O(ncols) recomputation per iteration.
    let mut obj = exact_objective(state, cost);
    let mut last_obj = f64::INFINITY;
    let mut local_iters = 0usize;

    // Fresh devex reference framework per phase.
    for w in state.devex.iter_mut() {
        *w = 1.0;
    }
    state.candidates.clear();

    loop {
        if local_iters > max_iters {
            return Err(LpError::IterationLimit(max_iters));
        }
        local_iters += 1;
        state.iterations += 1;

        // Periodic refresh: refactorize (folding the eta file back in),
        // recompute the basic values from the fresh factors, and re-sync the
        // tracked objective — bounding floating-point drift.
        if local_iters.is_multiple_of(REFRESH_INTERVAL) || state.lu.needs_refactor() {
            state.refactorize()?;
            state.recompute_basic_values();
            obj = exact_objective(state, cost);
        }

        // Pricing multipliers: y = c_B B⁻¹ via BTRAN.
        let mut y: Vec<f64> = state.basis.iter().map(|&j| cost[j]).collect();
        state.lu.btran(&mut y);

        // ---- Pricing. ----
        let entering: Option<(usize, f64, f64)> = if use_bland {
            // Bland: first eligible index, full scan.
            let mut found = None;
            for (j, &cj) in cost.iter().enumerate().take(ncols) {
                if state.status[j] == VarStatus::Basic {
                    continue;
                }
                let d = state.price_col(j, cj, &y);
                if let Some(dir) = state.eligible_dir(j, d) {
                    found = Some((j, d, dir));
                    break;
                }
            }
            found
        } else {
            // Devex over the candidate list; a full rescan refills the list
            // and is the only place optimality can be declared.
            let mut best: Option<(usize, f64, f64, f64)> = None; // (j, d, dir, score)
            let mut cands = std::mem::take(&mut state.candidates);
            cands.retain(|&j| state.status[j] != VarStatus::Basic);
            state.candidates = cands;
            for &j in &state.candidates {
                let d = state.price_col(j, cost[j], &y);
                if let Some(dir) = state.eligible_dir(j, d) {
                    let score = d * d / state.devex[j];
                    if best.is_none_or(|(_, _, _, bs)| score > bs) {
                        best = Some((j, d, dir, score));
                    }
                }
            }
            if best.is_none() {
                // Refill: full devex scan over all non-basic columns.
                let mut scored: Vec<(f64, usize, f64, f64)> = Vec::new();
                for (j, &cj) in cost.iter().enumerate().take(ncols) {
                    if state.status[j] == VarStatus::Basic {
                        continue;
                    }
                    let d = state.price_col(j, cj, &y);
                    if let Some(dir) = state.eligible_dir(j, d) {
                        scored.push((d * d / state.devex[j], j, d, dir));
                    }
                }
                scored.sort_unstable_by(|a, b| {
                    b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
                });
                scored.truncate(CAND_LIST);
                state.candidates = scored.iter().map(|&(_, j, _, _)| j).collect();
                best = scored.first().map(|&(score, j, d, dir)| (j, d, dir, score));
            }
            best.map(|(j, d, dir, _)| (j, d, dir))
        };

        let (enter, d_enter, dir) = match entering {
            None => return Ok(PhaseOutcome::Optimal),
            Some(e) => e,
        };

        // Transformed column w = B⁻¹ A_enter.
        let w = state.ftran_col(enter);

        // Ratio test. The entering variable moves by `t >= 0` in direction
        // `dir`; basic variable in row r changes at rate `-dir * w[r]`.
        let own_range = state.ub[enter] - state.lb[enter]; // may be inf
        let mut t_best = own_range;
        let mut leave_row: Option<usize> = None;
        for r in 0..m {
            let rate = -dir * w[r];
            if rate < -PIV_TOL {
                let bvar = state.basis[r];
                if state.lb[bvar].is_finite() {
                    let room = state.x[bvar] - state.lb[bvar];
                    let t = (room.max(0.0)) / -rate;
                    if t < t_best - 1e-12
                        || (t < t_best + 1e-12
                            && better_pivot(&w, r, leave_row, use_bland, &state.basis))
                    {
                        t_best = t;
                        leave_row = Some(r);
                    }
                }
            } else if rate > PIV_TOL {
                let bvar = state.basis[r];
                if state.ub[bvar].is_finite() {
                    let room = state.ub[bvar] - state.x[bvar];
                    let t = (room.max(0.0)) / rate;
                    if t < t_best - 1e-12
                        || (t < t_best + 1e-12
                            && better_pivot(&w, r, leave_row, use_bland, &state.basis))
                    {
                        t_best = t;
                        leave_row = Some(r);
                    }
                }
            }
        }

        if !t_best.is_finite() && leave_row.is_none() {
            return Ok(PhaseOutcome::Unbounded);
        }
        let t = t_best.max(0.0);

        // Apply the step to all basic variables and the entering variable.
        for (r, &wr) in w.iter().enumerate().take(m) {
            let bvar = state.basis[r];
            state.x[bvar] += -dir * wr * t;
        }
        state.x[enter] += dir * t;
        obj += d_enter * dir * t;

        match leave_row {
            None => {
                // Bound flip: the entering variable traversed its whole range.
                state.status[enter] = if dir > 0.0 {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                state.x[enter] = if dir > 0.0 {
                    state.ub[enter]
                } else {
                    state.lb[enter]
                };
            }
            Some(r) => {
                let leaving = state.basis[r];
                let rate = -dir * w[r];
                if leaving != enter {
                    // Snap the leaving variable onto the bound it reached.
                    if rate < 0.0 {
                        state.x[leaving] = state.lb[leaving];
                        state.status[leaving] = VarStatus::AtLower;
                    } else {
                        state.x[leaving] = state.ub[leaving];
                        state.status[leaving] = VarStatus::AtUpper;
                    }
                    state.basis[r] = enter;
                    state.status[enter] = VarStatus::Basic;

                    // Devex weight update over the candidate list (Forrest &
                    // Goldfarb's reference-framework update, restricted to the
                    // columns we actually price): alpha_j is row r of the
                    // tableau, obtained from rho = Bᵀ⁻¹ e_r.
                    if !use_bland {
                        let alpha_q = w[r];
                        if alpha_q.abs() > PIV_TOL {
                            let gamma_q = state.devex[enter];
                            let mut rho = vec![0.0; m];
                            rho[r] = 1.0;
                            state.lu.btran(&mut rho);
                            for idx in 0..state.candidates.len() {
                                let j = state.candidates[idx];
                                if j == enter || state.status[j] == VarStatus::Basic {
                                    continue;
                                }
                                let alpha_j = if j < state.n {
                                    state.sf.a.col(j).dot_dense(&rho)
                                } else {
                                    rho[j - state.n] * state.art_sign[j - state.n]
                                };
                                let cand = (alpha_j / alpha_q) * (alpha_j / alpha_q) * gamma_q;
                                if cand > state.devex[j] {
                                    state.devex[j] = cand;
                                }
                            }
                            state.devex[leaving] = (gamma_q / (alpha_q * alpha_q)).max(1.0);
                        }
                    }

                    // Fold the pivot into the eta file; on numerical trouble
                    // rebuild the factorization from scratch.
                    if state.lu.update(&w, r).is_err() {
                        state.refactorize()?;
                        state.recompute_basic_values();
                        obj = exact_objective(state, cost);
                    }
                } else {
                    // The entering variable limits itself (can happen when it
                    // is already basic-adjacent numerically); treat as flip.
                    state.status[enter] = if dir > 0.0 {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                }
            }
        }

        // Anti-cycling: if the phase objective stops improving for a long
        // stretch (heavy degeneracy), switch to Bland's rule; once it breaks
        // the stall, hand pricing back to devex.
        if obj < last_obj - 1e-10 {
            last_obj = obj;
            stall_count = 0;
            if use_bland && bland_exits < BLAND_EXIT_BUDGET {
                use_bland = false;
                bland_exits += 1;
            }
        } else {
            stall_count += 1;
            if stall_count > stall_limit {
                use_bland = true;
            }
        }
    }
}

/// Tie-breaking helper for the ratio test: prefer pivots with larger |w[r]|
/// for numerical stability, or the lowest basis index under Bland's rule.
fn better_pivot(
    w: &[f64],
    candidate: usize,
    current: Option<usize>,
    bland: bool,
    basis: &[usize],
) -> bool {
    match current {
        None => true,
        Some(cur) => {
            if bland {
                basis[candidate] < basis[cur]
            } else {
                w[candidate].abs() > w[cur].abs()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → obj 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 36.0, 1e-6);
        assert_close(sol.value(x), 2.0, 1e-6);
        assert_close(sol.value(y), 6.0, 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → x=7,y=3 → 23.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 2.0);
        let y = m.add_nonneg_var("y", 3.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        m.add_cons("c2", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.add_cons("c3", &[(y, 1.0)], ConstraintOp::Ge, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 23.0, 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x = 2, y = 1 → 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        m.add_cons("e1", &[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        m.add_cons("e2", &[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.value(x), 2.0, 1e-6);
        assert_close(sol.value(y), 1.0, 1e-6);
        assert_close(sol.objective, 3.0, 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 0.0);
        m.add_cons("c", &[(y, 1.0)], ConstraintOp::Le, 5.0);
        let _ = x;
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn bounded_variables_and_bound_flips() {
        // max x + y with 0 <= x <= 2, 0 <= y <= 3, x + y <= 4 → 4.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 4.0, 1e-6);
        assert!(sol.value(x) <= 2.0 + 1e-9);
        assert!(sol.value(y) <= 3.0 + 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + y = 0, y <= 3 → x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 0.0, false);
        m.add_cons("e", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 0.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), -3.0, 1e-6);
        assert_close(sol.objective, -3.0, 1e-6);
    }

    #[test]
    fn free_variable_support() {
        // min x + 2y, x free, y >= 0, x + y >= 3, x >= -10 via constraint.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0, false);
        let y = m.add_nonneg_var("y", 2.0);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        m.add_cons("c2", &[(x, 1.0)], ConstraintOp::Ge, -10.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Optimum: y = 0, x = 3 → 3 (driving x to -10 costs 26 in y).
        assert_close(sol.objective, 3.0, 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        for i in 0..20 {
            let w = 1.0 + (i as f64) * 1e-9;
            m.add_cons(format!("c{i}"), &[(x, w), (y, 1.0)], ConstraintOp::Le, 10.0);
        }
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 10.0, 1e-5);
    }

    #[test]
    fn transportation_problem() {
        // Classic 2x3 transportation problem with known optimum.
        // Supplies: 20, 30. Demands: 10, 25, 15.
        // Costs: [[2, 3, 1], [5, 4, 8]] → optimal cost 150.
        let mut m = Model::new(Sense::Minimize);
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let mut xs = [[crate::model::VarId(0); 3]; 2];
        for s in 0..2 {
            for d in 0..3 {
                xs[s][d] = m.add_nonneg_var(format!("x{s}{d}"), costs[s][d]);
            }
        }
        let supplies = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        for s in 0..2 {
            let terms: Vec<_> = (0..3).map(|d| (xs[s][d], 1.0)).collect();
            m.add_cons(format!("s{s}"), &terms, ConstraintOp::Le, supplies[s]);
        }
        for d in 0..3 {
            let terms: Vec<_> = (0..2).map(|s| (xs[s][d], 1.0)).collect();
            m.add_cons(format!("d{d}"), &terms, ConstraintOp::Ge, demands[d]);
        }
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 150.0, 1e-5);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_simple_lp() {
        // max 3x + 5y (same as textbook test): primal obj == b'y at optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        let b = [4.0, 12.0, 18.0];
        let dual_obj: f64 = sol.duals.iter().zip(b.iter()).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, sol.objective, 1e-5);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 2.0, 1e-9);
        assert_close(sol.value(y), 3.0, 1e-6);
    }

    #[test]
    fn no_constraints_goes_to_best_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 7.0, 2.0, false);
        let y = m.add_var("y", -3.0, 4.0, -1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 7.0, 1e-9);
        assert_close(sol.value(y), -3.0, 1e-9);
        assert_close(sol.objective, 17.0, 1e-9);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, f64::INFINITY, 1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    // ---- Warm-start path ---------------------------------------------------

    #[test]
    fn warm_start_reproduces_cold_optimum() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 3.0);
        let y = m.add_nonneg_var("y", 5.0);
        m.add_cons("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_cons("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_cons("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, 2).unwrap();
        let basis = cold.basis.clone().unwrap();
        // Unchanged bounds: the warm re-solve must find the same optimum
        // nearly instantly.
        let warm = solve_standard_form_from(&sf, 2, &[], Some(&basis)).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-9);
        assert_eq!(warm.stats.warm_starts, 1);
        assert_eq!(warm.stats.cold_starts, 0);
        assert!(
            warm.stats.simplex_iterations <= 2,
            "{}",
            warm.stats.simplex_iterations
        );
    }

    #[test]
    fn warm_start_after_bound_tightening_matches_cold() {
        // min -x - 2y s.t. x + y <= 10, x <= 6, y <= 7 (as bounds).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 6.0, -1.0, false);
        let y = m.add_var("y", 0.0, 7.0, -2.0, false);
        m.add_cons("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, 2).unwrap();
        let basis = cold.basis.clone().unwrap();
        // Tighten x's upper bound below its optimal value (3) → re-solve.
        let overrides = [(0usize, 0.0, 1.5)];
        let warm = solve_standard_form_from(&sf, 2, &overrides, Some(&basis)).unwrap();
        let cold2 = solve_standard_form_from(&sf, 2, &overrides, None).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold2.objective, 1e-8);
        assert!(warm.values[0] <= 1.5 + 1e-9);
    }

    #[test]
    fn warm_start_detects_infeasible_bound_change() {
        // x + y >= 8 with x <= 6, y <= 7 is feasible; tightening y <= 1 and
        // x <= 1 makes it infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 6.0, 1.0, false);
        let y = m.add_var("y", 0.0, 7.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 8.0);
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, 2).unwrap();
        let basis = cold.basis.clone().unwrap();
        let overrides = [(0usize, 0.0, 1.0), (1usize, 0.0, 1.0)];
        let warm = solve_standard_form_from(&sf, 2, &overrides, Some(&basis)).unwrap();
        assert_eq!(warm.status, SolveStatus::Infeasible);
        let cold2 = solve_standard_form_from(&sf, 2, &overrides, None).unwrap();
        assert_eq!(cold2.status, SolveStatus::Infeasible);
    }

    #[test]
    fn warm_resolve_is_much_cheaper_than_cold() {
        // A 10x10 transportation-style LP: the cold solve needs dozens of
        // iterations; after tightening one non-binding bound the warm re-solve
        // must take < 10% of the cold iteration count.
        let n = 10;
        let mut m = Model::new(Sense::Minimize);
        let mut xs = Vec::new();
        for s in 0..n {
            for d in 0..n {
                let cost = ((s * 7 + d * 13) % 17 + 1) as f64;
                xs.push(m.add_var(format!("x{s}_{d}"), 0.0, 50.0, cost, false));
            }
        }
        for s in 0..n {
            let terms: Vec<_> = (0..n).map(|d| (xs[s * n + d], 1.0)).collect();
            m.add_cons(format!("s{s}"), &terms, ConstraintOp::Le, 30.0);
        }
        for d in 0..n {
            let terms: Vec<_> = (0..n).map(|s| (xs[s * n + d], 1.0)).collect();
            m.add_cons(format!("d{d}"), &terms, ConstraintOp::Ge, 20.0);
        }
        let sf = StandardForm::from_model(&m);
        let cold = solve_standard_form(&sf, n * n).unwrap();
        assert_eq!(cold.status, SolveStatus::Optimal);
        let cold_iters = cold.stats.simplex_iterations;
        assert!(
            cold_iters >= 20,
            "cold solve unexpectedly cheap: {cold_iters}"
        );
        // Tighten the bound of a variable that is at 0 in the optimum.
        let idle = (0..n * n).find(|&j| cold.values[j] < 1e-9).unwrap();
        let overrides = [(idle, 0.0, 10.0)];
        let warm = solve_standard_form_from(&sf, n * n, &overrides, cold.basis.as_ref()).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_close(warm.objective, cold.objective, 1e-6);
        assert!(
            warm.stats.simplex_iterations * 10 < cold_iters,
            "warm {} vs cold {cold_iters}",
            warm.stats.simplex_iterations
        );
    }

    #[test]
    fn stale_warm_basis_falls_back_to_cold() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Le, 3.0);
        let sf = StandardForm::from_model(&m);
        // A basis with the wrong shape is rejected and the cold path runs.
        let stale = SimplexBasis {
            basic: vec![0, 1, 2],
            status: vec![VarStatus::AtLower],
        };
        let sol = solve_standard_form_from(&sf, 1, &[], Some(&stale)).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_close(sol.objective, 3.0, 1e-9);
        assert_eq!(sol.stats.cold_starts, 1);
    }
}
