//! The restricted master problem (RMP) of the Dantzig-Wolfe loop.
//!
//! The RMP optimizes over the pooled extreme points: one λ ∈ [0,1] column
//! per pooled point (with its *true* objective), the original coupling rows
//! (each point contributing its cached footprint), and one convexity row
//! `Σ λ_p = 1` per block. Big-M artificial surplus columns keep the RMP
//! feasible from the first round — the master starts with one column per
//! block, which rarely satisfies the coupling rows — and their residual
//! mass at convergence is the infeasibility certificate (after penalty
//! escalation rules out a too-small M).
//!
//! The RMP is rebuilt per round (column counts are small — hundreds, not
//! the tens of thousands of the monolithic form) but *solved warm*: the row
//! set never changes, so the previous optimal basis, remapped across the
//! appended λ columns by [`super::columns::remap_basis`], prices only the
//! newcomers. Duals come back in the original sense — coupling duals `y`
//! feed the pricing round, convexity duals `μ` the reduced-cost test.

use teccl_util::SolveBudget;

use crate::basis::SimplexBasis;
use crate::error::LpError;
use crate::model::{ConstraintOp, Model, Sense};
use crate::solution::{SolveStats, SolveStatus};

use super::columns::ColumnPool;
use super::BlockStructure;

/// One solved restricted master.
#[derive(Debug)]
pub struct RmpOutcome {
    /// Multiplier per pooled column, pool order.
    pub lambda: Vec<f64>,
    /// Coupling-row duals, original sense, `structure.coupling_rows` order.
    pub y: Vec<f64>,
    /// Convexity duals, one per block.
    pub mu: Vec<f64>,
    /// Total artificial mass: `> 0` means the pooled columns cannot yet
    /// satisfy the coupling rows.
    pub art_sum: f64,
    /// Counters of this master solve.
    pub stats: SolveStats,
    /// Final basis, for the next round's warm start (`None` when presolve
    /// solved the master trivially).
    pub basis: Option<SimplexBasis>,
}

/// Builds and solves the RMP for the current pool at penalty `m_penalty`.
///
/// Returns [`LpError::Budget`] on a budget trip (including a mid-phase-2
/// incumbent stop — a half-optimized master has no usable duals), and
/// [`LpError::Numerical`] when the master comes back anything other than
/// `Optimal` or without its duals; the driver turns the latter into a
/// monolithic fallback.
pub fn solve_rmp(
    model: &Model,
    structure: &BlockStructure,
    pool: &ColumnPool,
    m_penalty: f64,
    warm: Option<&SimplexBasis>,
    budget: Option<&SolveBudget>,
) -> Result<RmpOutcome, LpError> {
    let ncoup = structure.coupling_rows.len();
    let nblocks = structure.num_blocks;
    let penalty = match model.sense {
        Sense::Maximize => -m_penalty,
        Sense::Minimize => m_penalty,
    };

    let mut rmp = Model::new(model.sense);
    // λ columns, pool order, true objectives. Deliberately [0, ∞), not
    // [0, 1]: the convexity row caps the sum anyway, and a λ parked *at* an
    // upper bound would carry its reduced cost on the bound instead of the
    // convexity dual μ — breaking the pricing test `v_s - μ_s`.
    let lambdas: Vec<_> = pool
        .cols()
        .iter()
        .enumerate()
        .map(|(p, col)| rmp.add_var(format!("l{p}"), 0.0, f64::INFINITY, col.obj, false))
        .collect();
    // Artificial surplus columns: Le rows relax upward (`Σ aλ − t ≤ b`),
    // Ge rows downward, Eq rows both ways. The set is decided by row *op*
    // alone, so the master's column layout is stable across rounds and the
    // remapped warm basis stays valid.
    let mut art_terms: Vec<Vec<(crate::model::VarId, f64)>> = vec![Vec::new(); ncoup];
    let mut arts = Vec::new();
    for (pos, &row) in structure.coupling_rows.iter().enumerate() {
        match model.cons[row].op {
            ConstraintOp::Le => {
                let t = rmp.add_var(format!("art{pos}"), 0.0, f64::INFINITY, penalty, false);
                art_terms[pos].push((t, -1.0));
                arts.push(t);
            }
            ConstraintOp::Ge => {
                let t = rmp.add_var(format!("art{pos}"), 0.0, f64::INFINITY, penalty, false);
                art_terms[pos].push((t, 1.0));
                arts.push(t);
            }
            ConstraintOp::Eq => {
                let up = rmp.add_var(format!("art{pos}p"), 0.0, f64::INFINITY, penalty, false);
                let dn = rmp.add_var(format!("art{pos}m"), 0.0, f64::INFINITY, penalty, false);
                art_terms[pos].push((up, 1.0));
                art_terms[pos].push((dn, -1.0));
                arts.push(up);
                arts.push(dn);
            }
        }
    }

    // Coupling rows first (duals y), then convexity rows (duals μ).
    let mut row_terms: Vec<Vec<(crate::model::VarId, f64)>> = vec![Vec::new(); ncoup];
    for (p, col) in pool.cols().iter().enumerate() {
        for &(pos, a) in &col.coup {
            row_terms[pos].push((lambdas[p], a));
        }
    }
    for (pos, &row) in structure.coupling_rows.iter().enumerate() {
        let c = &model.cons[row];
        let mut terms = std::mem::take(&mut row_terms[pos]);
        terms.extend_from_slice(&art_terms[pos]);
        rmp.add_cons(format!("coup{pos}"), &terms, c.op, c.rhs);
    }
    for s in 0..nblocks {
        let terms: Vec<_> = pool
            .cols()
            .iter()
            .enumerate()
            .filter(|(_, col)| col.block == s)
            .map(|(p, _)| (lambdas[p], 1.0))
            .collect();
        rmp.add_cons(format!("conv{s}"), &terms, ConstraintOp::Eq, 1.0);
    }

    // Solve the standard form directly, skipping presolve: in early rounds a
    // block with a single pooled column makes its convexity row a singleton,
    // which presolve would fold into the λ's bounds and free — reporting a
    // zero dual for a row whose μ the pricing test depends on. The direct
    // path also keeps the column layout exactly `[λ | artificials | slacks]`,
    // which is what [`super::columns::remap_basis`] assumes.
    rmp.validate()?;
    let sf = crate::standard::StandardForm::from_model(&rmp);
    let sol = crate::simplex::solve_standard_form_budgeted(&sf, rmp.num_vars(), &[], warm, budget)?;
    if let Some(cause) = sol.stats.budget_stop {
        return Err(LpError::Budget(cause));
    }
    if sol.status != SolveStatus::Optimal {
        return Err(LpError::Numerical(format!(
            "restricted master came back {:?}",
            sol.status
        )));
    }
    let expected_duals = ncoup + nblocks;
    if sol.duals.len() != expected_duals {
        return Err(LpError::Numerical(format!(
            "restricted master returned {} duals, expected {expected_duals}",
            sol.duals.len()
        )));
    }
    let lambda: Vec<f64> = lambdas.iter().map(|&v| sol.values[v.index()]).collect();
    let art_sum: f64 = arts.iter().map(|&v| sol.values[v.index()].abs()).sum();
    let y = sol.duals[..ncoup].to_vec();
    let mu = sol.duals[ncoup..].to_vec();
    Ok(RmpOutcome {
        lambda,
        y,
        mu,
        art_sum,
        stats: sol.stats,
        basis: sol.basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::columns::Column;
    use crate::decomp::BlockStructure;

    /// Two singleton blocks coupled by `a + b <= cap`.
    fn fixture(cap: f64) -> (Model, BlockStructure) {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 4.0, 3.0, false);
        let b = m.add_var("b", 0.0, 4.0, 2.0, false);
        m.add_cons("blk0", &[(a, 1.0)], ConstraintOp::Eq, 2.0);
        m.add_cons("blk1", &[(b, 1.0)], ConstraintOp::Eq, 2.0);
        m.add_cons("cap", &[(a, 1.0), (b, 1.0)], ConstraintOp::Le, cap);
        let s = BlockStructure::infer(&m, &[0, 1]).unwrap();
        (m, s)
    }

    fn seed_pool() -> ColumnPool {
        let mut pool = ColumnPool::new(2);
        pool.push(Column {
            block: 0,
            x: vec![2.0],
            obj: 6.0,
            coup: vec![(0, 2.0)],
        });
        pool.push(Column {
            block: 1,
            x: vec![2.0],
            obj: 4.0,
            coup: vec![(0, 2.0)],
        });
        pool
    }

    #[test]
    fn satisfied_coupling_leaves_artificials_at_zero() {
        let (m, s) = fixture(5.0);
        let out = solve_rmp(&m, &s, &seed_pool(), 1e6, None, None).unwrap();
        assert!(out.art_sum < 1e-9, "art mass {}", out.art_sum);
        assert!((out.lambda[0] - 1.0).abs() < 1e-7);
        assert!((out.lambda[1] - 1.0).abs() < 1e-7);
        // Slack coupling row: zero dual; convexity duals carry the column
        // objectives.
        assert!(out.y[0].abs() < 1e-7);
        assert!((out.mu[0] - 6.0).abs() < 1e-6);
        assert!((out.mu[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn violated_coupling_is_absorbed_by_artificials() {
        let (m, s) = fixture(3.0);
        let out = solve_rmp(&m, &s, &seed_pool(), 1e6, None, None).unwrap();
        // Each block has a single column pinned to 2.0 by convexity, so the
        // cap row needs 1.0 of artificial relief.
        assert!((out.art_sum - 1.0).abs() < 1e-6, "art mass {}", out.art_sum);
        // The coupling dual reflects the penalty: relaxing the cap by one
        // unit saves one unit of artificial at cost M.
        assert!(out.y[0] > 1e5, "penalty-scale dual, got {}", out.y[0]);
    }

    #[test]
    fn warm_basis_survives_pool_growth() {
        let (m, s) = fixture(5.0);
        let pool = seed_pool();
        let first = solve_rmp(&m, &s, &pool, 1e6, None, None).unwrap();
        let basis = first.basis.expect("master returns a basis");
        let mut grown = seed_pool();
        grown.push(Column {
            block: 0,
            x: vec![1.0],
            obj: 3.0,
            coup: vec![(0, 1.0)],
        });
        let warm = crate::decomp::columns::remap_basis(&basis, pool.len(), 1);
        let out = solve_rmp(&m, &s, &grown, 1e6, Some(&warm), None).unwrap();
        // Block 0 is pinned to a==2 by its convexity+column set, so the
        // objective is unchanged; the remapped basis must still be usable.
        assert!(out.art_sum < 1e-9);
        assert!((out.lambda[0] - 1.0).abs() < 1e-7);
    }
}
