//! Per-block pricing subproblems for the Dantzig-Wolfe loop.
//!
//! Each block keeps its own [`StandardForm`] (built once from the block's
//! private rows, bounds and variables) and its previous optimal basis. A
//! pricing round overwrites the form's objective with the reduced prices
//! `c_g − Σ_i y_i A[i,g]` and re-solves warm: the old vertex is still
//! primal feasible under a pure cost change, so the warm path's
//! dual-then-certify machinery restarts the walk from it instead of a cold
//! phase 1 — the cross-round carry the monolithic solver can't have.
//!
//! Rounds are embarrassingly parallel: blocks are chunked over scoped
//! threads, each worker exclusively owning its chunk's mutable state (no
//! shared mutability, hence no locks — the lock-discipline lint stays
//! trivially clean). Every worker answers to its own
//! [`SolveBudget::child`]: a hard error cancels all children so siblings
//! stop mid-round, while the request's own budget stays untouched.

use teccl_util::SolveBudget;

use crate::error::LpError;
use crate::model::{Model, Sense};
use crate::simplex::solve_standard_form_budgeted;
use crate::solution::{SolveStats, SolveStatus};
use crate::standard::StandardForm;

use super::columns::Column;
use super::BlockStructure;

/// Result of pricing one block.
#[derive(Debug)]
pub enum PriceOutcome {
    /// The subproblem certified: `value` is its optimum under the current
    /// prices (original sense) and `column` the optimal extreme point.
    Optimal { value: f64, column: Column },
    /// The block's own rows are infeasible — so is the whole LP (they are a
    /// relaxation of it).
    Infeasible,
    /// Unbounded or otherwise uncertified: extreme points alone cannot
    /// carry the master, the driver must fall back to the monolithic path.
    Uncertified,
}

/// One block's standing pricing state.
#[derive(Debug)]
pub struct PricingProblem {
    block: usize,
    sf: StandardForm,
    /// Structural (block-local) variable count.
    nvars: usize,
    /// True objective over the block's variables, block-local order.
    orig_obj: Vec<f64>,
    /// `(local_var, coupling_position, coefficient)` triplets of the
    /// block's footprint on the coupling rows.
    coup_terms: Vec<(usize, usize, f64)>,
    warm: Option<crate::basis::SimplexBasis>,
    /// Counters accumulated since the last [`take_round_stats`] drain.
    stats: SolveStats,
}

impl PricingProblem {
    /// Builds the block's private LP: its variables (global bounds kept),
    /// its private rows, objective initially zero (every solve goes through
    /// [`PricingProblem::price`], which installs the round's prices).
    pub fn build(model: &Model, structure: &BlockStructure, block: usize) -> Self {
        let vars = &structure.block_vars[block];
        let mut local_of = std::collections::HashMap::with_capacity(vars.len());
        let mut sub = Model::new(model.sense);
        let mut orig_obj = Vec::with_capacity(vars.len());
        for (local, &g) in vars.iter().enumerate() {
            let v = &model.vars[g];
            sub.add_var(v.name.clone(), v.lb, v.ub, 0.0, false);
            orig_obj.push(v.obj);
            local_of.insert(g, local);
        }
        for &row in &structure.block_rows[block] {
            let c = &model.cons[row];
            let terms: Vec<_> = c
                .terms
                .iter()
                .map(|(vid, a)| (crate::model::VarId(local_of[&vid.index()]), *a))
                .collect();
            sub.add_cons(c.name.clone(), &terms, c.op, c.rhs);
        }
        let mut coup_terms = Vec::new();
        for (pos, &row) in structure.coupling_rows.iter().enumerate() {
            for (vid, a) in &model.cons[row].terms {
                if let Some(&local) = local_of.get(&vid.index()) {
                    coup_terms.push((local, pos, *a));
                }
            }
        }
        let sf = StandardForm::from_model(&sub);
        Self {
            block,
            sf,
            nvars: vars.len(),
            orig_obj,
            coup_terms,
            warm: None,
            stats: SolveStats::default(),
        }
    }

    /// Re-solves the block under coupling duals `y` (zeros for the seeding
    /// round). Warm from the previous round's basis; the budget is checked
    /// at every pivot inside the simplex.
    pub fn price(
        &mut self,
        y: &[f64],
        budget: Option<&SolveBudget>,
    ) -> Result<PriceOutcome, LpError> {
        let mut price = self.orig_obj.clone();
        for &(local, pos, a) in &self.coup_terms {
            price[local] -= y[pos] * a;
        }
        // The standard form stores the *internal minimization* costs; slack
        // costs past `nvars` stay zero.
        for (local, &p) in price.iter().enumerate() {
            self.sf.c[local] = self.sf.obj_sign * p;
        }
        let sol =
            solve_standard_form_budgeted(&self.sf, self.nvars, &[], self.warm.as_ref(), budget)?;
        self.stats.absorb(&sol.stats);
        if let Some(cause) = sol.stats.budget_stop {
            return Err(LpError::Budget(cause));
        }
        match sol.status {
            SolveStatus::Optimal => {
                self.warm = sol.basis;
                let x = sol.values;
                let obj: f64 = self.orig_obj.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
                let ncoup = y.len();
                let mut coup_dense = vec![0.0; ncoup];
                for &(local, pos, a) in &self.coup_terms {
                    coup_dense[pos] += a * x[local];
                }
                let coup: Vec<(usize, f64)> = coup_dense
                    .into_iter()
                    .enumerate()
                    .filter(|(_, v)| v.abs() > 1e-12)
                    .collect();
                Ok(PriceOutcome::Optimal {
                    value: sol.objective,
                    column: Column {
                        block: self.block,
                        x,
                        obj,
                        coup,
                    },
                })
            }
            SolveStatus::Infeasible => Ok(PriceOutcome::Infeasible),
            _ => Ok(PriceOutcome::Uncertified),
        }
    }
}

/// Sense-aware improvement direction helper used by the driver's tests.
pub fn improvement(sense: Sense, value: f64, mu: f64) -> f64 {
    match sense {
        Sense::Maximize => value - mu,
        Sense::Minimize => mu - value,
    }
}

/// Prices every block under duals `y`, distributing blocks over up to
/// `threads` scoped workers. Results come back in block order regardless of
/// the worker count — thread count is a *how*, never a *what*.
pub fn price_round(
    probs: &mut [PricingProblem],
    y: &[f64],
    threads: usize,
    budget: Option<&SolveBudget>,
) -> Vec<Result<PriceOutcome, LpError>> {
    let workers = threads.max(1).min(probs.len().max(1));
    if workers <= 1 {
        let mut out = Vec::with_capacity(probs.len());
        for p in probs.iter_mut() {
            // Per-block budget check so an exhausted budget stops the round
            // between solves, not only inside them.
            if let Some(cause) = budget.and_then(|b| b.exceeded()) {
                out.push(Err(LpError::Budget(cause)));
                continue;
            }
            out.push(p.price(y, budget));
        }
        return out;
    }
    // Per-worker child budgets: same deadline/cap accounting as the
    // request's budget, plus a private cancel flag a hard-erroring worker
    // flips for all its siblings.
    let root = budget.cloned().unwrap_or_default();
    let children: Vec<SolveBudget> = (0..workers).map(|_| root.child()).collect();
    let chunk = probs.len().div_ceil(workers);
    let mut out = Vec::with_capacity(probs.len());
    std::thread::scope(|scope| {
        let children = &children;
        let mut handles = Vec::with_capacity(workers);
        for (w, slab) in probs.chunks_mut(chunk).enumerate() {
            handles.push(scope.spawn(move || {
                let mine = &children[w];
                let mut results = Vec::with_capacity(slab.len());
                for p in slab.iter_mut() {
                    if let Some(cause) = mine.exceeded() {
                        results.push(Err(LpError::Budget(cause)));
                        continue;
                    }
                    let r = p.price(y, Some(mine));
                    if matches!(r, Err(ref e) if !matches!(e, LpError::Budget(_))) {
                        // Hard error: no result from this round can be
                        // used, so stop every sibling mid-round. The
                        // request's own budget is an ancestor and stays
                        // untouched.
                        for sibling in children.iter() {
                            sibling.cancel();
                        }
                    }
                    results.push(r);
                }
                results
            }));
        }
        for h in handles {
            out.extend(h.join().expect("pricing worker panicked"));
        }
    });
    out
}

/// Drains the per-block counters accumulated since the previous drain (the
/// driver folds them into the solve-wide stats once per round).
pub fn take_round_stats(probs: &mut [PricingProblem]) -> Vec<SolveStats> {
    probs
        .iter_mut()
        .map(|p| std::mem::take(&mut p.stats))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConstraintOp;

    /// One block: max 3a + 2b s.t. a + b == 4, a,b ∈ [0,4]; one coupling
    /// row `a <= 1` (position 0).
    fn one_block() -> (Model, BlockStructure) {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 4.0, 3.0, false);
        let b = m.add_var("b", 0.0, 4.0, 2.0, false);
        let c = m.add_var("c", 0.0, 1.0, 0.0, false);
        m.add_cons("blk", &[(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 4.0);
        m.add_cons("coup", &[(a, 1.0), (c, 1.0)], ConstraintOp::Le, 1.0);
        let s = BlockStructure::infer(&m, &[0, 0, 1]).unwrap();
        (m, s)
    }

    #[test]
    fn seed_pricing_solves_true_objective() {
        let (m, s) = one_block();
        let mut p = PricingProblem::build(&m, &s, 0);
        match p.price(&[0.0], None).unwrap() {
            PriceOutcome::Optimal { value, column } => {
                // max 3a + 2b on a+b==4 → a=4, b=0, value 12.
                assert!((value - 12.0).abs() < 1e-7);
                assert!((column.x[0] - 4.0).abs() < 1e-7);
                assert_eq!(column.coup, vec![(0, 4.0)], "a's coupling footprint");
                assert!((column.obj - 12.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duals_steer_the_priced_vertex() {
        let (m, s) = one_block();
        let mut p = PricingProblem::build(&m, &s, 0);
        // y = 2 on the coupling row makes a's price 3 - 2 = 1 < 2 = b's:
        // the optimum flips to b=4.
        match p.price(&[2.0], None).unwrap() {
            PriceOutcome::Optimal { value, column } => {
                assert!((value - 8.0).abs() < 1e-7, "price·x = 2·4");
                assert!((column.x[1] - 4.0).abs() < 1e-7);
                assert!((column.obj - 8.0).abs() < 1e-7, "true obj of b=4");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_results_are_worker_count_invariant() {
        let (m, s) = one_block();
        let build = || {
            vec![
                PricingProblem::build(&m, &s, 0),
                PricingProblem::build(&m, &s, 1),
            ]
        };
        let mut seq = build();
        let seq_out = price_round(&mut seq, &[0.5], 1, None);
        for threads in [2, 8] {
            let mut par = build();
            let par_out = price_round(&mut par, &[0.5], threads, None);
            assert_eq!(par_out.len(), seq_out.len());
            for (a, b) in par_out.iter().zip(seq_out.iter()) {
                match (a, b) {
                    (
                        Ok(PriceOutcome::Optimal {
                            value: va,
                            column: ca,
                        }),
                        Ok(PriceOutcome::Optimal {
                            value: vb,
                            column: cb,
                        }),
                    ) => {
                        assert!((va - vb).abs() < 1e-12);
                        assert_eq!(ca.x, cb.x, "identical vertices at any worker count");
                    }
                    other => panic!("mismatched outcomes {other:?}"),
                }
            }
        }
    }

    #[test]
    fn exhausted_budget_stops_the_round() {
        let (m, s) = one_block();
        let mut probs = vec![
            PricingProblem::build(&m, &s, 0),
            PricingProblem::build(&m, &s, 1),
        ];
        let b = SolveBudget::unlimited();
        b.cancel();
        for threads in [1, 2] {
            let out = price_round(&mut probs, &[0.0], threads, Some(&b));
            assert!(out.iter().all(|r| matches!(r, Err(LpError::Budget(_)))));
        }
    }

    #[test]
    fn improvement_is_sense_aware() {
        assert!(improvement(Sense::Maximize, 5.0, 3.0) > 0.0);
        assert!(improvement(Sense::Maximize, 3.0, 5.0) < 0.0);
        assert!(improvement(Sense::Minimize, 3.0, 5.0) > 0.0);
        assert!(improvement(Sense::Minimize, 5.0, 3.0) < 0.0);
    }
}
