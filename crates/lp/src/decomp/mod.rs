//! Dantzig-Wolfe decomposition: column generation for block-angular LPs.
//!
//! The time-expanded multi-commodity-flow LP the copy-free path builds
//! (`teccl-core`'s `lp_form`) is the textbook block-angular shape: every
//! variable belongs to exactly one commodity **source** (its `F`/`B`/`r`
//! columns), every flow-conservation / initialization / destination row
//! touches one source only, and the *only* rows tying sources together are
//! the per-link-per-epoch capacity rows (plus the optional shared buffer
//! limits). This module exploits that:
//!
//! * [`BlockStructure::infer`] splits the model into per-block rows and the
//!   coupling rows, given a caller-supplied variable→block labelling,
//! * [`pricing`] keeps one small LP per block (the source's private
//!   polytope) and re-solves it each round under reduced costs, warm from
//!   its previous basis — pricing subproblems are independent and run in
//!   parallel on scoped threads with per-worker [`SolveBudget`] children,
//! * [`master`] rebuilds and re-solves the **restricted master problem**
//!   (RMP): one λ column per generated extreme point, the coupling rows, one
//!   convexity row per block, and big-M artificials so the RMP is always
//!   feasible (artificials above tolerance at convergence mean the LP is
//!   infeasible),
//! * [`solve_decomposed`] drives the loop, tracks the Lagrangian dual bound
//!   `y·b + Σ_s v_s` for an early-out optimality gap, and — when the budget
//!   trips — hands back the latest artificial-free RMP point as a
//!   `Feasible` incumbent with `stats.budget_stop` set, exactly what the
//!   service degradation ladder expects.
//!
//! The decomposition is an *algorithm* knob, never an answer knob: every
//! path that cannot certify (unbounded or non-optimal subproblems, RMP
//! trouble, numerical stalls, round caps) falls back to the monolithic
//! simplex, so `decompose: on` agrees with `off` to solver tolerance by
//! construction. Thread count only distributes the per-block solves — the
//! set of generated columns is identical at any worker count.

pub mod columns;
pub mod master;
pub mod pricing;

use std::time::Instant;

use teccl_util::SolveBudget;

use crate::error::LpError;
use crate::model::{Model, Sense};
use crate::solution::{Solution, SolveStats, SolveStatus};

pub use columns::{Column, ColumnPool};

/// Whether a solve may use the Dantzig-Wolfe decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decompose {
    /// Decompose when it should win: pure LP, at least
    /// [`DECOMP_MIN_ROWS`] rows, at least two blocks, more than one worker
    /// thread, and no iteration-capped budget (parallel pricing charges all
    /// workers' pivots to the shared counter and would trip a cap early,
    /// mirroring the portfolio-race gate).
    #[default]
    Auto,
    /// Decompose whenever the structure allows it (≥ 2 blocks, pure LP).
    On,
    /// Never decompose.
    Off,
}

impl Decompose {
    /// Stable wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Decompose::Auto => "auto",
            Decompose::On => "on",
            Decompose::Off => "off",
        }
    }

    /// Inverse of [`Decompose::name`].
    pub fn from_name(name: &str) -> Option<Decompose> {
        match name {
            "auto" => Some(Decompose::Auto),
            "on" => Some(Decompose::On),
            "off" => Some(Decompose::Off),
            _ => None,
        }
    }
}

/// `auto` row threshold: below this the monolithic simplex wins outright
/// (decomposition pays per-round RMP rebuilds), so `Decompose::Auto` only
/// engages at or above it — the same shape as `par::RACE_MIN_ROWS`.
pub const DECOMP_MIN_ROWS: usize = 400;

/// Knobs of [`solve_decomposed`].
#[derive(Debug, Clone, Copy)]
pub struct DecompOptions {
    /// Worker threads for the parallel pricing round (the RMP stays
    /// sequential). Clamped to at least 1.
    pub threads: usize,
    /// Relative Lagrangian-gap early-out: certify once
    /// `|bound - incumbent| <= gap_tol * max(1, |incumbent|)` with an
    /// artificial-free master.
    pub gap_tol: f64,
    /// Hard cap on column-generation rounds; hitting it falls back to the
    /// monolithic simplex (correct, just not decomposed).
    pub max_rounds: usize,
}

impl Default for DecompOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            gap_tol: 1e-9,
            max_rounds: 2000,
        }
    }
}

/// The block-angular split of a [`Model`]: which rows belong to which block
/// and which rows couple them.
#[derive(Debug, Clone)]
pub struct BlockStructure {
    /// Number of blocks.
    pub num_blocks: usize,
    /// Block of each variable, indexed by `VarId::index()`.
    pub var_block: Vec<usize>,
    /// Global variable indices of each block, ascending.
    pub block_vars: Vec<Vec<usize>>,
    /// Global constraint indices private to each block (all terms in one
    /// block).
    pub block_rows: Vec<Vec<usize>>,
    /// Global constraint indices touching two or more blocks (or none —
    /// a constant row is checked in the master like any coupling row).
    pub coupling_rows: Vec<usize>,
}

impl BlockStructure {
    /// Classifies the model's rows for a caller-supplied variable→block
    /// labelling (the builder of the model knows its blocks — `lp_form`
    /// labels every `F`/`B`/`r` column with its source). Fails if the
    /// labelling does not cover every variable.
    pub fn infer(model: &Model, var_block: &[usize]) -> Result<Self, LpError> {
        if var_block.len() != model.num_vars() {
            return Err(LpError::Numerical(format!(
                "block labelling covers {} of {} variables",
                var_block.len(),
                model.num_vars()
            )));
        }
        let num_blocks = var_block.iter().copied().max().map_or(0, |b| b + 1);
        let mut block_vars = vec![Vec::new(); num_blocks];
        for (j, &b) in var_block.iter().enumerate() {
            block_vars[b].push(j);
        }
        let mut block_rows = vec![Vec::new(); num_blocks];
        let mut coupling_rows = Vec::new();
        for (i, c) in model.cons.iter().enumerate() {
            let mut owner: Option<usize> = None;
            let mut coupled = c.terms.is_empty();
            for (vid, _) in &c.terms {
                let b = var_block[vid.index()];
                match owner {
                    None => owner = Some(b),
                    Some(o) if o != b => {
                        coupled = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if coupled {
                coupling_rows.push(i);
            } else if let Some(o) = owner {
                block_rows[o].push(i);
            }
        }
        Ok(Self {
            num_blocks,
            var_block: var_block.to_vec(),
            block_vars,
            block_rows,
            coupling_rows,
        })
    }
}

/// The `auto`/`on`/`off` engagement decision (shared by `lp_form` and the
/// tests so the gate has exactly one definition).
pub fn should_decompose(
    choice: Decompose,
    model: &Model,
    structure: &BlockStructure,
    threads: usize,
    budget: Option<&SolveBudget>,
) -> bool {
    let splittable = structure.num_blocks >= 2 && !model.is_mip();
    match choice {
        Decompose::Off => false,
        Decompose::On => splittable,
        Decompose::Auto => {
            splittable
                && threads > 1
                && model.num_cons() >= DECOMP_MIN_ROWS
                && budget.is_none_or(|b| !b.has_iteration_cap())
        }
    }
}

/// Relative reduced-cost tolerance for accepting a priced column.
const RC_TOL: f64 = 1e-9;
/// Artificial mass above which the master point is not primal-usable.
const ART_TOL: f64 = 1e-6;
/// Big-M escalation ceiling: artificials persisting at this penalty mean
/// the coupling rows are genuinely unsatisfiable.
const M_MAX: f64 = 1e13;

/// Solves a block-angular LP by Dantzig-Wolfe column generation.
///
/// Correctness contract (the fuzz suite pins it): same status as the
/// monolithic [`Model::solve_lp_relaxation`], objective equal to `1e-6`.
/// Paths that cannot certify fall back to the monolithic simplex inside
/// this call. On a budget stop with an artificial-free master incumbent the
/// result is `Feasible` with `stats.budget_stop` set; with no incumbent,
/// [`LpError::Budget`].
pub fn solve_decomposed(
    model: &Model,
    structure: &BlockStructure,
    budget: Option<&SolveBudget>,
    opts: &DecompOptions,
) -> Result<Solution, LpError> {
    model.validate()?;
    let start = Instant::now();
    if model.is_mip() || structure.num_blocks < 2 {
        return fallback(model, budget, opts, SolveStats::default(), start);
    }

    let dir = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let ncoup = structure.coupling_rows.len();
    let b_coup: Vec<f64> = structure
        .coupling_rows
        .iter()
        .map(|&i| model.cons[i].rhs)
        .collect();

    let mut stats = SolveStats::default();
    let mut probs: Vec<pricing::PricingProblem> = (0..structure.num_blocks)
        .map(|s| pricing::PricingProblem::build(model, structure, s))
        .collect();
    let mut pool = ColumnPool::new(structure.num_blocks);

    // Round 0: true-objective block solves (zero duals) seed one column per
    // block. A block infeasible on its own rows proves the LP infeasible; an
    // unbounded or uncertified block means extreme points alone cannot span
    // the answer, so the monolithic simplex takes over.
    let zeros = vec![0.0; ncoup];
    let seed = pricing::price_round(&mut probs, &zeros, opts.threads, budget);
    for st in pricing::take_round_stats(&mut probs) {
        stats.absorb(&st);
    }
    match merge_round(seed, budget) {
        RoundOutcome::Priced(cols) => {
            for (_v, col) in cols {
                pool.push(col);
            }
        }
        RoundOutcome::Infeasible => {
            let mut sol = crate::model::infeasible_solution(model.num_vars());
            sol.stats = stats;
            sol.stats.solve_time = start.elapsed();
            return Ok(sol);
        }
        RoundOutcome::Budget(cause) => return Err(LpError::Budget(cause)),
        RoundOutcome::Abort => return fallback(model, budget, opts, stats, start),
    }

    // Big-M penalty scaled to the seed columns' objectives; escalated when
    // column generation converges with artificials still in the basis.
    let obj_scale = pool
        .cols()
        .iter()
        .map(|c| c.obj.abs())
        .fold(1.0f64, f64::max);
    let mut m_penalty = 1e6_f64.max(1e4 * obj_scale);

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut rmp_basis = None;
    let mut lambda_at_basis = 0usize;
    let mut stalled = 0usize;
    let mut rounds = 0usize;
    let finish_budget = |cause,
                         incumbent: Option<(Vec<f64>, f64)>,
                         mut stats: SolveStats,
                         rounds: usize,
                         ncols: usize| match incumbent {
        Some((x, obj)) => {
            stats.budget_stop = Some(cause);
            stats.dw_rounds = rounds;
            stats.dw_columns = ncols;
            stats.solve_time = start.elapsed();
            Ok(Solution {
                status: SolveStatus::Feasible,
                objective: obj,
                values: x,
                duals: Vec::new(),
                stats,
                basis: None,
            })
        }
        None => Err(LpError::Budget(cause)),
    };

    loop {
        rounds += 1;
        if let Some(b) = budget {
            // One round = one charged unit on top of the per-pivot charges
            // the RMP and pricing solves make themselves.
            if let Err(cause) = b.charge(1) {
                return finish_budget(cause, incumbent, stats, rounds, pool.len());
            }
        }
        if rounds > opts.max_rounds {
            return fallback(model, budget, opts, stats, start);
        }

        let warm = rmp_basis
            .as_ref()
            .map(|b| columns::remap_basis(b, lambda_at_basis, pool.len() - lambda_at_basis));
        let rmp = match master::solve_rmp(model, structure, &pool, m_penalty, warm.as_ref(), budget)
        {
            Ok(r) => r,
            Err(LpError::Budget(cause)) => {
                return finish_budget(cause, incumbent, stats, rounds, pool.len())
            }
            Err(_) => return fallback(model, budget, opts, stats, start),
        };
        stats.absorb(&rmp.stats);
        lambda_at_basis = pool.len();
        rmp_basis = rmp.basis;
        if rmp.art_sum <= ART_TOL {
            let x = pool.assemble(structure, model.num_vars(), &rmp.lambda);
            let obj = model.eval_objective(&x);
            incumbent = Some((x, obj));
        }

        let round = pricing::price_round(&mut probs, &rmp.y, opts.threads, budget);
        let priced = match merge_round(round, budget) {
            RoundOutcome::Priced(cols) => cols,
            RoundOutcome::Infeasible => {
                let mut sol = crate::model::infeasible_solution(model.num_vars());
                sol.stats = stats;
                sol.stats.solve_time = start.elapsed();
                return Ok(sol);
            }
            RoundOutcome::Budget(cause) => {
                return finish_budget(cause, incumbent, stats, rounds, pool.len())
            }
            RoundOutcome::Abort => return fallback(model, budget, opts, stats, start),
        };
        for st in pricing::take_round_stats(&mut probs) {
            stats.absorb(&st);
        }

        // Lagrangian dual bound: `y·b + Σ_s v_s` is a valid bound for any
        // sign-feasible y (which the RMP optimum's duals are), artificials
        // or not — only the *incumbent* side needs an artificial-free
        // master.
        let bound: f64 = rmp
            .y
            .iter()
            .zip(b_coup.iter())
            .map(|(y, b)| y * b)
            .sum::<f64>()
            + priced.iter().map(|(v, _)| v).sum::<f64>();
        if let Some((_, inc_obj)) = &incumbent {
            stats.best_bound = bound;
            let gap = dir * (bound - inc_obj);
            if rmp.art_sum <= ART_TOL && gap <= opts.gap_tol * inc_obj.abs().max(1.0) {
                return finish_optimal(model, incumbent, stats, rounds, pool.len(), start);
            }
        }

        let mut any_improving = false;
        let mut added = 0usize;
        for (s, (v, col)) in priced.into_iter().enumerate() {
            let improvement = dir * (v - rmp.mu[s]);
            if improvement > RC_TOL * v.abs().max(1.0) {
                any_improving = true;
                if pool.push(col) {
                    added += 1;
                }
            }
        }

        if !any_improving {
            if rmp.art_sum <= ART_TOL {
                // No block prices out and the master is artificial-free:
                // the RMP optimum is optimal for the full LP.
                return finish_optimal(model, incumbent, stats, rounds, pool.len(), start);
            }
            // Converged but infeasible at this penalty — escalate M until
            // the artificials either leave or prove the coupling rows
            // unsatisfiable.
            if m_penalty >= M_MAX {
                let mut sol = crate::model::infeasible_solution(model.num_vars());
                sol.stats = stats;
                sol.stats.dw_rounds = rounds;
                sol.stats.dw_columns = pool.len();
                sol.stats.solve_time = start.elapsed();
                return Ok(sol);
            }
            m_penalty *= 100.0;
            continue;
        }
        if added == 0 {
            // Blocks claim improvement but every priced column is already in
            // the pool: dual-tolerance noise. One retry (the RMP may still
            // move), then hand over to the monolithic simplex.
            stalled += 1;
            if stalled >= 2 {
                return fallback(model, budget, opts, stats, start);
            }
        } else {
            stalled = 0;
        }
    }
}

/// Certified outcome: the incumbent (assembled from the final
/// artificial-free master) is optimal.
fn finish_optimal(
    model: &Model,
    incumbent: Option<(Vec<f64>, f64)>,
    mut stats: SolveStats,
    rounds: usize,
    ncols: usize,
    start: Instant,
) -> Result<Solution, LpError> {
    let (x, obj) = incumbent.expect("optimal exit requires an artificial-free master");
    stats.dw_rounds = rounds;
    stats.dw_columns = ncols;
    stats.mip_gap = 0.0;
    stats.solve_time = start.elapsed();
    debug_assert!(model.is_feasible(&x, 1e-5));
    Ok(Solution {
        status: SolveStatus::Optimal,
        objective: obj,
        values: x,
        // Duals of the original rows are not assembled (downstream of the
        // decomposed path nothing consumes them); callers needing duals
        // solve monolithically.
        duals: Vec::new(),
        stats,
        basis: None,
    })
}

/// The always-correct escape hatch: any path that cannot certify through
/// the master/pricing loop re-solves monolithically (threaded, so the
/// portfolio race still applies when it is worth it). `dw_rounds` stays 0.
fn fallback(
    model: &Model,
    budget: Option<&SolveBudget>,
    opts: &DecompOptions,
    stats: SolveStats,
    start: Instant,
) -> Result<Solution, LpError> {
    let mut sol = model.solve_lp_relaxation_threaded(None, budget, opts.threads.max(1))?;
    sol.stats.absorb(&stats);
    sol.stats.dw_rounds = 0;
    sol.stats.dw_columns = 0;
    sol.stats.solve_time = start.elapsed();
    Ok(sol)
}

/// Per-round merge of the per-block pricing results.
enum RoundOutcome {
    /// Every block certified: `(v_s, column)` per block, in block order.
    Priced(Vec<(f64, Column)>),
    Infeasible,
    Budget(teccl_util::BudgetExceeded),
    Abort,
}

fn merge_round(
    results: Vec<Result<pricing::PriceOutcome, LpError>>,
    budget: Option<&SolveBudget>,
) -> RoundOutcome {
    let mut cols = Vec::with_capacity(results.len());
    let mut budget_cause = None;
    for r in results {
        match r {
            Ok(pricing::PriceOutcome::Optimal { value, column }) => cols.push((value, column)),
            Ok(pricing::PriceOutcome::Infeasible) => return RoundOutcome::Infeasible,
            Ok(pricing::PriceOutcome::Uncertified) => return RoundOutcome::Abort,
            Err(LpError::Budget(cause)) => budget_cause = Some(cause),
            Err(_) => return RoundOutcome::Abort,
        }
    }
    if let Some(cause) = budget_cause {
        // A worker tripped its child budget: either the request budget is
        // really exhausted (report that cause) or a sibling hard-error
        // cancelled the round (covered by Abort above — reaching here with a
        // live parent budget means a plain child-level trip, still a stop).
        return RoundOutcome::Budget(budget.and_then(|b| b.exceeded()).unwrap_or(cause));
    }
    RoundOutcome::Priced(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Sense};

    /// Two 2-variable blocks, one coupling capacity row.
    ///
    /// max 3a + 2b + 2c + 1d
    ///  s.t. a + b == 4        (block 0)
    ///       c + d == 3        (block 1)
    ///       a + c <= 5        (coupling)
    ///       0 <= all <= 4
    fn coupled_model() -> (Model, BlockStructure) {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 4.0, 3.0, false);
        let b = m.add_var("b", 0.0, 4.0, 2.0, false);
        let c = m.add_var("c", 0.0, 4.0, 2.0, false);
        let d = m.add_var("d", 0.0, 4.0, 1.0, false);
        m.add_cons("blk0", &[(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 4.0);
        m.add_cons("blk1", &[(c, 1.0), (d, 1.0)], ConstraintOp::Eq, 3.0);
        m.add_cons("cap", &[(a, 1.0), (c, 1.0)], ConstraintOp::Le, 5.0);
        let s = BlockStructure::infer(&m, &[0, 0, 1, 1]).unwrap();
        (m, s)
    }

    #[test]
    fn structure_classifies_rows() {
        let (_, s) = coupled_model();
        assert_eq!(s.num_blocks, 2);
        assert_eq!(s.block_vars, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(s.block_rows, vec![vec![0], vec![1]]);
        assert_eq!(s.coupling_rows, vec![2]);
    }

    #[test]
    fn structure_rejects_partial_labelling() {
        let (m, _) = coupled_model();
        assert!(BlockStructure::infer(&m, &[0, 0, 1]).is_err());
    }

    #[test]
    fn decomposed_matches_monolithic_optimum() {
        let (m, s) = coupled_model();
        let mono = m.solve_lp_relaxation().unwrap();
        for threads in [1, 4] {
            let opts = DecompOptions {
                threads,
                ..Default::default()
            };
            let dw = solve_decomposed(&m, &s, None, &opts).unwrap();
            assert_eq!(dw.status, SolveStatus::Optimal);
            assert!(
                (dw.objective - mono.objective).abs() < 1e-6,
                "decomposed {} vs monolithic {} at {threads} threads",
                dw.objective,
                mono.objective
            );
            assert!(dw.stats.dw_rounds > 0, "must certify via column generation");
            assert!(m.is_feasible(&dw.values, 1e-6));
        }
    }

    #[test]
    fn decomposed_detects_coupling_infeasibility() {
        // Both blocks force their variable to 2, the coupling row wants the
        // sum below 3: blocks are feasible alone, the LP is not.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 4.0, 1.0, false);
        let b = m.add_var("b", 0.0, 4.0, 1.0, false);
        m.add_cons("blk0", &[(a, 1.0)], ConstraintOp::Eq, 2.0);
        m.add_cons("blk1", &[(b, 1.0)], ConstraintOp::Eq, 2.0);
        m.add_cons("cap", &[(a, 1.0), (b, 1.0)], ConstraintOp::Le, 3.0);
        let s = BlockStructure::infer(&m, &[0, 1]).unwrap();
        let dw = solve_decomposed(&m, &s, None, &DecompOptions::default()).unwrap();
        assert_eq!(dw.status, SolveStatus::Infeasible);
        let mono = m.solve_lp_relaxation().unwrap();
        assert_eq!(mono.status, SolveStatus::Infeasible);
    }

    #[test]
    fn decomposed_detects_block_infeasibility() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 1.0, 1.0, false);
        let b = m.add_var("b", 0.0, 4.0, 1.0, false);
        m.add_cons("blk0", &[(a, 1.0)], ConstraintOp::Eq, 3.0); // a <= 1
        m.add_cons("blk1", &[(b, 1.0)], ConstraintOp::Eq, 2.0);
        m.add_cons("cap", &[(a, 1.0), (b, 1.0)], ConstraintOp::Le, 9.0);
        let s = BlockStructure::infer(&m, &[0, 1]).unwrap();
        let dw = solve_decomposed(&m, &s, None, &DecompOptions::default()).unwrap();
        assert_eq!(dw.status, SolveStatus::Infeasible);
    }

    #[test]
    fn single_block_and_mip_fall_back() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 4.0, 1.0, false);
        m.add_cons("c", &[(a, 1.0)], ConstraintOp::Le, 2.0);
        let s = BlockStructure::infer(&m, &[0]).unwrap();
        let sol = solve_decomposed(&m, &s, None, &DecompOptions::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert_eq!(sol.stats.dw_rounds, 0, "single block cannot decompose");
    }

    #[test]
    fn budget_stop_returns_incumbent_or_budget_error() {
        let (m, s) = coupled_model();
        // A zero-iteration budget trips before any incumbent exists.
        let b = SolveBudget::with_iteration_cap(0);
        match solve_decomposed(&m, &s, Some(&b), &DecompOptions::default()) {
            Err(LpError::Budget(_)) => {}
            Ok(sol) => panic!("cap 0 must not certify, got {:?}", sol.status),
            Err(e) => panic!("unexpected error {e}"),
        }
        // A cancelled budget reports `Cancelled`.
        let b = SolveBudget::unlimited();
        b.cancel();
        match solve_decomposed(&m, &s, Some(&b), &DecompOptions::default()) {
            Err(LpError::Budget(teccl_util::BudgetExceeded::Cancelled)) => {}
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn auto_gate_mirrors_race_gate() {
        let (m, s) = coupled_model();
        // Too small and single-threaded: auto stays off.
        assert!(!should_decompose(Decompose::Auto, &m, &s, 1, None));
        assert!(!should_decompose(Decompose::Auto, &m, &s, 4, None));
        assert!(should_decompose(Decompose::On, &m, &s, 1, None));
        assert!(!should_decompose(Decompose::Off, &m, &s, 8, None));
        // A big-enough model with threads engages, unless iteration-capped.
        let mut big = m.clone();
        let a = crate::model::VarId(0);
        for i in 0..DECOMP_MIN_ROWS {
            big.add_cons(format!("pad{i}"), &[(a, 1.0)], ConstraintOp::Le, 100.0);
        }
        let s = BlockStructure::infer(&big, &[0, 0, 1, 1]).unwrap();
        assert!(should_decompose(Decompose::Auto, &big, &s, 4, None));
        let capped = SolveBudget::with_iteration_cap(10);
        assert!(!should_decompose(
            Decompose::Auto,
            &big,
            &s,
            4,
            Some(&capped)
        ));
        let uncapped = SolveBudget::with_deadline(std::time::Duration::from_secs(5));
        assert!(should_decompose(
            Decompose::Auto,
            &big,
            &s,
            4,
            Some(&uncapped)
        ));
    }

    #[test]
    fn decompose_names_roundtrip() {
        for d in [Decompose::Auto, Decompose::On, Decompose::Off] {
            assert_eq!(Decompose::from_name(d.name()), Some(d));
        }
        assert_eq!(Decompose::from_name("sideways"), None);
        assert_eq!(Decompose::default(), Decompose::Auto);
    }

    #[test]
    fn minimize_sense_agrees_too() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", 0.0, 9.0, 2.0, false);
        let b = m.add_var("b", 0.0, 9.0, 5.0, false);
        let c = m.add_var("c", 0.0, 9.0, 1.0, false);
        let d = m.add_var("d", 0.0, 9.0, 4.0, false);
        m.add_cons("blk0", &[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 3.0);
        m.add_cons("blk1", &[(c, 1.0), (d, 1.0)], ConstraintOp::Ge, 5.0);
        m.add_cons("cap", &[(a, 1.0), (c, 1.0)], ConstraintOp::Le, 4.0);
        let s = BlockStructure::infer(&m, &[0, 0, 1, 1]).unwrap();
        let mono = m.solve_lp_relaxation().unwrap();
        let dw = solve_decomposed(&m, &s, None, &DecompOptions::default()).unwrap();
        assert_eq!(dw.status, mono.status);
        assert!(
            (dw.objective - mono.objective).abs() < 1e-6,
            "{} vs {}",
            dw.objective,
            mono.objective
        );
        assert!(dw.stats.dw_rounds > 0);
    }
}
