//! Column storage for the Dantzig-Wolfe restricted master.
//!
//! Each column is one extreme point of one block's private polytope, cached
//! with everything the master needs: its true objective value and its
//! footprint on the coupling rows. The pool deduplicates columns exactly
//! (quantized coordinates), because a re-priced duplicate is the classic
//! symptom of dual-tolerance noise — the driver treats it as a stall signal
//! rather than letting the master grow without progress.

use std::collections::HashSet;

use crate::basis::{SimplexBasis, VarStatus};

use super::BlockStructure;

/// One extreme point of a block polytope, stored block-locally.
#[derive(Debug, Clone)]
pub struct Column {
    /// Owning block.
    pub block: usize,
    /// Values over the block's variables, in block-local (ascending global)
    /// order.
    pub x: Vec<f64>,
    /// True objective contribution `Σ_g c_g · x_g`.
    pub obj: f64,
    /// Nonzero footprint on the coupling rows: `(coupling_position,
    /// Σ_g A[i,g] · x_g)` pairs, ascending by position.
    pub coup: Vec<(usize, f64)>,
}

/// The growing column set the restricted master optimizes over.
#[derive(Debug)]
pub struct ColumnPool {
    cols: Vec<Column>,
    per_block: Vec<usize>,
    seen: Vec<HashSet<Vec<i64>>>,
}

/// Quantization grid for exact deduplication (1e-9 resolution: well inside
/// solver tolerance, far outside f64 noise at schedule magnitudes).
fn quantize(x: &[f64]) -> Vec<i64> {
    x.iter()
        .map(|&v| (v * 1e9).round().clamp(i64::MIN as f64, i64::MAX as f64) as i64)
        .collect()
}

impl ColumnPool {
    /// An empty pool over `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> Self {
        Self {
            cols: Vec::new(),
            per_block: vec![0; num_blocks],
            seen: vec![HashSet::new(); num_blocks],
        }
    }

    /// Total columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Columns in insertion order (the master's λ variable order).
    pub fn cols(&self) -> &[Column] {
        &self.cols
    }

    /// Columns a block has contributed.
    pub fn block_count(&self, block: usize) -> usize {
        self.per_block[block]
    }

    /// Adds a column unless an identical one (to 1e-9 per coordinate) is
    /// already pooled. Returns whether the pool grew.
    pub fn push(&mut self, col: Column) -> bool {
        let key = quantize(&col.x);
        if !self.seen[col.block].insert(key) {
            return false;
        }
        self.per_block[col.block] += 1;
        self.cols.push(col);
        true
    }

    /// Maps master multipliers back to the original variable space:
    /// `x_g = Σ_p λ_p · x_p[g]` within each block.
    pub fn assemble(
        &self,
        structure: &BlockStructure,
        num_vars: usize,
        lambda: &[f64],
    ) -> Vec<f64> {
        let mut x = vec![0.0; num_vars];
        for (col, &l) in self.cols.iter().zip(lambda.iter()) {
            if l.abs() < 1e-12 {
                continue;
            }
            for (local, &g) in structure.block_vars[col.block].iter().enumerate() {
                x[g] += l * col.x[local];
            }
        }
        x
    }
}

/// Remaps a master basis across a pool growth of `added` λ columns.
///
/// The master's standard form is `[λ_0..λ_{L-1} | artificials | slacks]`;
/// new λ columns are appended at position `L`, pushing artificials and
/// slacks up by `added` while the row set stays fixed. The new columns
/// enter nonbasic at their lower bound (zero weight), so the remapped basis
/// describes exactly the previous optimal vertex and the warm path prices
/// the newcomers in dually.
pub fn remap_basis(old: &SimplexBasis, old_lambda: usize, added: usize) -> SimplexBasis {
    let shift = |j: usize| if j < old_lambda { j } else { j + added };
    let basic = old.basic.iter().map(|&j| shift(j)).collect();
    let mut status = Vec::with_capacity(old.status.len() + added);
    status.extend_from_slice(&old.status[..old_lambda.min(old.status.len())]);
    status.extend(std::iter::repeat_n(VarStatus::AtLower, added));
    if old_lambda < old.status.len() {
        status.extend_from_slice(&old.status[old_lambda..]);
    }
    SimplexBasis { basic, status }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn two_block_structure() -> BlockStructure {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, 1.0, 1.0, false);
        let b = m.add_var("b", 0.0, 1.0, 1.0, false);
        m.add_cons("cap", &[(a, 1.0), (b, 1.0)], ConstraintOp::Le, 1.0);
        BlockStructure::infer(&m, &[0, 1]).unwrap()
    }

    #[test]
    fn pool_dedupes_identical_columns() {
        let mut pool = ColumnPool::new(2);
        let col = Column {
            block: 0,
            x: vec![1.0, 2.0],
            obj: 3.0,
            coup: vec![(0, 1.0)],
        };
        assert!(pool.push(col.clone()));
        assert!(!pool.push(col.clone()), "exact duplicate must be rejected");
        // The same coordinates in the *other* block are a different column.
        assert!(pool.push(Column { block: 1, ..col }));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.block_count(0), 1);
        assert_eq!(pool.block_count(1), 1);
        // A sub-tolerance perturbation is still the same column...
        assert!(!pool.push(Column {
            block: 0,
            x: vec![1.0 + 1e-12, 2.0],
            obj: 3.0,
            coup: vec![(0, 1.0)],
        }));
        // ...a super-tolerance one is not.
        assert!(pool.push(Column {
            block: 0,
            x: vec![1.0 + 1e-6, 2.0],
            obj: 3.0,
            coup: vec![(0, 1.0)],
        }));
    }

    #[test]
    fn assemble_convex_combines_per_block() {
        let s = two_block_structure();
        let mut pool = ColumnPool::new(2);
        pool.push(Column {
            block: 0,
            x: vec![1.0],
            obj: 1.0,
            coup: vec![],
        });
        pool.push(Column {
            block: 0,
            x: vec![0.0],
            obj: 0.0,
            coup: vec![],
        });
        pool.push(Column {
            block: 1,
            x: vec![0.5],
            obj: 0.5,
            coup: vec![],
        });
        let x = pool.assemble(&s, 2, &[0.25, 0.75, 1.0]);
        assert!((x[0] - 0.25).abs() < 1e-12);
        assert!((x[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn basis_remap_shifts_arts_and_slacks() {
        // 2 λ + 1 artificial + 2 slacks, one λ added.
        let old = SimplexBasis {
            basic: vec![1, 3],
            status: vec![
                VarStatus::AtLower, // λ0
                VarStatus::Basic,   // λ1
                VarStatus::AtLower, // artificial
                VarStatus::Basic,   // slack row 0
                VarStatus::AtUpper, // slack row 1
            ],
        };
        let new = remap_basis(&old, 2, 1);
        assert_eq!(new.basic, vec![1, 4], "post-λ indices shift by the growth");
        assert_eq!(
            new.status,
            vec![
                VarStatus::AtLower,
                VarStatus::Basic,
                VarStatus::AtLower, // the new λ, nonbasic at zero
                VarStatus::AtLower,
                VarStatus::Basic,
                VarStatus::AtUpper,
            ]
        );
    }
}
