//! # teccl-lp
//!
//! A self-contained linear-programming (LP) and mixed-integer linear-programming
//! (MILP) solver used as the optimization substrate for TE-CCL.
//!
//! The TE-CCL paper solves its formulations with Gurobi. No mature pure-Rust
//! LP/MILP solver exists in the offline crate set, so this crate implements the
//! pieces the paper's formulations need from scratch:
//!
//! * a **model builder** ([`Model`]) with bounded continuous and integer
//!   variables, linear constraints (`<=`, `>=`, `==`) and a linear objective,
//! * a **layout-preserving presolver** ([`presolve`]) that pins fixed
//!   variables by `lb == ub` bounds and frees redundant/forcing/singleton
//!   rows by relaxing their slacks — the column space is identical with
//!   presolve on or off, so any basis warm-starts any same-shaped solve
//!   (TE-CCL models contain many structurally-forced-zero flow variables
//!   near the time boundaries, so the reductions matter a lot),
//! * a **two-phase bounded-variable revised simplex** ([`simplex`]) on a sparse
//!   LU-factorized basis with eta updates and Markowitz-tie-broken pivoting
//!   ([`basis`]), a crash slack basis, devex candidate-list pricing, an
//!   EXPAND anti-cycling ratio test, and **warm starts** from a prior basis
//!   ([`simplex::solve_standard_form_from`]) re-optimized by a dual simplex,
//! * a **branch-and-bound MILP solver** ([`milp`]) with a rounding heuristic,
//!   relative-gap early stop (the paper's "early stop at 30%" mode), a time
//!   limit (the paper's 2-hour Gurobi timeout), **hot node re-solves** (each
//!   child starts from its parent's optimal basis instead of a cold
//!   all-artificial phase 1), and **per-node presolve** (bound propagation
//!   plus light probing feeding the dual re-solve's override list).
//!
//! The solver is deterministic: the same model always produces the same
//! solution, mirroring the reliability claim TE-CCL makes versus TACCL.
//!
//! ## Quick example
//!
//! ```
//! use teccl_lp::{Model, Sense, ConstraintOp, SolveStatus};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, y <= 3, x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
//! m.add_cons("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! m.add_cons("bx", &[(x, 1.0)], ConstraintOp::Le, 2.0);
//! m.add_cons("by", &[(y, 1.0)], ConstraintOp::Le, 3.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.status, SolveStatus::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! ```

pub mod basis;
pub(crate) mod dual;
pub mod error;
pub mod milp;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod sparse;
pub mod standard;

pub use basis::{LuFactors, SimplexBasis, VarStatus};
pub use error::LpError;
pub use milp::{MilpConfig, MilpSolver};
pub use model::{ConstraintOp, Model, Sense, VarId};
pub use simplex::{solve_standard_form, solve_standard_form_from};
pub use solution::{Solution, SolveStats, SolveStatus};
pub use sparse::{SparseMatrix, SparseVec};
pub use standard::StandardForm;

/// Default feasibility / optimality tolerance used throughout the solver.
pub const TOL: f64 = 1e-7;

/// Tolerance used to decide whether a value is integral.
pub const INT_TOL: f64 = 1e-6;
