#![forbid(unsafe_code)]
//! # teccl-lp
//!
//! A self-contained linear-programming (LP) and mixed-integer linear-programming
//! (MILP) solver used as the optimization substrate for TE-CCL.
//!
//! The TE-CCL paper solves its formulations with Gurobi. No mature pure-Rust
//! LP/MILP solver exists in the offline crate set, so this crate implements the
//! pieces the paper's formulations need from scratch:
//!
//! * a **model builder** ([`Model`]) with bounded continuous and integer
//!   variables, linear constraints (`<=`, `>=`, `==`) and a linear objective,
//! * a **layout-preserving presolver** ([`presolve`]) that pins fixed
//!   variables by `lb == ub` bounds and frees redundant/forcing/singleton
//!   rows by relaxing their slacks — the column space is identical with
//!   presolve on or off, so any basis warm-starts any same-shaped solve
//!   (TE-CCL models contain many structurally-forced-zero flow variables
//!   near the time boundaries, so the reductions matter a lot),
//! * a **two-phase bounded-variable revised simplex** ([`simplex`]) on a sparse
//!   LU-factorized basis with eta updates and Markowitz-tie-broken pivoting
//!   ([`basis`]), a crash slack basis, devex candidate-list pricing, an
//!   EXPAND anti-cycling ratio test, and **warm starts** from a prior basis
//!   ([`simplex::solve_standard_form_from`]) re-optimized by a dual simplex,
//! * a **branch-and-bound MILP solver** ([`milp`]) with a rounding heuristic,
//!   relative-gap early stop (the paper's "early stop at 30%" mode), a time
//!   limit (the paper's 2-hour Gurobi timeout), **hot node re-solves** (each
//!   child starts from its parent's optimal basis instead of a cold
//!   all-artificial phase 1), and **per-node presolve** (bound propagation
//!   plus light probing feeding the dual re-solve's override list).
//!
//! The solver is deterministic: the same model always produces the same
//! solution, mirroring the reliability claim TE-CCL makes versus TACCL.
//!
//! ## Quick example
//!
//! ```
//! use teccl_lp::{Model, Sense, ConstraintOp, SolveStatus};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, y <= 3, x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, false);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0, false);
//! m.add_cons("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! m.add_cons("bx", &[(x, 1.0)], ConstraintOp::Le, 2.0);
//! m.add_cons("by", &[(y, 1.0)], ConstraintOp::Le, 3.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.status, SolveStatus::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! ```

pub mod basis;
pub mod decomp;
pub(crate) mod dual;
pub mod error;
pub mod milp;
pub mod model;
pub mod par;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod sparse;
pub mod standard;

pub use basis::{LuFactors, SimplexBasis, VarStatus};
pub use decomp::{
    should_decompose, solve_decomposed, BlockStructure, DecompOptions, Decompose, DECOMP_MIN_ROWS,
};
pub use error::LpError;
pub use milp::{MilpConfig, MilpSolver};
pub use model::{ConstraintOp, Model, Sense, VarId};
pub use par::{
    race_lp, FirstWin, NodePool, PoolStop, Popped, ScoredNode, SharedBest, RACE_MIN_ROWS,
};
pub use simplex::{
    solve_standard_form, solve_standard_form_budgeted, solve_standard_form_from,
    solve_standard_form_with_options, PricingRule, SimplexOptions,
};
pub use solution::{Solution, SolveStats, SolveStatus};
pub use sparse::{SparseMatrix, SparseVec};
pub use standard::StandardForm;
pub use teccl_util::json::Value;
pub use teccl_util::{BudgetExceeded, SolveBudget};

/// Default feasibility / optimality tolerance used throughout the solver.
pub const TOL: f64 = 1e-7;

/// Tolerance used to decide whether a value is integral.
pub const INT_TOL: f64 = 1e-6;

#[cfg(test)]
mod thread_safety_tests {
    use super::*;

    /// Compile-time assertion that everything the schedule service moves
    /// across worker threads is `Send` (+ `Sync` where it is shared by
    /// reference): solver inputs, solver state, and — the one that used to be
    /// blocked by an `Rc<SimplexBasis>` inside the branch-and-bound nodes —
    /// solver *results*.
    #[test]
    fn solver_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Model>();
        assert_sync::<Model>();
        assert_send::<StandardForm>();
        assert_sync::<StandardForm>();
        assert_send::<MilpSolver>();
        assert_sync::<MilpSolver>();
        assert_send::<Solution>();
        assert_sync::<Solution>();
        assert_send::<SimplexBasis>();
        assert_sync::<SimplexBasis>();
        assert_send::<SolveStats>();
        assert_send::<LuFactors>();
    }

    #[test]
    fn basis_json_roundtrip() {
        use basis::VarStatus;
        let b = SimplexBasis {
            basic: vec![3, 0, 7],
            status: vec![
                VarStatus::Basic,
                VarStatus::AtLower,
                VarStatus::AtUpper,
                VarStatus::Free,
            ],
        };
        let v = b.to_json_value();
        let back = SimplexBasis::from_json_value(&v).unwrap();
        assert_eq!(back, b);
        // And through actual text.
        let back2 = SimplexBasis::from_json_value(&Value::parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back2, b);
        assert!(SimplexBasis::from_json_value(&Value::parse("{}").unwrap()).is_err());
        assert!(SimplexBasis::from_json_value(
            &Value::parse(r#"{"basic":[],"status":"X"}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn solution_exports_its_basis() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Le, 2.0);
        let sol = m.solve().unwrap();
        let v = sol.basis_to_json().expect("LP solve returns a basis");
        let back = SimplexBasis::from_json_value(&v).unwrap();
        assert_eq!(Some(&back), sol.basis.as_ref());
    }
}
