//! The user-facing optimization model builder.
//!
//! A [`Model`] collects variables (continuous or integer, with bounds and an
//! objective coefficient), linear constraints and an optimization sense, and
//! dispatches to the LP or MILP solver depending on whether any integer
//! variables are present.

use crate::error::LpError;
use crate::milp::{MilpConfig, MilpSolver};
use crate::presolve;
use crate::simplex;
use crate::solution::{Solution, SolveStatus};

/// Identifier of a variable inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl VarId {
    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Definition of a single decision variable.
#[derive(Debug, Clone)]
pub struct VarDef {
    /// Human-readable name (used in error messages and debugging dumps).
    pub name: String,
    /// Lower bound (may be `-inf`).
    pub lb: f64,
    /// Upper bound (may be `+inf`).
    pub ub: f64,
    /// Objective coefficient.
    pub obj: f64,
    /// Whether the variable is restricted to integer values in a MILP solve.
    pub integer: bool,
}

/// Definition of a single linear constraint.
#[derive(Debug, Clone)]
pub struct ConsDef {
    /// Human-readable name.
    pub name: String,
    /// `(variable, coefficient)` terms. Duplicate variables are summed when
    /// the model is converted to standard form.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear optimization model (LP or MILP).
#[derive(Debug, Clone)]
pub struct Model {
    /// Optimization sense.
    pub sense: Sense,
    /// Variables, indexed by [`VarId`].
    pub vars: Vec<VarDef>,
    /// Constraints.
    pub cons: Vec<ConsDef>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Adds a variable and returns its id.
    ///
    /// * `lb`/`ub` — bounds (use `f64::NEG_INFINITY` / `f64::INFINITY` for
    ///   free directions),
    /// * `obj` — objective coefficient,
    /// * `integer` — whether the variable must take an integer value.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lb: f64,
        ub: f64,
        obj: f64,
        integer: bool,
    ) -> VarId {
        self.vars.push(VarDef {
            name: name.into(),
            lb,
            ub,
            obj,
            integer,
        });
        VarId(self.vars.len() - 1)
    }

    /// Convenience: adds a continuous variable with bounds `[0, +inf)`.
    pub fn add_nonneg_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, obj, false)
    }

    /// Convenience: adds a binary (0/1 integer) variable.
    pub fn add_binary_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, 0.0, 1.0, obj, true)
    }

    /// Adds a linear constraint `sum(coeff * var) op rhs` and returns its index.
    pub fn add_cons(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        self.cons.push(ConsDef {
            name: name.into(),
            terms: terms.to_vec(),
            op,
            rhs,
        });
        self.cons.len() - 1
    }

    /// Updates the objective coefficient of an existing variable.
    pub fn set_obj(&mut self, var: VarId, obj: f64) {
        self.vars[var.0].obj = obj;
    }

    /// Tightens (replaces) the bounds of an existing variable.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        self.vars[var.0].lb = lb;
        self.vars[var.0].ub = ub;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Number of integer variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars.iter().filter(|v| v.integer).count()
    }

    /// Returns `true` if the model has at least one integer variable.
    pub fn is_mip(&self) -> bool {
        self.vars.iter().any(|v| v.integer)
    }

    /// Validates that the model is well formed (finite coefficients, consistent
    /// bounds, known variable ids).
    pub fn validate(&self) -> Result<(), LpError> {
        for v in &self.vars {
            if v.lb > v.ub {
                return Err(LpError::InconsistentBounds {
                    var: v.name.clone(),
                    lb: v.lb,
                    ub: v.ub,
                });
            }
            if v.obj.is_nan() || v.lb.is_nan() || v.ub.is_nan() {
                return Err(LpError::NonFiniteCoefficient(format!(
                    "variable `{}`",
                    v.name
                )));
            }
        }
        for c in &self.cons {
            if !c.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient(format!(
                    "rhs of `{}`",
                    c.name
                )));
            }
            for (vid, coef) in &c.terms {
                if vid.0 >= self.vars.len() {
                    return Err(LpError::UnknownVariable(vid.0));
                }
                if !coef.is_finite() {
                    return Err(LpError::NonFiniteCoefficient(format!(
                        "coefficient of `{}` in `{}`",
                        self.vars[vid.0].name, c.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves the model as a pure LP (integrality requirements are relaxed).
    ///
    /// Runs presolve, the two-phase simplex, and maps the solution back to the
    /// original variable space.
    pub fn solve_lp_relaxation(&self) -> Result<Solution, LpError> {
        self.solve_lp_relaxation_warm(None)
    }

    /// Like [`Model::solve_lp_relaxation`], but warm-started from the basis of
    /// a previous solve of the same (or an identically-shaped) model.
    ///
    /// Presolve is layout-preserving (it only tightens bounds and frees
    /// redundant rows), so the basis keeps its meaning regardless of how the
    /// previous solve was presolved; a genuinely mismatched basis (different
    /// model shape) silently falls back to a cold start. The returned
    /// [`Solution::basis`] can be fed into the next call.
    pub fn solve_lp_relaxation_warm(
        &self,
        warm: Option<&crate::basis::SimplexBasis>,
    ) -> Result<Solution, LpError> {
        self.solve_lp_relaxation_budgeted(warm, None)
    }

    /// [`Model::solve_lp_relaxation_warm`] under a cooperative
    /// [`SolveBudget`](teccl_util::SolveBudget), checked once per pivot. A
    /// budget stop mid-phase-2 returns the current primal-feasible vertex as
    /// `Feasible` with `stats.budget_stop` set; a stop before primal
    /// feasibility fails with [`LpError::Budget`].
    pub fn solve_lp_relaxation_budgeted(
        &self,
        warm: Option<&crate::basis::SimplexBasis>,
        budget: Option<&teccl_util::SolveBudget>,
    ) -> Result<Solution, LpError> {
        self.solve_lp_relaxation_threaded(warm, budget, 1)
    }

    /// [`Model::solve_lp_relaxation_budgeted`] with a thread count: with
    /// `threads > 1` and a large enough LP (at least
    /// [`crate::par::RACE_MIN_ROWS`] standard-form rows), the solve becomes a
    /// [`crate::par::race_lp`] portfolio race across pricing/perturbation
    /// configurations, first certified result wins. The race is skipped when
    /// the budget carries an iteration cap — racers duplicate pivots against
    /// the shared counter and would trip the cap early — and for small LPs,
    /// where spawn overhead can only lose; both fall back to the solo
    /// steepest-edge solve, so the answer is identical either way.
    pub fn solve_lp_relaxation_threaded(
        &self,
        warm: Option<&crate::basis::SimplexBasis>,
        budget: Option<&teccl_util::SolveBudget>,
        threads: usize,
    ) -> Result<Solution, LpError> {
        self.validate()?;
        let start = std::time::Instant::now();
        let (tightened, post) = presolve::presolve(self)?;
        let mut sol = if let Some(early) = post.trivial_outcome() {
            early
        } else {
            let mut sf = crate::standard::StandardForm::from_model(&tightened);
            post.relax_free_rows(&mut sf);
            let race = threads > 1
                && sf.num_rows() >= crate::par::RACE_MIN_ROWS
                && budget.is_none_or(|b| !b.has_iteration_cap());
            if race {
                crate::par::race_lp(&sf, tightened.num_vars(), &[], warm, budget, threads)?
            } else {
                simplex::solve_standard_form_budgeted(&sf, tightened.num_vars(), &[], warm, budget)?
            }
        };
        sol = post.recover(sol, self);
        sol.stats.solve_time = start.elapsed();
        Ok(sol)
    }

    /// Solves the model: branch-and-bound if integer variables are present,
    /// plain LP otherwise. Uses the default [`MilpConfig`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&MilpConfig::default())
    }

    /// Solves the model with an explicit MILP configuration (time limit,
    /// relative-gap early stop, node limit). For pure LPs only the
    /// cooperative budget is honoured; the B&B knobs are ignored.
    pub fn solve_with(&self, config: &MilpConfig) -> Result<Solution, LpError> {
        self.solve_with_warm(config, None)
    }

    /// Like [`Model::solve_with`], but warm-started from the basis a previous
    /// solve of an identically-shaped model returned in [`Solution::basis`]
    /// (for MILPs: the root relaxation's basis). Presolve preserves the
    /// column layout, so the carried basis stays valid no matter how either
    /// model presolves; a genuinely mismatched basis silently falls back to a
    /// cold start.
    pub fn solve_with_warm(
        &self,
        config: &MilpConfig,
        warm: Option<&crate::basis::SimplexBasis>,
    ) -> Result<Solution, LpError> {
        self.validate()?;
        if self.is_mip() {
            MilpSolver::new(config.clone()).solve_from(self, warm)
        } else {
            self.solve_lp_relaxation_threaded(warm, config.budget.as_ref(), config.threads)
        }
    }

    /// Evaluates the objective for a candidate assignment (used by tests and
    /// by the MILP rounding heuristic).
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        self.vars
            .iter()
            .zip(x.iter())
            .map(|(v, xi)| v.obj * xi)
            .sum()
    }

    /// Checks whether an assignment satisfies all constraints and bounds within
    /// tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x.iter()) {
            if xi < v.lb - tol || xi > v.ub + tol {
                return false;
            }
            if v.integer && (xi - xi.round()).abs() > tol.max(crate::INT_TOL) {
                return false;
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|(vid, coef)| coef * x[vid.0]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Helper to make an infeasible solution with zeroed values (used by presolve
/// and the MILP solver when infeasibility is detected before the simplex runs).
pub(crate) fn infeasible_solution(num_vars: usize) -> Solution {
    Solution {
        status: SolveStatus::Infeasible,
        objective: f64::NAN,
        values: vec![0.0; num_vars],
        duals: Vec::new(),
        stats: Default::default(),
        basis: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_simple_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_binary_var("y", 2.0);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.5);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_cons(), 1);
        assert_eq!(m.num_integer_vars(), 1);
        assert!(m.is_mip());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 2.0, 1.0, 0.0, false);
        assert!(matches!(
            m.validate(),
            Err(LpError::InconsistentBounds { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_var_in_constraint() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 0.0);
        m.add_cons("c", &[(VarId(5), 1.0), (x, 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(m.validate(), Err(LpError::UnknownVariable(5))));
    }

    #[test]
    fn validate_rejects_nan_rhs() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 0.0);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Le, f64::NAN);
        assert!(matches!(
            m.validate(),
            Err(LpError::NonFiniteCoefficient(_))
        ));
    }

    #[test]
    fn feasibility_check_and_objective_eval() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 3.0, false);
        let y = m.add_var("y", 0.0, 3.0, 2.0, false);
        m.add_cons("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        assert!(m.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!m.is_feasible(&[2.0, 3.0], 1e-9)); // violates cap
        assert!(!m.is_feasible(&[3.0, 0.0], 1e-9)); // violates ub
        assert_eq!(m.eval_objective(&[2.0, 2.0]), 10.0);
    }

    #[test]
    fn integrality_checked_in_feasibility() {
        let mut m = Model::new(Sense::Maximize);
        m.add_binary_var("b", 1.0);
        assert!(m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5], 1e-9));
    }

    #[test]
    fn set_bounds_and_obj() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        m.set_bounds(x, 1.0, 5.0);
        m.set_obj(x, -2.0);
        assert_eq!(m.vars[0].lb, 1.0);
        assert_eq!(m.vars[0].ub, 5.0);
        assert_eq!(m.vars[0].obj, -2.0);
    }
}
