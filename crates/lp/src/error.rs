//! Error types for the LP/MILP solver.

use std::fmt;

use teccl_util::budget::BudgetExceeded;

/// Errors returned by the LP / MILP solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable id referenced a variable that does not exist in the model.
    UnknownVariable(usize),
    /// A constraint references no variables and cannot be satisfied.
    EmptyInfeasibleConstraint(String),
    /// Variable bounds are inconsistent (lower bound above upper bound).
    InconsistentBounds { var: String, lb: f64, ub: f64 },
    /// A coefficient, bound, or right-hand side was NaN or infinite where a
    /// finite value is required.
    NonFiniteCoefficient(String),
    /// The simplex iteration limit was exceeded before reaching optimality.
    IterationLimit(usize),
    /// Internal numerical failure (e.g. pivot element too small).
    Numerical(String),
    /// A cooperative [`teccl_util::SolveBudget`] stopped the solve (cancel,
    /// deadline, or shared iteration cap) before any feasible point was
    /// found. When an incumbent exists the solver returns it as a normal
    /// `Solution` with `stats.budget_stop` set instead of this error.
    Budget(BudgetExceeded),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable(id) => write!(f, "unknown variable id {id}"),
            LpError::EmptyInfeasibleConstraint(name) => {
                write!(
                    f,
                    "constraint `{name}` has no variables but a non-trivial bound"
                )
            }
            LpError::InconsistentBounds { var, lb, ub } => {
                write!(f, "variable `{var}` has inconsistent bounds [{lb}, {ub}]")
            }
            LpError::NonFiniteCoefficient(what) => {
                write!(f, "non-finite coefficient encountered: {what}")
            }
            LpError::IterationLimit(n) => {
                write!(f, "simplex iteration limit ({n}) exceeded")
            }
            LpError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            LpError::Budget(cause) => write!(f, "solve budget exhausted: {cause}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LpError::UnknownVariable(3);
        assert!(e.to_string().contains("3"));
        let e = LpError::InconsistentBounds {
            var: "x".into(),
            lb: 2.0,
            ub: 1.0,
        };
        assert!(e.to_string().contains("x"));
        let e = LpError::IterationLimit(100);
        assert!(e.to_string().contains("100"));
        let e = LpError::Numerical("pivot too small".into());
        assert!(e.to_string().contains("pivot"));
        let e = LpError::EmptyInfeasibleConstraint("c0".into());
        assert!(e.to_string().contains("c0"));
        let e = LpError::NonFiniteCoefficient("rhs".into());
        assert!(e.to_string().contains("rhs"));
        let e = LpError::Budget(BudgetExceeded::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn errors_are_clonable_and_comparable() {
        let e = LpError::IterationLimit(5);
        assert_eq!(e.clone(), e);
        assert_ne!(e, LpError::IterationLimit(6));
    }
}
