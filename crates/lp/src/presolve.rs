//! Presolve: cheap model reductions applied before the simplex runs.
//!
//! TE-CCL models contain many structurally-forced variables (flows that cannot
//! exist because a chunk could not yet have arrived, buffers pinned to zero at
//! switches, first/last epoch boundary conditions). Removing them before the
//! simplex runs shrinks the dense basis dramatically.
//!
//! Reductions applied to a fixpoint:
//! * **fixed variables** (`lb == ub`) are substituted out,
//! * **empty rows** are checked and dropped (or prove infeasibility),
//! * **singleton rows** become variable bounds (with integral rounding for
//!   integer variables) and are dropped.

use crate::error::LpError;
use crate::model::{infeasible_solution, ConstraintOp, Model, VarId};
use crate::solution::{Solution, SolveStats, SolveStatus};

const EPS: f64 = 1e-9;

/// Information needed to map a reduced-model solution back onto the original
/// model.
#[derive(Debug, Clone)]
pub struct PostSolve {
    /// For each original variable: `Some(value)` if presolve fixed it.
    pub fixed: Vec<Option<f64>>,
    /// For each original variable: its column in the reduced model (if kept).
    pub mapping: Vec<Option<usize>>,
    /// Presolve proved the model infeasible.
    pub infeasible: bool,
    /// Number of variables in the reduced model.
    pub reduced_vars: usize,
    /// Number of constraints in the reduced model.
    pub reduced_cons: usize,
    /// Number of variables in the original model.
    pub original_vars: usize,
}

impl PostSolve {
    /// If presolve alone already determined the outcome (infeasible, or all
    /// variables fixed), returns the corresponding solution skeleton.
    pub fn trivial_outcome(&self) -> Option<Solution> {
        if self.infeasible {
            return Some(infeasible_solution(self.original_vars));
        }
        if self.reduced_vars == 0 {
            return Some(Solution {
                status: SolveStatus::Optimal,
                objective: 0.0, // recomputed by `recover`
                values: Vec::new(),
                duals: Vec::new(),
                stats: SolveStats {
                    presolved_vars: 0,
                    presolved_cons: 0,
                    ..Default::default()
                },
                basis: None,
            });
        }
        None
    }

    /// Maps a reduced-space solution back to the original variable space and
    /// recomputes the objective against the original model.
    pub fn recover(&self, mut sol: Solution, original: &Model) -> Solution {
        let mut values = vec![0.0; self.original_vars];
        for (orig, fixed) in self.fixed.iter().enumerate() {
            if let Some(v) = fixed {
                values[orig] = *v;
            }
        }
        for (orig, mapped) in self.mapping.iter().enumerate() {
            if let Some(j) = mapped {
                if *j < sol.values.len() {
                    values[orig] = sol.values[*j];
                }
            }
        }
        if sol.status.has_solution() {
            sol.objective = original.eval_objective(&values);
        }
        sol.values = values;
        // Dual values no longer correspond 1:1 to the original constraints once
        // rows were removed; drop them rather than report misleading numbers.
        if self.reduced_cons != original.num_cons() {
            sol.duals = Vec::new();
        }
        sol.stats.presolved_vars = self.reduced_vars;
        sol.stats.presolved_cons = self.reduced_cons;
        sol
    }
}

/// The no-op reduction: the model is passed through untouched. Used when a
/// caller needs the column layout preserved across solves of
/// identically-shaped models (warm-started A* rounds).
pub fn identity(model: &Model) -> (Model, PostSolve) {
    let nv = model.num_vars();
    let post = PostSolve {
        fixed: vec![None; nv],
        mapping: (0..nv).map(Some).collect(),
        infeasible: false,
        reduced_vars: nv,
        reduced_cons: model.num_cons(),
        original_vars: nv,
    };
    (model.clone(), post)
}

/// Internal working copy of a constraint with merged terms.
#[derive(Debug, Clone)]
struct WorkCons {
    terms: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
    alive: bool,
    name: String,
}

/// Runs presolve on a model, returning the reduced model and the post-solve
/// recovery information.
pub fn presolve(model: &Model) -> Result<(Model, PostSolve), LpError> {
    let nv = model.num_vars();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let integer: Vec<bool> = model.vars.iter().map(|v| v.integer).collect();
    let mut fixed: Vec<Option<f64>> = vec![None; nv];
    let mut infeasible = false;

    // Merge duplicate terms per constraint once up front.
    let mut cons: Vec<WorkCons> = model
        .cons
        .iter()
        .map(|c| {
            let mut map: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
            for (vid, coef) in &c.terms {
                *map.entry(vid.0).or_insert(0.0) += coef;
            }
            let terms: Vec<(usize, f64)> = map.into_iter().filter(|(_, c)| c.abs() > 0.0).collect();
            WorkCons {
                terms,
                op: c.op,
                rhs: c.rhs,
                alive: true,
                name: c.name.clone(),
            }
        })
        .collect();

    // Round integer bounds inward immediately.
    for j in 0..nv {
        if integer[j] {
            if lb[j].is_finite() {
                lb[j] = round_if_close(lb[j]).ceil();
            }
            if ub[j].is_finite() {
                ub[j] = round_if_close(ub[j]).floor();
            }
        }
    }

    let mut changed = true;
    while changed && !infeasible {
        changed = false;

        // 1. Detect newly fixed variables.
        for j in 0..nv {
            if fixed[j].is_none() && lb[j].is_finite() && ub[j].is_finite() {
                if lb[j] > ub[j] + EPS {
                    infeasible = true;
                    break;
                }
                if (ub[j] - lb[j]).abs() <= EPS {
                    fixed[j] = Some(lb[j]);
                    changed = true;
                }
            }
        }
        if infeasible {
            break;
        }

        // 2. Substitute fixed variables out of constraints, drop empty rows,
        //    and convert singleton rows into bounds.
        for c in cons.iter_mut() {
            if !c.alive {
                continue;
            }
            // Substitute fixed variables.
            let mut new_terms = Vec::with_capacity(c.terms.len());
            for (j, coef) in c.terms.iter() {
                if let Some(v) = fixed[*j] {
                    c.rhs -= coef * v;
                    changed = true;
                } else {
                    new_terms.push((*j, *coef));
                }
            }
            c.terms = new_terms;

            if c.terms.is_empty() {
                let ok = match c.op {
                    ConstraintOp::Le => 0.0 <= c.rhs + 1e-7,
                    ConstraintOp::Ge => 0.0 >= c.rhs - 1e-7,
                    ConstraintOp::Eq => c.rhs.abs() <= 1e-7,
                };
                if !ok {
                    infeasible = true;
                    break;
                }
                c.alive = false;
                changed = true;
                continue;
            }

            if c.terms.len() == 1 {
                let (j, a) = c.terms[0];
                if a.abs() < EPS {
                    // Treat as empty.
                    continue;
                }
                let bound = c.rhs / a;
                match (c.op, a > 0.0) {
                    (ConstraintOp::Eq, _) => {
                        let v = if integer[j] { bound.round() } else { bound };
                        if integer[j] && (bound - bound.round()).abs() > 1e-6 {
                            infeasible = true;
                            break;
                        }
                        if v < lb[j] - 1e-7 || v > ub[j] + 1e-7 {
                            infeasible = true;
                            break;
                        }
                        lb[j] = v;
                        ub[j] = v;
                    }
                    (ConstraintOp::Le, true) | (ConstraintOp::Ge, false) => {
                        let mut new_ub = bound;
                        if integer[j] {
                            new_ub = (new_ub + 1e-9).floor();
                        }
                        if new_ub < ub[j] {
                            ub[j] = new_ub;
                        }
                    }
                    (ConstraintOp::Ge, true) | (ConstraintOp::Le, false) => {
                        let mut new_lb = bound;
                        if integer[j] {
                            new_lb = (new_lb - 1e-9).ceil();
                        }
                        if new_lb > lb[j] {
                            lb[j] = new_lb;
                        }
                    }
                }
                if lb[j] > ub[j] + EPS {
                    infeasible = true;
                    break;
                }
                c.alive = false;
                changed = true;
            }
        }
    }

    // Build the reduced model.
    let mut mapping: Vec<Option<usize>> = vec![None; nv];
    let mut reduced = Model::new(model.sense);
    if !infeasible {
        for j in 0..nv {
            if fixed[j].is_none() {
                let id = reduced.add_var(
                    model.vars[j].name.clone(),
                    lb[j],
                    ub[j],
                    model.vars[j].obj,
                    integer[j],
                );
                mapping[j] = Some(id.0);
            }
        }
        for c in cons.iter().filter(|c| c.alive) {
            let terms: Vec<(VarId, f64)> = c
                .terms
                .iter()
                .filter_map(|(j, coef)| mapping[*j].map(|nj| (VarId(nj), *coef)))
                .collect();
            reduced.add_cons(c.name.clone(), &terms, c.op, c.rhs);
        }
    }

    let post = PostSolve {
        fixed,
        mapping,
        infeasible,
        reduced_vars: reduced.num_vars(),
        reduced_cons: reduced.num_cons(),
        original_vars: nv,
    };
    Ok((reduced, post))
}

fn round_if_close(v: f64) -> f64 {
    if (v - v.round()).abs() < EPS {
        v.round()
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn fixed_variables_are_removed_and_substituted() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0, 3.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        let (red, post) = presolve(&m).unwrap();
        assert_eq!(red.num_vars(), 1);
        // After substituting x=2, the row becomes the singleton `y <= 3`, which
        // is folded into y's upper bound and dropped.
        assert_eq!(red.num_cons(), 0);
        assert_eq!(red.vars[0].ub, 3.0);
        assert_eq!(post.fixed[x.0], Some(2.0));
        assert!(post.fixed[y.0].is_none());
    }

    #[test]
    fn singleton_eq_row_fixes_variable() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        m.add_cons("fix", &[(x, 2.0)], ConstraintOp::Eq, 6.0);
        m.add_cons("link", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 5.0);
        let (red, post) = presolve(&m).unwrap();
        assert_eq!(post.fixed[x.0], Some(3.0));
        assert_eq!(red.num_vars(), 1);
        // link became y >= 2 which is itself a singleton → removed into a bound.
        assert_eq!(red.num_cons(), 0);
        assert_eq!(red.vars[0].lb, 2.0);
    }

    #[test]
    fn empty_infeasible_row_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 1.0, 0.0, false);
        m.add_cons("bad", &[(x, 1.0)], ConstraintOp::Ge, 5.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.infeasible);
        assert!(post.trivial_outcome().unwrap().status == SolveStatus::Infeasible);
    }

    #[test]
    fn integer_bound_rounding() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_cons("c", &[(x, 2.0)], ConstraintOp::Le, 7.0);
        let (red, post) = presolve(&m).unwrap();
        // 2x <= 7 → x <= 3.5 → x <= 3 for integer x.
        assert!(!post.infeasible);
        assert_eq!(red.vars[0].ub, 3.0);
    }

    #[test]
    fn fully_fixed_model_is_trivially_solved() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 4.0, 4.0, 2.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Le, 5.0);
        let (red, post) = presolve(&m).unwrap();
        assert_eq!(red.num_vars(), 0);
        let trivial = post.trivial_outcome().unwrap();
        let recovered = post.recover(trivial, &m);
        assert_eq!(recovered.values, vec![4.0]);
        assert_eq!(recovered.objective, 8.0);
    }

    #[test]
    fn recover_maps_values_back() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.0, 1.0, 1.0, false);
        let y = m.add_var("y", 0.0, 5.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let (red, post) = presolve(&m).unwrap();
        let sol = red.solve_lp_relaxation().unwrap();
        let rec = post.recover(sol, &m);
        assert_eq!(rec.values[x.0], 1.0);
        assert!((rec.values[y.0] - 3.0).abs() < 1e-6);
        assert!((rec.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_singleton_eq_for_integer() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_cons("frac", &[(x, 2.0)], ConstraintOp::Eq, 3.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.infeasible);
    }

    #[test]
    fn conflicting_singletons_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        m.add_cons("a", &[(x, 1.0)], ConstraintOp::Ge, 5.0);
        m.add_cons("b", &[(x, 1.0)], ConstraintOp::Le, 2.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.infeasible);
    }
}
