//! Layout-preserving presolve: bound tightening in the *original* column
//! space.
//!
//! TE-CCL models contain many structurally-forced variables (flows that cannot
//! exist because a chunk could not yet have arrived, buffers pinned to zero at
//! switches, first/last epoch boundary conditions). Earlier versions of this
//! module *removed* those columns and rows, which shrank the model but changed
//! its column layout — so any simplex basis produced with presolve on was
//! meaningless to a solve with presolve off (or to a differently-presolved
//! round), and every warm-start path had to run with presolve disabled.
//!
//! This version never changes the model's shape. Reductions are expressed as
//! **bound tightenings** and **row deactivations**:
//!
//! * **fixed variables** are pinned by `lb == ub` bounds (the simplex never
//!   prices a zero-range column, so they cost one branch per pricing refill),
//! * **empty rows** (all variables fixed) are feasibility-checked and freed,
//! * **singleton rows** are folded into the variable's bounds (with integral
//!   rounding for integer variables) and freed,
//! * **redundant rows** — rows whose activity range, computed from the current
//!   bounds, can never violate the right-hand side — are freed,
//! * **forcing rows** — rows whose activity range only touches the right-hand
//!   side at one extreme — fix every participating variable at the bound
//!   achieving that extreme, and are then freed,
//! * **implied bounds** from row activities tighten individual variable
//!   bounds (integer bounds are rounded inward).
//!
//! A *freed* row stays in the model; [`PostSolve::relax_free_rows`] relaxes
//! its slack column to `(-inf, +inf)` in the [`StandardForm`], which makes the
//! row trivially satisfiable without touching the constraint matrix. The
//! matrix `A` is therefore **identical** with presolve on or off, and a basis
//! from any solve (any B&B node, any A* round, presolved or not) can
//! warm-start any other solve of the same form.
//!
//! [`PostSolve::recover`] shrinks to value substitution: fixed variables are
//! snapped exactly onto their fixed value and the objective is re-evaluated;
//! duals stay 1:1 with the original constraints because no row was removed.

use crate::error::LpError;
use crate::model::{infeasible_solution, ConstraintOp, Model};
use crate::solution::Solution;
use crate::standard::StandardForm;

const EPS: f64 = 1e-9;
/// Minimum improvement for a continuous-variable bound tightening to be
/// applied (guards against fixpoint loops driven by 1e-12 nibbles).
const MIN_TIGHTEN: f64 = 1e-6;
/// Maximum number of full tightening passes.
const MAX_PASSES: usize = 10;

/// Information needed to map a presolved solution back onto the original
/// model. With the layout-preserving presolve this is mostly bookkeeping:
/// no columns or rows were removed, so it records *which* columns were fixed
/// (for exact value substitution) and *which* rows were freed (for slack
/// relaxation in the standard form).
#[derive(Debug, Clone)]
pub struct PostSolve {
    /// For each original variable: `Some(value)` if presolve fixed it
    /// (`lb == ub` in the tightened model).
    pub fixed: Vec<Option<f64>>,
    /// For each original row: `true` if presolve proved it can never be
    /// violated under the tightened bounds (its standard-form slack may be
    /// freed).
    pub free_rows: Vec<bool>,
    /// Presolve proved the model infeasible.
    pub infeasible: bool,
    /// Number of variables fixed by presolve (`lb == hi` pins).
    pub cols_fixed: usize,
    /// Number of rows freed by presolve.
    pub rows_freed: usize,
    /// Number of variables in the model (unchanged by presolve).
    pub original_vars: usize,
    /// Number of constraints in the model (unchanged by presolve).
    pub original_cons: usize,
}

impl PostSolve {
    /// If presolve alone already determined the outcome (infeasible), returns
    /// the corresponding solution skeleton.
    pub fn trivial_outcome(&self) -> Option<Solution> {
        if self.infeasible {
            return Some(infeasible_solution(self.original_vars));
        }
        None
    }

    /// Relaxes the slack bounds of every freed row to `(-inf, +inf)` in a
    /// standard form built from the tightened model. The constraint matrix is
    /// untouched, so the column layout (and any basis over it) keeps its
    /// meaning; the freed rows simply stop constraining the solve.
    pub fn relax_free_rows(&self, sf: &mut StandardForm) {
        debug_assert_eq!(sf.num_rows(), self.original_cons);
        for (row, &free) in self.free_rows.iter().enumerate() {
            if free {
                let slack = sf.num_structural + row;
                sf.lb[slack] = f64::NEG_INFINITY;
                sf.ub[slack] = f64::INFINITY;
            }
        }
    }

    /// Maps a solved solution back onto the original model: fixed variables
    /// are snapped exactly onto their fixed value (wiping simplex bound
    /// noise), the objective is re-evaluated against the original model, and
    /// the presolve counters are recorded. Values and duals are already in
    /// the original spaces — no columns or rows were removed.
    pub fn recover(&self, mut sol: Solution, original: &Model) -> Solution {
        if sol.values.len() < self.original_vars {
            sol.values.resize(self.original_vars, 0.0);
        }
        for (orig, fixed) in self.fixed.iter().enumerate() {
            if let Some(v) = fixed {
                sol.values[orig] = *v;
            }
        }
        if sol.status.has_solution() {
            sol.objective = original.eval_objective(&sol.values);
        }
        sol.stats.presolved_vars = self.original_vars - self.cols_fixed;
        sol.stats.presolved_cons = self.original_cons - self.rows_freed;
        sol.stats.cols_fixed = self.cols_fixed;
        sol.stats.rows_freed = self.rows_freed;
        sol
    }
}

/// Internal analysis copy of a constraint with merged terms. The model's own
/// rows are never modified (that would change the constraint matrix); this is
/// read-only scratch for activity analysis.
#[derive(Debug, Clone)]
struct WorkCons {
    terms: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
    free: bool,
}

/// Activity range of a row under the current bounds, tracking infinite
/// contributions so single-variable residuals stay computable.
#[derive(Debug, Clone, Copy, Default)]
struct Activity {
    min_fin: f64,
    max_fin: f64,
    min_inf: usize,
    max_inf: usize,
}

impl Activity {
    fn min(&self) -> f64 {
        if self.min_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.min_fin
        }
    }
    fn max(&self) -> f64 {
        if self.max_inf > 0 {
            f64::INFINITY
        } else {
            self.max_fin
        }
    }
    /// Minimum activity of the row excluding variable `j`'s term, or `None`
    /// when it is unbounded below.
    fn min_without(&self, contrib_min: f64) -> Option<f64> {
        if contrib_min.is_finite() {
            (self.min_inf == 0).then_some(self.min_fin - contrib_min)
        } else {
            (self.min_inf == 1).then_some(self.min_fin)
        }
    }
    /// Maximum activity of the row excluding variable `j`'s term, or `None`
    /// when it is unbounded above.
    fn max_without(&self, contrib_max: f64) -> Option<f64> {
        if contrib_max.is_finite() {
            (self.max_inf == 0).then_some(self.max_fin - contrib_max)
        } else {
            (self.max_inf == 1).then_some(self.max_fin)
        }
    }
    /// This activity with one variable's `(contrib_min, contrib_max)` range
    /// contribution replaced by the point value `p` (probing a fixing).
    fn with_point(mut self, contrib_min: f64, contrib_max: f64, p: f64) -> Activity {
        if contrib_min.is_finite() {
            self.min_fin -= contrib_min;
        } else {
            self.min_inf -= 1;
        }
        if contrib_max.is_finite() {
            self.max_fin -= contrib_max;
        } else {
            self.max_inf -= 1;
        }
        self.min_fin += p;
        self.max_fin += p;
        self
    }
}

fn activity(terms: &[(usize, f64)], lb: &[f64], ub: &[f64]) -> Activity {
    let mut act = Activity::default();
    for &(j, a) in terms {
        let (lo_c, hi_c) = if a > 0.0 {
            (a * lb[j], a * ub[j])
        } else {
            (a * ub[j], a * lb[j])
        };
        if lo_c.is_finite() {
            act.min_fin += lo_c;
        } else {
            act.min_inf += 1;
        }
        if hi_c.is_finite() {
            act.max_fin += hi_c;
        } else {
            act.max_inf += 1;
        }
    }
    act
}

/// Implied-bound tightening of variable `j` (coefficient `a`) from a row's
/// activity range — the single copy shared by the global presolve fixpoint
/// and the per-node propagation, so tolerance or rounding changes apply to
/// both. Returns `None` when the tightened bounds cross (infeasible),
/// otherwise whether a bound changed.
#[allow(clippy::too_many_arguments)] // a row-propagation step simply has this many inputs
fn tighten_from_row(
    j: usize,
    a: f64,
    rhs: f64,
    act: &Activity,
    tighten_le: bool,
    tighten_ge: bool,
    integer: bool,
    lb: &mut [f64],
    ub: &mut [f64],
) -> Option<bool> {
    let mut changed = false;
    let (contrib_min, contrib_max) = if a > 0.0 {
        (a * lb[j], a * ub[j])
    } else {
        (a * ub[j], a * lb[j])
    };
    if tighten_le {
        if let Some(rest_min) = act.min_without(contrib_min) {
            // a * x_j <= rhs - rest_min
            let room = rhs - rest_min;
            if a > 0.0 {
                let mut nb = room / a;
                if integer {
                    nb = (nb + 1e-6).floor();
                }
                if nb < ub[j] - MIN_TIGHTEN {
                    ub[j] = nb;
                    changed = true;
                }
            } else {
                let mut nb = room / a;
                if integer {
                    nb = (nb - 1e-6).ceil();
                }
                if nb > lb[j] + MIN_TIGHTEN {
                    lb[j] = nb;
                    changed = true;
                }
            }
        }
    }
    if tighten_ge {
        if let Some(rest_max) = act.max_without(contrib_max) {
            // a * x_j >= rhs - rest_max
            let room = rhs - rest_max;
            if a > 0.0 {
                let mut nb = room / a;
                if integer {
                    nb = (nb - 1e-6).ceil();
                }
                if nb > lb[j] + MIN_TIGHTEN {
                    lb[j] = nb;
                    changed = true;
                }
            } else {
                let mut nb = room / a;
                if integer {
                    nb = (nb + 1e-6).floor();
                }
                if nb < ub[j] - MIN_TIGHTEN {
                    ub[j] = nb;
                    changed = true;
                }
            }
        }
    }
    if lb[j] > ub[j] + EPS {
        return None;
    }
    Some(changed)
}

/// Runs presolve on a model. The returned model has the **same shape** as the
/// input (identical variables and constraints) with tightened bounds; the
/// [`PostSolve`] records the fixings and freed rows.
pub fn presolve(model: &Model) -> Result<(Model, PostSolve), LpError> {
    let nv = model.num_vars();
    let nc = model.num_cons();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let integer: Vec<bool> = model.vars.iter().map(|v| v.integer).collect();
    let mut infeasible = false;

    // Merge duplicate terms per constraint once up front (analysis only; the
    // model's rows are left untouched — `StandardForm` sums duplicates the
    // same way, so the matrix is unaffected by whether we merge here).
    let mut cons: Vec<WorkCons> = model
        .cons
        .iter()
        .map(|c| {
            let mut map: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
            for (vid, coef) in &c.terms {
                *map.entry(vid.0).or_insert(0.0) += coef;
            }
            let terms: Vec<(usize, f64)> = map.into_iter().filter(|(_, c)| c.abs() > 0.0).collect();
            WorkCons {
                terms,
                op: c.op,
                rhs: c.rhs,
                free: false,
            }
        })
        .collect();

    // Round integer bounds inward immediately.
    for j in 0..nv {
        if integer[j] {
            if lb[j].is_finite() {
                lb[j] = round_if_close(lb[j]).ceil();
            }
            if ub[j].is_finite() {
                ub[j] = round_if_close(ub[j]).floor();
            }
        }
    }

    let mut changed = true;
    let mut passes = 0usize;
    'outer: while changed && !infeasible && passes < MAX_PASSES {
        changed = false;
        passes += 1;

        for j in 0..nv {
            if lb[j] > ub[j] + EPS {
                infeasible = true;
                break 'outer;
            }
        }

        for c in cons.iter_mut() {
            if c.free {
                continue;
            }
            // Split terms into fixed contributions (folded into the rhs of
            // the *analysis* row) and live terms.
            let live: Vec<(usize, f64)> = c
                .terms
                .iter()
                .filter(|&&(j, _)| (ub[j] - lb[j]).abs() > EPS)
                .copied()
                .collect();
            let fixed_sum: f64 = c
                .terms
                .iter()
                .filter(|&&(j, _)| (ub[j] - lb[j]).abs() <= EPS)
                .map(|&(j, a)| a * lb[j])
                .sum();
            let rhs = c.rhs - fixed_sum;

            // Empty row: everything fixed — check and free.
            if live.is_empty() {
                let ok = match c.op {
                    ConstraintOp::Le => 0.0 <= rhs + 1e-7,
                    ConstraintOp::Ge => 0.0 >= rhs - 1e-7,
                    ConstraintOp::Eq => rhs.abs() <= 1e-7,
                };
                if !ok {
                    infeasible = true;
                    break 'outer;
                }
                c.free = true;
                changed = true;
                continue;
            }

            // Singleton row: fold into the variable's bounds and free.
            if live.len() == 1 {
                let (j, a) = live[0];
                if a.abs() < EPS {
                    continue;
                }
                let bound = rhs / a;
                match (c.op, a > 0.0) {
                    (ConstraintOp::Eq, _) => {
                        let v = if integer[j] { bound.round() } else { bound };
                        if integer[j] && (bound - bound.round()).abs() > 1e-6 {
                            infeasible = true;
                            break 'outer;
                        }
                        if v < lb[j] - 1e-7 || v > ub[j] + 1e-7 {
                            infeasible = true;
                            break 'outer;
                        }
                        lb[j] = v;
                        ub[j] = v;
                    }
                    (ConstraintOp::Le, true) | (ConstraintOp::Ge, false) => {
                        let mut new_ub = bound;
                        if integer[j] {
                            new_ub = (new_ub + 1e-9).floor();
                        }
                        if new_ub < ub[j] {
                            ub[j] = new_ub;
                        }
                    }
                    (ConstraintOp::Ge, true) | (ConstraintOp::Le, false) => {
                        let mut new_lb = bound;
                        if integer[j] {
                            new_lb = (new_lb - 1e-9).ceil();
                        }
                        if new_lb > lb[j] {
                            lb[j] = new_lb;
                        }
                    }
                }
                if lb[j] > ub[j] + EPS {
                    infeasible = true;
                    break 'outer;
                }
                c.free = true;
                changed = true;
                continue;
            }

            // Activity analysis over the live terms.
            let act = activity(&live, &lb, &ub);
            let (amin, amax) = (act.min(), act.max());

            // Infeasibility by activity.
            let bad = match c.op {
                ConstraintOp::Le => amin > rhs + 1e-7,
                ConstraintOp::Ge => amax < rhs - 1e-7,
                ConstraintOp::Eq => amin > rhs + 1e-7 || amax < rhs - 1e-7,
            };
            if bad {
                infeasible = true;
                break 'outer;
            }

            // Redundancy: the row can never be violated under the bounds.
            let redundant = match c.op {
                ConstraintOp::Le => amax <= rhs + 1e-9,
                ConstraintOp::Ge => amin >= rhs - 1e-9,
                ConstraintOp::Eq => (amax - rhs).abs() <= 1e-9 && (amin - rhs).abs() <= 1e-9,
            };
            if redundant {
                c.free = true;
                changed = true;
                continue;
            }

            // Forcing: the activity range only touches the rhs at one
            // extreme — every live variable is forced to the bound achieving
            // that extreme.
            let forcing_at_min = matches!(c.op, ConstraintOp::Le | ConstraintOp::Eq)
                && amin.is_finite()
                && (amin - rhs).abs() <= 1e-9;
            let forcing_at_max = matches!(c.op, ConstraintOp::Ge | ConstraintOp::Eq)
                && amax.is_finite()
                && (amax - rhs).abs() <= 1e-9;
            if forcing_at_min || forcing_at_max {
                for &(j, a) in &live {
                    let at_lower = (a > 0.0) == forcing_at_min;
                    if at_lower {
                        ub[j] = lb[j];
                    } else {
                        lb[j] = ub[j];
                    }
                }
                c.free = true;
                changed = true;
                continue;
            }

            // Implied bounds: for `sum a_j x_j <= rhs`, each x_j is bounded by
            // the residual slack the other terms leave. `>=` rows are the
            // mirrored case; `==` rows tighten from both sides.
            let tighten_le = matches!(c.op, ConstraintOp::Le | ConstraintOp::Eq);
            let tighten_ge = matches!(c.op, ConstraintOp::Ge | ConstraintOp::Eq);
            for &(j, a) in &live {
                match tighten_from_row(
                    j, a, rhs, &act, tighten_le, tighten_ge, integer[j], &mut lb, &mut ub,
                ) {
                    None => {
                        infeasible = true;
                        break 'outer;
                    }
                    Some(ch) => changed |= ch,
                }
            }
        }
    }

    // Snap near-equal bounds exactly together so fixed columns are pinned by
    // bit-identical `lb == ub` (the simplex's zero-range test).
    let mut fixed: Vec<Option<f64>> = vec![None; nv];
    let mut cols_fixed = 0usize;
    if !infeasible {
        for j in 0..nv {
            if lb[j].is_finite() && ub[j].is_finite() && (ub[j] - lb[j]).abs() <= EPS {
                let v = if integer[j] { lb[j].round() } else { lb[j] };
                lb[j] = v;
                ub[j] = v;
                fixed[j] = Some(v);
                cols_fixed += 1;
            }
        }
    }

    // Build the tightened model: same variables, same constraints, new bounds.
    let mut tightened = model.clone();
    if !infeasible {
        for (j, var) in tightened.vars.iter_mut().enumerate() {
            var.lb = lb[j];
            var.ub = ub[j];
        }
    }

    let free_rows: Vec<bool> = cons.iter().map(|c| c.free).collect();
    let rows_freed = free_rows.iter().filter(|f| **f).count();
    let post = PostSolve {
        fixed,
        free_rows,
        infeasible,
        cols_fixed,
        rows_freed,
        original_vars: nv,
        original_cons: nc,
    };
    Ok((tightened, post))
}

fn round_if_close(v: f64) -> f64 {
    if (v - v.round()).abs() < EPS {
        v.round()
    } else {
        v
    }
}

/// Maximum propagation passes per branch-and-bound node.
const NODE_PASSES: usize = 3;
/// Maximum binary variables probed per node.
const NODE_PROBES: usize = 8;

/// Per-node presolver for the branch-and-bound tree: a compact, read-only
/// view of the root-presolved model's active rows, used to propagate bounds
/// down branching paths.
///
/// Because the root presolve is layout-preserving, every tightening this
/// derives is expressed directly in the shared standard form's column space
/// and feeds the dual simplex's bound-override path — no re-presolve, no
/// rebuilt model. Rows the root presolve freed are omitted: bounds only
/// shrink down the tree, so a row redundant at the root stays redundant in
/// every descendant.
/// One active row of the per-node propagation view: merged `(column,
/// coefficient)` terms, the comparison operator, and the right-hand side.
type PropRow = (Vec<(usize, f64)>, ConstraintOp, f64);

#[derive(Debug)]
pub struct NodePresolver {
    /// Active rows with merged terms.
    rows: Vec<PropRow>,
    /// Rows touching each column (indices into `rows`).
    col_rows: Vec<Vec<usize>>,
    base_lb: Vec<f64>,
    base_ub: Vec<f64>,
    integer: Vec<bool>,
    /// Probe candidates: integer columns whose root bounds are `[0, 1]`.
    binaries: Vec<usize>,
    /// Reusable working/entry bound buffers: `tighten` sits on the hot
    /// branch-and-bound node loop, which is otherwise allocation-free.
    scratch: Vec<Vec<f64>>,
}

impl NodePresolver {
    /// Builds the per-node presolver from the root-presolved model.
    pub fn new(tightened: &Model, post: &PostSolve) -> Self {
        let nv = tightened.num_vars();
        let mut rows = Vec::new();
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); nv];
        for (i, c) in tightened.cons.iter().enumerate() {
            if post.free_rows.get(i).copied().unwrap_or(false) {
                continue;
            }
            let mut map: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
            for (vid, coef) in &c.terms {
                *map.entry(vid.0).or_insert(0.0) += coef;
            }
            let terms: Vec<(usize, f64)> = map.into_iter().filter(|(_, c)| c.abs() > 0.0).collect();
            if terms.is_empty() {
                continue;
            }
            let row_idx = rows.len();
            for &(j, _) in &terms {
                col_rows[j].push(row_idx);
            }
            rows.push((terms, c.op, c.rhs));
        }
        let integer: Vec<bool> = tightened.vars.iter().map(|v| v.integer).collect();
        let binaries: Vec<usize> = tightened
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer && v.lb == 0.0 && v.ub == 1.0)
            .map(|(j, _)| j)
            .collect();
        Self {
            rows,
            col_rows,
            base_lb: tightened.vars.iter().map(|v| v.lb).collect(),
            base_ub: tightened.vars.iter().map(|v| v.ub).collect(),
            integer,
            binaries,
            scratch: vec![Vec::new(); 4],
        }
    }

    /// Propagates the node's bounds: applies `overrides` on top of the root
    /// bounds, runs up to [`NODE_PASSES`] rounds of row-activity propagation
    /// plus light probing on up to [`NODE_PROBES`] unfixed binaries, and
    /// appends every derived tightening back onto `overrides`.
    ///
    /// Returns `None` when propagation proves the node infeasible (the caller
    /// prunes it without an LP solve), otherwise `Some(count)` with the
    /// number of columns whose bounds were tightened.
    pub fn tighten(&mut self, overrides: &mut Vec<(usize, f64, f64)>) -> Option<usize> {
        let n = self.base_lb.len();
        // Reuse the four bound buffers across nodes (mem::take sidesteps the
        // &self / &mut scratch borrow overlap; they are restored below).
        let mut entry_ub = self.scratch.pop().expect("four scratch buffers");
        let mut entry_lb = self.scratch.pop().expect("four scratch buffers");
        let mut ub = self.scratch.pop().expect("four scratch buffers");
        let mut lb = self.scratch.pop().expect("four scratch buffers");
        lb.clear();
        lb.extend_from_slice(&self.base_lb);
        ub.clear();
        ub.extend_from_slice(&self.base_ub);
        for &(j, lo, hi) in overrides.iter() {
            lb[j] = lo;
            ub[j] = hi;
        }
        entry_lb.clear();
        entry_lb.extend_from_slice(&lb);
        entry_ub.clear();
        entry_ub.extend_from_slice(&ub);
        let result = self.tighten_inner(overrides, n, &mut lb, &mut ub, &entry_lb, &entry_ub);
        self.scratch.push(lb);
        self.scratch.push(ub);
        self.scratch.push(entry_lb);
        self.scratch.push(entry_ub);
        result
    }

    #[allow(clippy::too_many_arguments)] // internal: threads the scratch buffers through
    fn tighten_inner(
        &self,
        overrides: &mut Vec<(usize, f64, f64)>,
        n: usize,
        lb: &mut [f64],
        ub: &mut [f64],
        entry_lb: &[f64],
        entry_ub: &[f64],
    ) -> Option<usize> {
        for _ in 0..NODE_PASSES {
            let mut any = false;
            for (terms, op, rhs) in &self.rows {
                match self.propagate_row(terms, *op, *rhs, lb, ub) {
                    None => return None,
                    Some(changed) => any |= changed,
                }
            }
            if !any {
                break;
            }
        }

        // Light probing: test both values of a few unfixed binaries against a
        // single activity sweep of the rows they touch; a value that is
        // immediately infeasible fixes the variable to the other one.
        let mut probes = 0usize;
        for &j in &self.binaries {
            if probes >= NODE_PROBES {
                break;
            }
            if ub[j] - lb[j] < 0.5 {
                continue; // already fixed at this node
            }
            probes += 1;
            let zero_bad = self.probe_infeasible(j, 0.0, lb, ub);
            let one_bad = self.probe_infeasible(j, 1.0, lb, ub);
            match (zero_bad, one_bad) {
                (true, true) => return None,
                (true, false) => lb[j] = 1.0,
                (false, true) => ub[j] = 0.0,
                (false, false) => {}
            }
        }

        let mut tightened = 0usize;
        for j in 0..n {
            if lb[j] > ub[j] + EPS {
                return None;
            }
            if lb[j] != entry_lb[j] || ub[j] != entry_ub[j] {
                tightened += 1;
                overrides.retain(|&(k, _, _)| k != j);
                overrides.push((j, lb[j], ub[j]));
            }
        }
        Some(tightened)
    }

    /// One propagation step over a single row: infeasibility check plus
    /// implied-bound tightening (with integral rounding). Returns `None` on
    /// proven infeasibility, otherwise whether any bound changed.
    fn propagate_row(
        &self,
        terms: &[(usize, f64)],
        op: ConstraintOp,
        rhs: f64,
        lb: &mut [f64],
        ub: &mut [f64],
    ) -> Option<bool> {
        let act = activity(terms, lb, ub);
        let (amin, amax) = (act.min(), act.max());
        let bad = match op {
            ConstraintOp::Le => amin > rhs + 1e-7,
            ConstraintOp::Ge => amax < rhs - 1e-7,
            ConstraintOp::Eq => amin > rhs + 1e-7 || amax < rhs - 1e-7,
        };
        if bad {
            return None;
        }
        // Skip rows that cannot bind: no tightening can come from them.
        let redundant = match op {
            ConstraintOp::Le => amax <= rhs + 1e-9,
            ConstraintOp::Ge => amin >= rhs - 1e-9,
            ConstraintOp::Eq => false,
        };
        if redundant {
            return Some(false);
        }
        let tighten_le = matches!(op, ConstraintOp::Le | ConstraintOp::Eq);
        let tighten_ge = matches!(op, ConstraintOp::Ge | ConstraintOp::Eq);
        let mut changed = false;
        for &(j, a) in terms {
            changed |= tighten_from_row(
                j,
                a,
                rhs,
                &act,
                tighten_le,
                tighten_ge,
                self.integer[j],
                lb,
                ub,
            )?;
        }
        Some(changed)
    }

    /// Whether fixing column `j` at `v` immediately violates one of the rows
    /// touching `j` (single activity sweep, no recursive propagation).
    fn probe_infeasible(&self, j: usize, v: f64, lb: &[f64], ub: &[f64]) -> bool {
        for &r in &self.col_rows[j] {
            let (terms, op, rhs) = &self.rows[r];
            let &(_, a) = terms
                .iter()
                .find(|&&(k, _)| k == j)
                .expect("col_rows index lists only rows containing j");
            let (contrib_min, contrib_max) = if a > 0.0 {
                (a * lb[j], a * ub[j])
            } else {
                (a * ub[j], a * lb[j])
            };
            let act = activity(terms, lb, ub).with_point(contrib_min, contrib_max, a * v);
            let bad = match op {
                ConstraintOp::Le => act.min() > rhs + 1e-7,
                ConstraintOp::Ge => act.max() < rhs - 1e-7,
                ConstraintOp::Eq => act.min() > rhs + 1e-7 || act.max() < rhs - 1e-7,
            };
            if bad {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::solution::SolveStatus;

    #[test]
    fn fixed_variables_are_pinned_not_removed() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0, 3.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        let (red, post) = presolve(&m).unwrap();
        // Layout preserved: same shape as the input.
        assert_eq!(red.num_vars(), 2);
        assert_eq!(red.num_cons(), 1);
        // After substituting x=2 the row is the singleton `y <= 3`, folded
        // into y's upper bound; the row is freed, not removed.
        assert_eq!(red.vars[y.0].ub, 3.0);
        assert!(post.free_rows[0]);
        assert_eq!(post.fixed[x.0], Some(2.0));
        assert!(post.fixed[y.0].is_none());
        assert_eq!(post.cols_fixed, 1);
        assert_eq!(post.rows_freed, 1);
    }

    #[test]
    fn singleton_eq_row_fixes_variable() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        let y = m.add_nonneg_var("y", 1.0);
        m.add_cons("fix", &[(x, 2.0)], ConstraintOp::Eq, 6.0);
        m.add_cons("link", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 5.0);
        let (red, post) = presolve(&m).unwrap();
        assert_eq!(post.fixed[x.0], Some(3.0));
        assert_eq!(red.num_vars(), 2);
        // link became y >= 2, folded into y's lower bound; both rows freed.
        assert_eq!(red.vars[y.0].lb, 2.0);
        assert_eq!(post.rows_freed, 2);
    }

    #[test]
    fn empty_infeasible_row_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 1.0, 0.0, false);
        m.add_cons("bad", &[(x, 1.0)], ConstraintOp::Ge, 5.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.infeasible);
        assert!(post.trivial_outcome().unwrap().status == SolveStatus::Infeasible);
    }

    #[test]
    fn integer_bound_rounding() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_cons("c", &[(x, 2.0)], ConstraintOp::Le, 7.0);
        let (red, post) = presolve(&m).unwrap();
        // 2x <= 7 → x <= 3.5 → x <= 3 for integer x.
        assert!(!post.infeasible);
        assert_eq!(red.vars[0].ub, 3.0);
    }

    #[test]
    fn redundant_row_is_freed() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 1.0, false);
        // x + y <= 10 can never bind under the bounds.
        m.add_cons("slack", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        // x + y <= 4 can bind: must stay active.
        m.add_cons("tight", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.free_rows[0]);
        assert!(!post.free_rows[1]);
        assert_eq!(post.rows_freed, 1);
    }

    #[test]
    fn forcing_row_fixes_participants() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 1.0, false);
        // x + y >= 5 forces x = 2 and y = 3 (the activity maximum).
        m.add_cons("force", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 5.0);
        let (red, post) = presolve(&m).unwrap();
        assert!(!post.infeasible);
        assert_eq!(post.fixed[x.0], Some(2.0));
        assert_eq!(post.fixed[y.0], Some(3.0));
        assert!(post.free_rows[0]);
        assert_eq!(red.vars[x.0].lb, 2.0);
        assert_eq!(red.vars[x.0].ub, 2.0);
    }

    #[test]
    fn implied_bounds_tighten_from_row_activity() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 100.0, 1.0, false);
        let y = m.add_var("y", 1.0, 3.0, 1.0, false);
        // x + y <= 10 with y >= 1 implies x <= 9.
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let (red, post) = presolve(&m).unwrap();
        assert!(!post.infeasible);
        assert!((red.vars[x.0].ub - 9.0).abs() < 1e-9);
    }

    #[test]
    fn fully_fixed_model_solves_through_simplex() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 4.0, 4.0, 2.0, false);
        m.add_cons("c", &[(x, 1.0)], ConstraintOp::Le, 5.0);
        let (red, post) = presolve(&m).unwrap();
        assert_eq!(red.num_vars(), 1);
        assert!(post.free_rows[0]);
        // No trivial shortcut any more: the (trivial) solve runs and recover
        // substitutes the exact fixed value.
        let sol = m.solve_lp_relaxation().unwrap();
        assert_eq!(sol.values, vec![4.0]);
        assert_eq!(sol.objective, 8.0);
        assert_eq!(sol.stats.cols_fixed, 1);
        assert_eq!(sol.stats.rows_freed, 1);
    }

    #[test]
    fn recover_maps_values_back() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.0, 1.0, 1.0, false);
        let y = m.add_var("y", 0.0, 5.0, 1.0, false);
        m.add_cons("c", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let (red, post) = presolve(&m).unwrap();
        let sol = red.solve_lp_relaxation().unwrap();
        let rec = post.recover(sol, &m);
        assert_eq!(rec.values[x.0], 1.0);
        assert!((rec.values[y.0] - 3.0).abs() < 1e-6);
        assert!((rec.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_singleton_eq_for_integer() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_cons("frac", &[(x, 2.0)], ConstraintOp::Eq, 3.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.infeasible);
    }

    #[test]
    fn conflicting_singletons_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg_var("x", 1.0);
        m.add_cons("a", &[(x, 1.0)], ConstraintOp::Ge, 5.0);
        m.add_cons("b", &[(x, 1.0)], ConstraintOp::Le, 2.0);
        let (_, post) = presolve(&m).unwrap();
        assert!(post.infeasible);
    }

    #[test]
    fn layout_identical_with_and_without_presolve() {
        // The acceptance property of the whole refactor: the standard form
        // built from the presolved model has the same matrix as the one built
        // from the raw model — only bounds differ.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 2.0, 3.0, false);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        let z = m.add_var("z", 0.0, 1.0, 0.5, true);
        m.add_cons("c1", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        m.add_cons("c2", &[(y, 1.0), (z, 2.0)], ConstraintOp::Ge, 0.0);
        let raw = StandardForm::from_model(&m);
        let (red, post) = presolve(&m).unwrap();
        let mut pre = StandardForm::from_model(&red);
        post.relax_free_rows(&mut pre);
        assert_eq!(raw.num_rows(), pre.num_rows());
        assert_eq!(raw.num_cols(), pre.num_cols());
        for j in 0..raw.num_cols() {
            assert_eq!(raw.a.col(j).indices, pre.a.col(j).indices);
            assert_eq!(raw.a.col(j).values, pre.a.col(j).values);
        }
        assert_eq!(raw.b, pre.b);
        assert_eq!(raw.c, pre.c);
    }
}
